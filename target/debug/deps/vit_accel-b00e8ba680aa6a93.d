/root/repo/target/debug/deps/vit_accel-b00e8ba680aa6a93.d: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libvit_accel-b00e8ba680aa6a93.rlib: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libvit_accel-b00e8ba680aa6a93.rmeta: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/config.rs:
crates/accel/src/dse.rs:
crates/accel/src/sim.rs:
