/root/repo/target/debug/deps/proptests-347e57d6c2553f18.d: crates/serve/tests/proptests.rs

/root/repo/target/debug/deps/proptests-347e57d6c2553f18: crates/serve/tests/proptests.rs

crates/serve/tests/proptests.rs:
