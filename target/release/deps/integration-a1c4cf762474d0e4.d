/root/repo/target/release/deps/integration-a1c4cf762474d0e4.d: crates/core/../../tests/integration.rs

/root/repo/target/release/deps/integration-a1c4cf762474d0e4: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
