/root/repo/target/release/deps/proptests-173d92b38cd61937.d: crates/accel/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-173d92b38cd61937.rmeta: crates/accel/tests/proptests.rs Cargo.toml

crates/accel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
