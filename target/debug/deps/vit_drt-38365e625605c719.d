/root/repo/target/debug/deps/vit_drt-38365e625605c719.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

/root/repo/target/debug/deps/vit_drt-38365e625605c719: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/budget.rs:
crates/core/src/engine.rs:
crates/core/src/json.rs:
crates/core/src/lut.rs:
