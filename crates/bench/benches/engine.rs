//! Criterion benchmarks of the DRT engine: LUT construction, budget lookup,
//! and full dynamic inference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vit_drt::{DrtEngine, Lut};
use vit_models::SegFormerVariant;
use vit_resilience::{
    pareto_front, segformer_sweep_space, sweep_segformer, ResourceKind, Workload,
};
use vit_tensor::Tensor;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let v = SegFormerVariant::b0();

    g.bench_function("sweep_and_pareto_b0_128px", |bench| {
        let space = segformer_sweep_space(&v, 1, 4);
        bench.iter(|| {
            let pts = sweep_segformer(
                &v,
                Workload::SegFormerAde,
                (128, 128),
                150,
                black_box(&space),
                ResourceKind::GpuTime,
            );
            pareto_front(&pts)
        })
    });

    let space = segformer_sweep_space(&v, 2, 8);
    let pts = sweep_segformer(
        &v,
        Workload::SegFormerAde,
        (128, 128),
        150,
        &space,
        ResourceKind::GpuTime,
    );
    let lut = Lut::from_points("bench", &pts);
    let max = lut.entries().last().unwrap().resource;
    g.bench_function("lut_lookup", |bench| {
        bench.iter(|| lut.lookup(black_box(0.8 * max)).unwrap())
    });

    // Full dynamic inference at a small executable size. The graph cache is
    // warm after the first iteration, so this measures selection + real
    // model execution.
    let mut engine =
        DrtEngine::segformer(v, Workload::SegFormerAde, (64, 64), ResourceKind::GpuTime)
            .expect("engine builds");
    let budget = engine.max_resource() * 0.8;
    let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
    g.sample_size(10);
    g.bench_function("dynamic_inference_b0_64px", |bench| {
        bench.iter(|| engine.infer(black_box(&image), budget).unwrap())
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine
}
criterion_main!(benches);
