/root/repo/target/release/deps/paper_claims-37fa17e0be940a0a.d: crates/core/../../tests/paper_claims.rs Cargo.toml

/root/repo/target/release/deps/libpaper_claims-37fa17e0be940a0a.rmeta: crates/core/../../tests/paper_claims.rs Cargo.toml

crates/core/../../tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
