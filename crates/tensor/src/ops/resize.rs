//! Spatial resizing: bilinear interpolation and channel concatenation, the
//! two glue operations of segmentation decoders.

use crate::error::{invalid_argument, invalid_shape, shape_mismatch, Result};
use crate::tensor::Tensor;

/// Bilinear interpolation of an NCHW tensor to an exact output size, using
/// `align_corners = false` semantics (the convention used by SegFormer and
/// UPerNet decoders).
///
/// # Errors
///
/// Returns an error for non-NCHW input or a zero target size.
pub fn bilinear_resize(input: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(invalid_shape(
            "bilinear_resize",
            format!("expected NCHW rank-4 tensor, got {:?}", input.shape()),
        ));
    }
    if out_h == 0 || out_w == 0 {
        return Err(invalid_argument(
            "bilinear_resize",
            "output size must be nonzero".to_string(),
        ));
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if h == out_h && w == out_w {
        return Ok(input.clone());
    }
    let mut out = Tensor::zeros(&[n, c, out_h, out_w]);
    let xd = input.data();
    let od = out.data_mut();
    let scale_y = h as f32 / out_h as f32;
    let scale_x = w as f32 / out_w as f32;
    for b in 0..n {
        for ch in 0..c {
            let base_in = (b * c + ch) * h * w;
            let base_out = (b * c + ch) * out_h * out_w;
            for oy in 0..out_h {
                // align_corners = false source coordinate.
                let sy = ((oy as f32 + 0.5) * scale_y - 0.5).max(0.0);
                let y0 = (sy.floor() as usize).min(h - 1);
                let y1 = (y0 + 1).min(h - 1);
                let fy = sy - y0 as f32;
                for ox in 0..out_w {
                    let sx = ((ox as f32 + 0.5) * scale_x - 0.5).max(0.0);
                    let x0 = (sx.floor() as usize).min(w - 1);
                    let x1 = (x0 + 1).min(w - 1);
                    let fx = sx - x0 as f32;
                    let v00 = xd[base_in + y0 * w + x0];
                    let v01 = xd[base_in + y0 * w + x1];
                    let v10 = xd[base_in + y1 * w + x0];
                    let v11 = xd[base_in + y1 * w + x1];
                    let top = v00 + (v01 - v00) * fx;
                    let bot = v10 + (v11 - v10) * fx;
                    od[base_out + oy * out_w + ox] = top + (bot - top) * fy;
                }
            }
        }
    }
    Ok(out)
}

/// Concatenates NCHW tensors along the channel dimension.
///
/// All inputs must agree in batch and spatial dimensions.
///
/// # Errors
///
/// Returns an error when the list is empty or shapes disagree outside the
/// channel dimension.
pub fn concat_channels(inputs: &[&Tensor]) -> Result<Tensor> {
    let first = inputs.first().ok_or_else(|| {
        invalid_argument("concat_channels", "need at least one input".to_string())
    })?;
    if first.rank() != 4 {
        return Err(invalid_shape(
            "concat_channels",
            format!("expected NCHW rank-4 tensors, got {:?}", first.shape()),
        ));
    }
    let (n, h, w) = (first.shape()[0], first.shape()[2], first.shape()[3]);
    let mut total_c = 0;
    for t in inputs {
        if t.rank() != 4 || t.shape()[0] != n || t.shape()[2] != h || t.shape()[3] != w {
            return Err(shape_mismatch(
                "concat_channels",
                format!("[{n}, *, {h}, {w}]"),
                format!("{:?}", t.shape()),
            ));
        }
        total_c += t.shape()[1];
    }
    let mut out = Tensor::zeros(&[n, total_c, h, w]);
    let od = out.data_mut();
    let plane = h * w;
    for b in 0..n {
        let mut c_off = 0;
        for t in inputs {
            let tc = t.shape()[1];
            let src = &t.data()[b * tc * plane..(b + 1) * tc * plane];
            let dst = &mut od[(b * total_c + c_off) * plane..(b * total_c + c_off + tc) * plane];
            dst.copy_from_slice(src);
            c_off += tc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_identity_when_same_size() {
        let x = Tensor::rand_uniform(&[1, 3, 5, 5], -1.0, 1.0, 2);
        let y = bilinear_resize(&x, 5, 5).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn resize_constant_stays_constant() {
        let x = Tensor::full(&[1, 1, 4, 4], 3.25);
        let y = bilinear_resize(&x, 9, 7).unwrap();
        assert_eq!(y.shape(), &[1, 1, 9, 7]);
        for &v in y.data() {
            assert!((v - 3.25).abs() < 1e-6);
        }
    }

    #[test]
    fn resize_2x_linear_gradient_preserved() {
        // Horizontal gradient: values grow linearly with x; after upsampling
        // the interior should still be monotone in x.
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 1, 1, 4]).unwrap();
        let y = bilinear_resize(&x, 1, 8).unwrap();
        let d = y.data();
        for i in 1..8 {
            assert!(d[i] >= d[i - 1], "not monotone at {i}: {:?}", d);
        }
        assert!((d[0] - 0.0).abs() < 0.5);
        assert!((d[7] - 3.0).abs() < 0.5);
    }

    #[test]
    fn resize_bounds_respected() {
        let x = Tensor::rand_uniform(&[1, 2, 3, 3], 0.0, 1.0, 4);
        let y = bilinear_resize(&x, 12, 12).unwrap();
        // Bilinear interpolation can never exceed the input range.
        for &v in y.data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn concat_stacks_channels_in_order() {
        let a = Tensor::full(&[1, 1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2, 2], 2.0);
        let c = concat_channels(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[1, 3, 2, 2]);
        assert_eq!(&c.data()[0..4], &[1.0; 4]);
        assert_eq!(&c.data()[4..12], &[2.0; 8]);
    }

    #[test]
    fn concat_respects_batch() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1, 1, 1]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2, 1, 1, 1]).unwrap();
        let c = concat_channels(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[2, 2, 1, 1]);
        assert_eq!(c.data(), &[1.0, 10.0, 2.0, 20.0]);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(concat_channels(&[&a, &b]).is_err());
        assert!(concat_channels(&[]).is_err());
    }
}
