/root/repo/target/release/examples/detection_pipeline-88139e26a285d0cd.d: crates/core/../../examples/detection_pipeline.rs Cargo.toml

/root/repo/target/release/examples/libdetection_pipeline-88139e26a285d0cd.rmeta: crates/core/../../examples/detection_pipeline.rs Cargo.toml

crates/core/../../examples/detection_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
