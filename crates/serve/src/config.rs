//! Server configuration: nested knob groups behind a validated builder.
//!
//! [`ServerConfig`] groups the batching, fault-tolerance, and tenancy knobs
//! into dedicated structs and is constructed through
//! [`ServerConfig::builder`], which validates every field before a server
//! can be started with it. The pre-redesign flat struct survives one
//! release as the deprecated [`FlatServerConfig`] shim.

use crate::policy::{RecoveryPolicy, SchedulePolicy};
use crate::request::TenantId;
use std::fmt;
use vit_fault::FaultPlan;
use vit_resilience::ResourceKind;

/// Cross-request batching knobs.
///
/// Queued requests whose slack→budget policy resolves to the same LUT
/// configuration are coalesced into one batch-N engine pass. Batching is
/// off by default (`max_batch == 1`) and is automatically disabled while a
/// fault-injection plan is armed, so chaos runs keep their per-request
/// replay determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Largest number of requests one engine pass may serve.
    pub max_batch: usize,
    /// How long (seconds) a dispatching worker holds the batch open
    /// waiting for more same-config requests. `0.0` coalesces only what is
    /// already queued.
    pub window: f64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 1,
            window: 0.0,
        }
    }
}

impl BatchConfig {
    /// Whether this configuration ever coalesces.
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

/// Fault injection, recovery, and health knobs.
#[derive(Debug, Clone, Copy)]
pub struct FaultToleranceConfig {
    /// Deterministic fault injection plan. `None` (the default) serves
    /// cleanly — workers still run the output guard, but no faults are
    /// drawn. With a plan, every attempt is armed with
    /// `(plan, request seq, attempt)` so a chaos run replays byte-for-byte
    /// regardless of thread interleaving.
    pub fault: Option<FaultPlan>,
    /// What workers do when an attempt faults.
    pub recovery: RecoveryPolicy,
    /// Watchdog allowance as a multiple of the selected entry's expected
    /// execution time. The threaded server cannot abort a running
    /// inference, so an overrun is *observed* (a `watchdog` detection
    /// event) rather than enforced; the discrete-event simulator models
    /// the true abort.
    pub watchdog_grace: f64,
    /// Consecutive failures on one worker that open its circuit breaker.
    /// An open breaker forces that worker onto the conservative
    /// interpreter path until a success closes it; when every worker's
    /// breaker is open, [`crate::Server::submit`] refuses new work.
    pub breaker_threshold: usize,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            fault: None,
            recovery: RecoveryPolicy::default(),
            watchdog_grace: 4.0,
            breaker_threshold: 3,
        }
    }
}

/// One tenant's scheduling weight and queue quota.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// The tenant this spec applies to.
    pub id: TenantId,
    /// Weighted-fair share: a tenant with weight 2 is dispatched twice as
    /// often as a tenant with weight 1 when both have work queued. Must be
    /// positive.
    pub weight: f64,
    /// Largest fraction of the queue this tenant may occupy, in `(0, 1]`.
    /// Submissions beyond the quota are shed with
    /// [`crate::ShedReason::OverQuota`].
    pub max_queue_share: f64,
}

impl TenantSpec {
    /// An even-weighted tenant with full queue share.
    pub fn new(id: TenantId) -> Self {
        TenantSpec {
            id,
            weight: 1.0,
            max_queue_share: 1.0,
        }
    }

    /// Sets the fair-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the queue-share quota.
    #[must_use]
    pub fn with_queue_share(mut self, share: f64) -> Self {
        self.max_queue_share = share;
        self
    }
}

/// Multi-tenant admission configuration.
///
/// The default (no explicit tenants) treats all traffic as one tenant with
/// full queue share, which degenerates to the pre-tenancy pure-EDF
/// behavior. Tenants not listed here get weight 1 and full share.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenancyConfig {
    /// Per-tenant specs; empty means single-tenant operation.
    pub tenants: Vec<TenantSpec>,
}

impl TenancyConfig {
    /// The spec for `tenant`, falling back to the even default.
    pub fn spec_for(&self, tenant: TenantId) -> TenantSpec {
        self.tenants
            .iter()
            .find(|t| t.id == tenant)
            .copied()
            .unwrap_or_else(|| TenantSpec::new(tenant))
    }
}

/// A rejected [`ServerConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `workers` must be at least 1.
    ZeroWorkers,
    /// `queue_depth` must be at least 1.
    ZeroQueueDepth,
    /// `exec_threads` must be at least 1.
    ZeroExecThreads,
    /// `batching.max_batch` must be at least 1.
    ZeroMaxBatch,
    /// `batching.window` must be finite and non-negative.
    BadBatchWindow {
        /// The rejected window.
        window: f64,
    },
    /// `fault_tolerance.watchdog_grace` must be finite and positive.
    BadWatchdogGrace {
        /// The rejected grace multiple.
        grace: f64,
    },
    /// `fault_tolerance.breaker_threshold` must be at least 1.
    ZeroBreakerThreshold,
    /// A tenant's fair-share weight must be finite and positive.
    BadTenantWeight {
        /// The offending tenant.
        tenant: TenantId,
        /// The rejected weight.
        weight: f64,
    },
    /// A tenant's queue share must lie in `(0, 1]`.
    BadTenantShare {
        /// The offending tenant.
        tenant: TenantId,
        /// The rejected share.
        share: f64,
    },
    /// The same tenant id appears twice in the tenancy config.
    DuplicateTenant {
        /// The duplicated tenant.
        tenant: TenantId,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "server needs at least one worker"),
            ConfigError::ZeroQueueDepth => write!(f, "queue depth must be at least 1"),
            ConfigError::ZeroExecThreads => write!(f, "execution pool needs at least one thread"),
            ConfigError::ZeroMaxBatch => write!(f, "max batch size must be at least 1"),
            ConfigError::BadBatchWindow { window } => {
                write!(f, "batch window must be finite and >= 0, got {window}")
            }
            ConfigError::BadWatchdogGrace { grace } => {
                write!(f, "watchdog grace must be finite and > 0, got {grace}")
            }
            ConfigError::ZeroBreakerThreshold => {
                write!(f, "circuit breaker threshold must be at least 1")
            }
            ConfigError::BadTenantWeight { tenant, weight } => {
                write!(f, "{tenant} has non-positive fair-share weight {weight}")
            }
            ConfigError::BadTenantShare { tenant, share } => {
                write!(f, "{tenant} has queue share {share} outside (0, 1]")
            }
            ConfigError::DuplicateTenant { tenant } => {
                write!(f, "{tenant} is configured twice")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Server topology and scheduling configuration.
///
/// Construct through [`ServerConfig::builder`]; `Default` is the valid
/// baseline (4 workers, depth 64, no batching, single tenant).
///
/// # Examples
///
/// ```
/// use vit_serve::{BatchConfig, ServerConfig};
///
/// let config = ServerConfig::builder()
///     .workers(2)
///     .queue_depth(32)
///     .batching(BatchConfig { max_batch: 8, window: 0.002 })
///     .build()
///     .expect("valid config");
/// assert_eq!(config.workers, 2);
/// assert!(config.batching.enabled());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads sharing the engine core.
    pub workers: usize,
    /// Capacity of the dispatch queue (at most this many admitted requests
    /// wait at once).
    pub queue_depth: usize,
    /// The resource dimension deadlines are stated in; requests with a
    /// different kind are rejected.
    pub resource_kind: ResourceKind,
    /// How budgets are chosen.
    pub policy: SchedulePolicy,
    /// Total threads of the intra-inference execution pool shared by all
    /// workers (1 = each worker runs its inference sequentially). One pool
    /// is shared so concurrent inferences cooperate on the machine's cores
    /// instead of oversubscribing them `workers ×`.
    pub exec_threads: usize,
    /// Run inferences by replaying compiled execution plans instead of
    /// interpreting graphs. Outputs are bit-identical either way; plans
    /// trade a one-time per-config compilation (cached in the shared
    /// engine core) for lower per-inference overhead.
    pub use_plans: bool,
    /// Cross-request batching knobs.
    pub batching: BatchConfig,
    /// Fault injection, recovery, watchdog, and breaker knobs.
    pub fault_tolerance: FaultToleranceConfig,
    /// Per-tenant quotas and fair-share weights.
    pub tenancy: TenancyConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            resource_kind: ResourceKind::GpuTime,
            policy: SchedulePolicy::DrtDynamic,
            exec_threads: 1,
            use_plans: false,
            batching: BatchConfig::default(),
            fault_tolerance: FaultToleranceConfig::default(),
            tenancy: TenancyConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// Validates an already-assembled configuration — what
    /// [`ServerConfigBuilder::build`] runs.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.exec_threads == 0 {
            return Err(ConfigError::ZeroExecThreads);
        }
        if self.batching.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if !self.batching.window.is_finite() || self.batching.window < 0.0 {
            return Err(ConfigError::BadBatchWindow {
                window: self.batching.window,
            });
        }
        let grace = self.fault_tolerance.watchdog_grace;
        if !grace.is_finite() || grace <= 0.0 {
            return Err(ConfigError::BadWatchdogGrace { grace });
        }
        if self.fault_tolerance.breaker_threshold == 0 {
            return Err(ConfigError::ZeroBreakerThreshold);
        }
        for (i, t) in self.tenancy.tenants.iter().enumerate() {
            if !t.weight.is_finite() || t.weight <= 0.0 {
                return Err(ConfigError::BadTenantWeight {
                    tenant: t.id,
                    weight: t.weight,
                });
            }
            if !t.max_queue_share.is_finite() || t.max_queue_share <= 0.0 || t.max_queue_share > 1.0
            {
                return Err(ConfigError::BadTenantShare {
                    tenant: t.id,
                    share: t.max_queue_share,
                });
            }
            if self.tenancy.tenants[..i].iter().any(|u| u.id == t.id) {
                return Err(ConfigError::DuplicateTenant { tenant: t.id });
            }
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`]; see [`ServerConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Worker threads sharing the engine core.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Capacity of the dispatch queue.
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// The resource dimension deadlines are stated in.
    #[must_use]
    pub fn resource_kind(mut self, kind: ResourceKind) -> Self {
        self.config.resource_kind = kind;
        self
    }

    /// How budgets are chosen.
    #[must_use]
    pub fn policy(mut self, policy: SchedulePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Threads of the shared intra-inference execution pool.
    #[must_use]
    pub fn exec_threads(mut self, threads: usize) -> Self {
        self.config.exec_threads = threads;
        self
    }

    /// Serve by replaying compiled plans instead of interpreting graphs.
    #[must_use]
    pub fn use_plans(mut self, use_plans: bool) -> Self {
        self.config.use_plans = use_plans;
        self
    }

    /// Replaces the whole batching group.
    #[must_use]
    pub fn batching(mut self, batching: BatchConfig) -> Self {
        self.config.batching = batching;
        self
    }

    /// Largest number of requests one engine pass may serve.
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.batching.max_batch = max_batch;
        self
    }

    /// How long a dispatching worker holds a batch open, in seconds.
    #[must_use]
    pub fn batch_window(mut self, window: f64) -> Self {
        self.config.batching.window = window;
        self
    }

    /// Replaces the whole fault-tolerance group.
    #[must_use]
    pub fn fault_tolerance(mut self, ft: FaultToleranceConfig) -> Self {
        self.config.fault_tolerance = ft;
        self
    }

    /// Arms deterministic fault injection.
    #[must_use]
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.config.fault_tolerance.fault = Some(plan);
        self
    }

    /// What workers do when an attempt faults.
    #[must_use]
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config.fault_tolerance.recovery = recovery;
        self
    }

    /// Watchdog allowance as a multiple of the expected execution time.
    #[must_use]
    pub fn watchdog_grace(mut self, grace: f64) -> Self {
        self.config.fault_tolerance.watchdog_grace = grace;
        self
    }

    /// Consecutive failures that open a worker's circuit breaker.
    #[must_use]
    pub fn breaker_threshold(mut self, threshold: usize) -> Self {
        self.config.fault_tolerance.breaker_threshold = threshold;
        self
    }

    /// Replaces the whole tenancy group.
    #[must_use]
    pub fn tenancy(mut self, tenancy: TenancyConfig) -> Self {
        self.config.tenancy = tenancy;
        self
    }

    /// Adds one tenant spec.
    #[must_use]
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.config.tenancy.tenants.push(spec);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] a knob violates.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The pre-redesign flat configuration struct, kept for one release so
/// struct-literal call sites keep compiling. Converts losslessly into the
/// nested [`ServerConfig`]; batching and tenancy (which did not exist in
/// the flat era) take their defaults.
#[deprecated(
    since = "0.10.0",
    note = "use ServerConfig::builder(); the flat field layout is frozen and will be removed"
)]
#[derive(Debug, Clone, Copy)]
pub struct FlatServerConfig {
    /// Worker threads sharing the engine core.
    pub workers: usize,
    /// Capacity of the dispatch queue.
    pub queue_depth: usize,
    /// The resource dimension deadlines are stated in.
    pub resource_kind: ResourceKind,
    /// How budgets are chosen.
    pub policy: SchedulePolicy,
    /// Threads of the shared intra-inference execution pool.
    pub exec_threads: usize,
    /// Serve by replaying compiled plans.
    pub use_plans: bool,
    /// Deterministic fault injection plan.
    pub fault: Option<FaultPlan>,
    /// What workers do when an attempt faults.
    pub recovery: RecoveryPolicy,
    /// Watchdog allowance multiple.
    pub watchdog_grace: f64,
    /// Consecutive failures that open a worker's circuit breaker.
    pub breaker_threshold: usize,
}

#[allow(deprecated)]
impl Default for FlatServerConfig {
    fn default() -> Self {
        let d = ServerConfig::default();
        FlatServerConfig {
            workers: d.workers,
            queue_depth: d.queue_depth,
            resource_kind: d.resource_kind,
            policy: d.policy,
            exec_threads: d.exec_threads,
            use_plans: d.use_plans,
            fault: d.fault_tolerance.fault,
            recovery: d.fault_tolerance.recovery,
            watchdog_grace: d.fault_tolerance.watchdog_grace,
            breaker_threshold: d.fault_tolerance.breaker_threshold,
        }
    }
}

#[allow(deprecated)]
impl From<FlatServerConfig> for ServerConfig {
    fn from(flat: FlatServerConfig) -> Self {
        ServerConfig {
            workers: flat.workers,
            queue_depth: flat.queue_depth,
            resource_kind: flat.resource_kind,
            policy: flat.policy,
            exec_threads: flat.exec_threads,
            use_plans: flat.use_plans,
            batching: BatchConfig::default(),
            fault_tolerance: FaultToleranceConfig {
                fault: flat.fault,
                recovery: flat.recovery,
                watchdog_grace: flat.watchdog_grace,
                breaker_threshold: flat.breaker_threshold,
            },
            tenancy: TenancyConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServerConfig::default().validate().is_ok());
        assert!(ServerConfig::builder().build().is_ok());
    }

    #[test]
    fn builder_rejects_each_bad_knob() {
        assert_eq!(
            ServerConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroWorkers
        );
        assert_eq!(
            ServerConfig::builder().queue_depth(0).build().unwrap_err(),
            ConfigError::ZeroQueueDepth
        );
        assert_eq!(
            ServerConfig::builder().exec_threads(0).build().unwrap_err(),
            ConfigError::ZeroExecThreads
        );
        assert_eq!(
            ServerConfig::builder().max_batch(0).build().unwrap_err(),
            ConfigError::ZeroMaxBatch
        );
        assert!(matches!(
            ServerConfig::builder().batch_window(-1.0).build(),
            Err(ConfigError::BadBatchWindow { .. })
        ));
        assert!(matches!(
            ServerConfig::builder().watchdog_grace(0.0).build(),
            Err(ConfigError::BadWatchdogGrace { .. })
        ));
        assert_eq!(
            ServerConfig::builder()
                .breaker_threshold(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroBreakerThreshold
        );
    }

    #[test]
    fn builder_rejects_bad_tenants() {
        let t = TenantId(7);
        assert!(matches!(
            ServerConfig::builder()
                .tenant(TenantSpec::new(t).with_weight(0.0))
                .build(),
            Err(ConfigError::BadTenantWeight { tenant, .. }) if tenant == t
        ));
        assert!(matches!(
            ServerConfig::builder()
                .tenant(TenantSpec::new(t).with_queue_share(1.5))
                .build(),
            Err(ConfigError::BadTenantShare { tenant, .. }) if tenant == t
        ));
        assert!(matches!(
            ServerConfig::builder()
                .tenant(TenantSpec::new(t))
                .tenant(TenantSpec::new(t))
                .build(),
            Err(ConfigError::DuplicateTenant { tenant }) if tenant == t
        ));
    }

    #[test]
    fn errors_display_the_offending_value() {
        let e = ServerConfig::builder()
            .batch_window(f64::NAN)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("batch window"));
        let e = ServerConfig::builder()
            .tenant(TenantSpec::new(TenantId(3)).with_queue_share(0.0))
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("tenant3"));
    }

    #[test]
    #[allow(deprecated)]
    fn flat_shim_converts_losslessly() {
        let flat = FlatServerConfig {
            workers: 2,
            queue_depth: 8,
            use_plans: true,
            watchdog_grace: 2.5,
            ..FlatServerConfig::default()
        };
        let nested: ServerConfig = flat.into();
        assert_eq!(nested.workers, 2);
        assert_eq!(nested.queue_depth, 8);
        assert!(nested.use_plans);
        assert_eq!(nested.fault_tolerance.watchdog_grace, 2.5);
        assert!(!nested.batching.enabled());
        assert!(nested.tenancy.tenants.is_empty());
        assert!(nested.validate().is_ok());
    }
}
