/root/repo/target/debug/deps/vit_data-34fe72cde83175af.d: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/vit_data-34fe72cde83175af: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/metrics.rs:
crates/data/src/scene.rs:
