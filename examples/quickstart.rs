//! Quickstart: build a SegFormer, profile it, prune it dynamically, run it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vit_data::{mean_iou, Dataset, SceneGenerator};
use vit_graph::Executor;
use vit_models::{build_segformer, SegFormerConfig, SegFormerDynamic, SegFormerVariant};
use vit_profiler::{GpuModel, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the full SegFormer-B2 at the paper's ADE20K geometry and
    //    profile it: FLOPs, parameters, and modeled TITAN V latency.
    let variant = SegFormerVariant::b2();
    let full_cfg = SegFormerConfig::ade20k(variant);
    let full = build_segformer(&full_cfg)?;
    let gpu = GpuModel::titan_v();
    println!(
        "SegFormer-B2 @ 512x512: {:.1} GFLOPs, {:.1} M params, {:.1} ms modeled GPU latency",
        full.total_flops() as f64 / 1e9,
        full.total_params() as f64 / 1e6,
        gpu.total_time(&full) * 1e3
    );
    let profile = Profile::with_gpu(&full, &gpu);
    println!("largest layer by FLOPs: {}", profile.top_flops(1)[0].name);

    // 2. Prune it dynamically — Table II's point E — with the same weights.
    let point_e = SegFormerDynamic::with_depths_and_fuse(&variant, [2, 3, 5, 3], 1024);
    let pruned = build_segformer(&full_cfg.clone().with_dynamic(point_e))?;
    println!(
        "point E: {:.1} GFLOPs ({:.0}% of full), {:.1} ms ({:.0}% of full)",
        pruned.total_flops() as f64 / 1e9,
        100.0 * pruned.total_flops() as f64 / full.total_flops() as f64,
        gpu.total_time(&pruned) * 1e3,
        100.0 * gpu.total_time(&pruned) / gpu.total_time(&full)
    );

    // 3. Actually execute both paths on a synthetic scene (small size so
    //    this runs in seconds) and measure how much they agree.
    let small = SegFormerConfig::ade20k(variant).with_image(64, 64);
    let full_small = build_segformer(&small.clone())?;
    let pruned_small = build_segformer(&small.with_dynamic(point_e))?;
    let scene = SceneGenerator::new(Dataset::Ade20k, 42).sample_sized(0, 64, 64);
    let mut exec = Executor::new(0);
    let full_out = exec
        .run(&full_small, std::slice::from_ref(&scene.image))?
        .argmax_channels()?;
    let pruned_out = exec.run(&pruned_small, &[scene.image])?.argmax_channels()?;
    println!(
        "pruned vs full output agreement on a real execution: mIoU {:.3}",
        mean_iou(&pruned_out, &full_out, 150)
    );
    Ok(())
}
