//! # vit-graph
//!
//! The execution-graph IR of the DRT-ViT reproduction: typed layer
//! operators ([`Op`]) with full hyper-parameter metadata, a topologically
//! ordered DAG ([`Graph`]) with shape inference, analytical FLOPs and
//! parameter counting, and an interpreter ([`Executor`]) that runs graphs on
//! real tensors with deterministic, *slice-consistent* synthetic weights.
//!
//! Slice consistency is what makes dynamic pruning experiments meaningful
//! with synthetic weights: a pruned layer that keeps the first `k` channels
//! uses exactly the same weight values as the full model's first `k`
//! channels — the paper's "one set of model weights" property.
//!
//! # Examples
//!
//! ```
//! use vit_graph::{Executor, Graph, LayerRole, Op};
//! use vit_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("demo");
//! let x = g.input("image", &[1, 3, 8, 8])?;
//! let conv = g.add(
//!     "stem",
//!     Op::Conv2d { out_channels: 8, kernel: (3, 3), stride: (1, 1),
//!                  pad: (1, 1), groups: 1, bias: true },
//!     LayerRole::Backbone,
//!     &[x],
//! )?;
//! g.set_output(conv);
//!
//! println!("FLOPs: {}", g.total_flops());
//! let mut exec = Executor::new(42);
//! let out = exec.run(&g, &[Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, 7)])?;
//! assert_eq!(out.shape(), &[1, 8, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod exec;
#[allow(clippy::module_inception)]
mod graph;
mod op;

pub use exec::{
    check_node_guard, eval_op, generate_node_weights, node_weight_shapes, ExecBackend, ExecError,
    ExecOptions, ExecScratch, Executor, RunContext, SchedMeta, WeightGen,
};
pub use graph::{Graph, Node, NodeId};
pub use op::{GraphError, LayerRole, Op, OpClass};
