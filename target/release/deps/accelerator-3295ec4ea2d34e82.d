/root/repo/target/release/deps/accelerator-3295ec4ea2d34e82.d: crates/bench/benches/accelerator.rs Cargo.toml

/root/repo/target/release/deps/libaccelerator-3295ec4ea2d34e82.rmeta: crates/bench/benches/accelerator.rs Cargo.toml

crates/bench/benches/accelerator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
