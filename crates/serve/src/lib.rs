//! # vit-serve
//!
//! Deadline-aware concurrent serving on top of the DRT engine.
//!
//! The paper's DRT engine (§IV, Figure 8) answers "given *this much*
//! resource, which execution path maximizes accuracy?" for one inference
//! at a time. This crate turns that primitive into a serving system: a
//! bounded request queue, an earliest-deadline-first (EDF) scheduler with
//! admission control, per-tenant quotas with weighted-fair dequeueing,
//! continuous batching (queued requests that resolve to the same LUT
//! configuration coalesce into one batch-N engine pass), and a pool of
//! workers sharing one [`vit_drt::EngineCore`]. Each request's *remaining
//! slack* at dispatch (deadline − now) becomes the DRT budget, so under
//! load the engine gracefully trades accuracy for latency instead of
//! missing deadlines — the serving-time generalization of the paper's
//! per-frame budget traces.
//!
//! Two execution substrates share the same scheduling semantics:
//!
//! * [`Server`] — real threads over one `Arc<EngineCore>`, wall-clock
//!   deadlines, actual tensor execution ([`server`]).
//! * [`simulate`] — a deterministic discrete-event simulator with a
//!   virtual clock for reproducible fleet-scale load-sweep experiments
//!   ([`sim`]).
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::{Duration, Instant};
//! use vit_drt::DrtEngine;
//! use vit_models::SegFormerVariant;
//! use vit_resilience::{ResourceKind, Workload};
//! use vit_serve::{Calibration, InferenceRequest, Server, ServerConfig};
//! use vit_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = DrtEngine::segformer(
//!     SegFormerVariant::b0(), Workload::SegFormerAde, (64, 64),
//!     ResourceKind::GpuTime)?;
//! let core = engine.core().clone();
//! let calibration = Calibration::measure(&core)?;
//! let config = ServerConfig::builder()
//!     .workers(4)
//!     .max_batch(4)
//!     .batch_window(0.002)
//!     .build()?;
//! let server = Server::start(core, calibration, config);
//! let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
//! let admission = server.submit(InferenceRequest::new(
//!     image,
//!     Instant::now() + Duration::from_millis(200),
//!     ResourceKind::GpuTime,
//! ))?;
//! println!("admitted: {}", admission.is_admitted());
//! let metrics = server.shutdown();
//! println!("p99 latency {:.1} ms", metrics.p99_latency * 1e3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod fair;
pub mod metrics;
pub mod policy;
pub mod queue;
pub mod request;
pub mod scenario;
pub mod server;
pub mod sim;

#[allow(deprecated)]
pub use config::FlatServerConfig;
pub use config::{
    BatchConfig, ConfigError, FaultToleranceConfig, ServerConfig, ServerConfigBuilder,
    TenancyConfig, TenantSpec,
};
pub use fair::{CoalescePop, DispatchPushError, DispatchQueue, SharedDispatchQueue};
pub use metrics::{percentile, ServerMetrics, TenantMetrics};
pub use policy::{admissible, budget_for, RecoveryPolicy, SchedulePolicy};
pub use queue::{EdfQueue, PopResult, PushError};
pub use request::{
    FailureReason, FailureRecord, InferenceRequest, Outcome, RequestRecord, RequestTicket,
    ShedReason, ShedRecord, TenantId,
};
pub use scenario::{ChaosScenario, ScenarioError};
pub use server::{Admission, Calibration, Server, SubmitError, CALIBRATION_RUNS};
pub use sim::{simulate, simulate_outcomes, SimArrival, SimConfig};
