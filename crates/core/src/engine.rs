//! The dynamic real-time inference engine (Figure 8).
//!
//! Per inference the engine receives an image and a resource-utilization
//! target, looks up the accuracy-maximizing execution path that fits the
//! target in its precomputed Pareto LUT, runs that path, and returns the
//! output together with the accuracy estimate from the LUT — no additional
//! training, one set of shared model weights.

use crate::lut::{Lut, LutConfig, LutEntry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use vit_accel::AccelConfig;
use vit_fault::FaultError;
use vit_graph::{
    check_node_guard, ExecBackend, ExecError, ExecScratch, Graph, RunContext, WeightGen,
};
use vit_models::{
    build_segformer, build_swin_upernet, ModelError, SegFormerConfig, SegFormerVariant, SwinConfig,
    SwinVariant,
};
use vit_plan::{ExecPlan, PlanError};
use vit_resilience::{
    segformer_sweep_space, sweep_segformer, sweep_segformer_on_accelerator, sweep_swin,
    AccelResource, ResourceKind, Workload,
};
use vit_tensor::Tensor;
use vit_trace::{now_ns, EventKind, Phase as TracePhase};

/// The model family an engine serves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineFamily {
    /// SegFormer (the paper's primary case study).
    SegFormer(SegFormerVariant),
    /// Swin + UPerNet.
    Swin(SwinVariant),
}

/// Error from engine construction or inference.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// A graph failed to build for a selected configuration.
    Model(ModelError),
    /// Graph execution failed.
    Exec(ExecError),
    /// Lowering a graph into a compiled execution plan failed.
    Plan(PlanError),
    /// The engine's LUT is empty.
    EmptyLut,
    /// An injected fault killed the run, or an output guard caught a
    /// corrupted result before it could be returned.
    Fault(FaultError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Model(e) => write!(f, "engine model error: {e}"),
            EngineError::Exec(e) => write!(f, "engine execution error: {e}"),
            EngineError::Plan(e) => write!(f, "engine plan compilation error: {e}"),
            EngineError::EmptyLut => write!(f, "engine LUT has no execution paths"),
            EngineError::Fault(e) => write!(f, "engine fault: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// The fault behind this error, when it is a fault — the signal the
    /// serving recovery loop classifies retries on.
    pub fn as_fault(&self) -> Option<&FaultError> {
        match self {
            EngineError::Fault(e) => Some(e),
            EngineError::Exec(ExecError::Fault { source, .. }) => Some(source),
            _ => None,
        }
    }
}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        match e {
            // Surface fault-layer errors as faults so recovery policies can
            // classify them without digging through the exec error.
            ExecError::Fault { source, .. } => EngineError::Fault(source),
            other => EngineError::Exec(other),
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

/// The result of one dynamic inference.
#[derive(Debug)]
pub struct Inference {
    /// Class-logit map `[batch, classes, h, w]`.
    pub logits: Tensor,
    /// Per-pixel label map `[batch, h, w]`.
    pub label_map: Tensor,
    /// The execution path that ran.
    pub config: LutConfig,
    /// The LUT's normalized-mIoU estimate for that path.
    pub norm_miou_estimate: f64,
    /// The LUT's resource estimate for that path.
    pub resource_estimate: f64,
    /// Whether the path fit the requested budget (false when the budget was
    /// below even the cheapest path, which the engine then runs anyway and
    /// reports the overrun).
    pub met_budget: bool,
}

/// The DRT inference engine.
///
/// # Examples
///
/// ```no_run
/// use vit_drt::DrtEngine;
/// use vit_models::SegFormerVariant;
/// use vit_resilience::{ResourceKind, Workload};
/// use vit_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut engine = DrtEngine::segformer(
///     SegFormerVariant::b0(),
///     Workload::SegFormerAde,
///     (64, 64),
///     ResourceKind::GpuTime,
/// )?;
/// let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
/// let relaxed = engine.max_resource();
/// let out = engine.infer(&image, 0.7 * relaxed)?;
/// println!("ran {:?}, estimated mIoU {:.2}", out.config, out.norm_miou_estimate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DrtEngine {
    core: Arc<EngineCore>,
    scratch: ExecScratch,
    ctx: RunContext,
}

/// The shareable heart of the engine: the LUT, the model family, and a
/// concurrent graph cache — everything *except* per-worker mutable
/// execution state.
///
/// `EngineCore` is `Send + Sync`; a serving worker pool holds one
/// `Arc<EngineCore>` and gives each worker its own [`ExecScratch`].
/// [`EngineCore::select`] (pure LUT lookup, cheap, lock-free) is split
/// from [`EngineCore::infer`] (graph execution) so schedulers can
/// decide admission/configuration without running anything.
#[derive(Debug)]
pub struct EngineCore {
    family: EngineFamily,
    num_classes: usize,
    image: (usize, usize),
    lut: Lut,
    weight_gen: WeightGen,
    // Keyed by (config, batch): a batch-N execution compiles its own graph
    // and plan (arena sizing and tiling contracts scale with N), cached
    // beside the batch-1 entries so coalesced serving reuses them.
    graph_cache: RwLock<HashMap<(LutConfig, usize), Arc<Graph>>>,
    plan_cache: RwLock<HashMap<(LutConfig, usize), Arc<ExecPlan>>>,
}

impl EngineCore {
    /// Builds a core around a precomputed LUT.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::EmptyLut`] for an empty LUT.
    pub fn new(
        family: EngineFamily,
        num_classes: usize,
        image: (usize, usize),
        lut: Lut,
    ) -> Result<Self, EngineError> {
        if lut.is_empty() {
            return Err(EngineError::EmptyLut);
        }
        // Debug builds re-validate the table the engine will serve from;
        // `Lut::from_points`/`from_json` establish these invariants, but a
        // table assembled through `Lut::from_entries_unchecked` may not.
        debug_assert!(
            lut.validate().is_ok(),
            "engine LUT violates its invariants: {}",
            lut.validate().unwrap_err()
        );
        Ok(EngineCore {
            family,
            num_classes,
            image,
            lut,
            weight_gen: WeightGen::new(0),
            graph_cache: RwLock::new(HashMap::new()),
            plan_cache: RwLock::new(HashMap::new()),
        })
    }

    /// The engine's LUT.
    pub fn lut(&self) -> &Lut {
        &self.lut
    }

    /// The model family this core serves.
    pub fn family(&self) -> EngineFamily {
        self.family
    }

    /// The resource cost of the most expensive (full) execution path.
    pub fn max_resource(&self) -> f64 {
        self.lut.entries().last().map_or(0.0, |e| e.resource)
    }

    /// The resource cost of the cheapest execution path — the admission
    /// threshold for a deadline-aware scheduler.
    pub fn min_resource(&self) -> f64 {
        self.lut.entries().first().map_or(0.0, |e| e.resource)
    }

    /// The engine's input image size.
    pub fn image_size(&self) -> (usize, usize) {
        self.image
    }

    /// Number of distinct execution paths built so far.
    pub fn cached_graphs(&self) -> usize {
        self.graph_cache.read().len()
    }

    /// Number of distinct execution paths compiled into plans so far.
    pub fn cached_plans(&self) -> usize {
        self.plan_cache.read().len()
    }

    /// The configuration the engine would run for `budget`, without
    /// executing it: the accuracy-maximizing entry that fits, or the
    /// cheapest entry with `met_budget = false` when none fits.
    pub fn select(&self, budget: f64) -> (LutEntry, bool) {
        match self.lut.lookup(budget) {
            Ok(e) => (e.clone(), true),
            Err(_) => (
                self.lut
                    .entries()
                    .first()
                    .expect("EngineCore guarantees a non-empty LUT")
                    .clone(),
                false,
            ),
        }
    }

    /// The built execution graph for `config`, from the concurrent cache.
    /// This is the exact graph [`EngineCore::run`] executes for the
    /// config, so static analyses (e.g. `vit-profiler` FLOP counts) can be
    /// cross-checked against traced runs.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction fails.
    pub fn graph(&self, config: LutConfig) -> Result<Arc<Graph>, EngineError> {
        Ok(self.graph_for(config, 1)?.0)
    }

    /// The built batch-`batch` execution graph for `config`, from the
    /// concurrent cache. Batch-N graphs carry a leading batch dimension on
    /// every activation; coalesced serving runs them via
    /// [`EngineCore::run_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction fails.
    pub fn graph_batched(
        &self,
        config: LutConfig,
        batch: usize,
    ) -> Result<Arc<Graph>, EngineError> {
        Ok(self.graph_for(config, batch)?.0)
    }

    /// The built graph for `(config, batch)`, from the concurrent cache; the
    /// flag reports whether this call was served from the cache.
    fn graph_for(
        &self,
        config: LutConfig,
        batch: usize,
    ) -> Result<(Arc<Graph>, bool), EngineError> {
        if let Some(g) = self.graph_cache.read().get(&(config, batch)) {
            return Ok((g.clone(), true));
        }
        // Build outside any lock: graph construction is the expensive part
        // and must not serialize other workers' cache hits. Two workers may
        // race to build the same config; the insert below keeps the first.
        let g = Arc::new(match (self.family, config) {
            (EngineFamily::SegFormer(variant), c) => {
                let d = c
                    .as_segformer()
                    .expect("segformer engine gets segformer configs");
                build_segformer(&SegFormerConfig {
                    variant,
                    num_classes: self.num_classes,
                    image: self.image,
                    batch,
                    dynamic: d,
                })?
            }
            (EngineFamily::Swin(variant), c) => {
                let d = c.as_swin().expect("swin engine gets swin configs");
                build_swin_upernet(&SwinConfig {
                    variant,
                    num_classes: self.num_classes,
                    image: self.image,
                    batch,
                    dynamic: d,
                })?
            }
        });
        // In debug builds, statically re-verify every dynamically selected
        // execution path before it can serve an inference: a builder
        // regression that emits inconsistent shapes must fail here, not as
        // a garbage prediction at runtime (`repro verify` runs the same
        // check — plus the full diagnostic passes — over all models).
        debug_assert!(
            g.check_invariants().is_ok(),
            "graph for {config:?} violates structural invariants: {}",
            g.check_invariants().unwrap_err()
        );
        let mut cache = self.graph_cache.write();
        Ok((cache.entry((config, batch)).or_insert(g).clone(), false))
    }

    /// The compiled execution plan for `config`, from the concurrent plan
    /// cache. This is the exact plan [`EngineCore::run`] replays for the
    /// config when the context selects [`ExecBackend::Plan`], so static
    /// analyses (e.g. the `vit-verify` plan-equivalence pass) can check it
    /// against the graph from [`EngineCore::graph`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction or plan lowering
    /// fails.
    pub fn plan(&self, config: LutConfig) -> Result<Arc<ExecPlan>, EngineError> {
        Ok(self.plan_for(config, 1)?.0)
    }

    /// The compiled batch-`batch` plan for `config`, from the concurrent
    /// plan cache — arena sizing, tiling contracts, and record shapes all
    /// reflect the leading batch dimension.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction or plan lowering
    /// fails.
    pub fn plan_batched(
        &self,
        config: LutConfig,
        batch: usize,
    ) -> Result<Arc<ExecPlan>, EngineError> {
        Ok(self.plan_for(config, batch)?.0)
    }

    /// The compiled plan for `(config, batch)`, from the concurrent cache;
    /// the flag reports whether this call was served from the cache.
    fn plan_for(
        &self,
        config: LutConfig,
        batch: usize,
    ) -> Result<(Arc<ExecPlan>, bool), EngineError> {
        if let Some(p) = self.plan_cache.read().get(&(config, batch)) {
            return Ok((p.clone(), true));
        }
        // Like `graph_for`, compile outside any lock; racing workers keep
        // the first insert. Compilation packs every weight tensor, so a
        // plan-cache miss subsumes the interpreter's weight materialization.
        let (graph, _) = self.graph_for(config, batch)?;
        let p = Arc::new(ExecPlan::compile(&graph, self.weight_gen)?);
        let mut cache = self.plan_cache.write();
        Ok((cache.entry((config, batch)).or_insert(p).clone(), false))
    }

    /// Runs one dynamic inference using the caller's scratch: picks the
    /// best path for `budget` (in the LUT's resource units) under the
    /// given [`RunContext`], executes it, and returns the outputs with the
    /// precomputed accuracy estimate.
    ///
    /// When the budget is below every path, the cheapest path runs and
    /// [`Inference::met_budget`] is false.
    ///
    /// With an enabled trace sink this additionally records a
    /// [`TracePhase::LutSelect`] span around the lookup, on top of
    /// everything [`EngineCore::run`] records. Tracing never changes what
    /// is computed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction or execution fails.
    pub fn infer(
        &self,
        scratch: &mut ExecScratch,
        image: &Tensor,
        budget: f64,
        ctx: &RunContext,
    ) -> Result<Inference, EngineError> {
        let sink = ctx.sink.as_ref();
        let sel_start = sink.timestamp();
        let (entry, met) = self.select(budget);
        if sink.enabled() {
            sink.record(EventKind::Phase {
                phase: TracePhase::LutSelect,
                detail: format!("budget={budget:.3} -> {:?}", entry.config),
                start_ns: sel_start,
                end_ns: now_ns(),
            });
        }
        self.run(scratch, image, entry, met, ctx)
    }

    /// Runs a specific LUT entry (as returned by [`EngineCore::select`])
    /// under a [`RunContext`] — the execution half of [`EngineCore::infer`],
    /// for callers that already committed to a configuration at scheduling
    /// time (serving workers run this on a shared thread pool).
    ///
    /// With an enabled trace sink this records a graph-cache (or, under
    /// [`ExecBackend::Plan`], plan-cache) hit/miss counter, a
    /// [`TracePhase::GraphBuild`] / [`TracePhase::PlanBuild`] span when the
    /// path had to be built, and an [`TracePhase::Execute`] span around the
    /// whole execution (the executor or plan replay adds per-node spans
    /// underneath).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction, plan lowering, or
    /// execution fails.
    pub fn run(
        &self,
        scratch: &mut ExecScratch,
        image: &Tensor,
        entry: LutEntry,
        met_budget: bool,
        ctx: &RunContext,
    ) -> Result<Inference, EngineError> {
        let sink = ctx.sink.as_ref();
        let enabled = sink.enabled();
        // Injected hard failures (crash; poisoned plan replay under the Plan
        // backend) kill the attempt before any kernel runs.
        if let Some(f) = ctx
            .fault
            .injected_failure(ctx.exec.backend() == ExecBackend::Plan)
        {
            return Err(EngineError::Fault(f));
        }
        let exec_began = std::time::Instant::now();
        let logits = match ctx.exec.backend() {
            ExecBackend::Interpret => {
                let build_start = sink.timestamp();
                let (graph, cache_hit) = self.graph_for(entry.config, 1)?;
                if enabled {
                    let at_ns = now_ns();
                    sink.record(EventKind::Counter {
                        name: if cache_hit {
                            "graph_cache.hits".to_string()
                        } else {
                            "graph_cache.misses".to_string()
                        },
                        value: 1,
                        at_ns,
                    });
                    if !cache_hit {
                        sink.record(EventKind::Phase {
                            phase: TracePhase::GraphBuild,
                            detail: format!("{:?}", entry.config),
                            start_ns: build_start,
                            end_ns: at_ns,
                        });
                    }
                }
                let exec_start = sink.timestamp();
                let logits =
                    scratch.run_with(self.weight_gen, &graph, std::slice::from_ref(image), ctx)?;
                if enabled {
                    sink.record(EventKind::Phase {
                        phase: TracePhase::Execute,
                        detail: graph.model.clone(),
                        start_ns: exec_start,
                        end_ns: now_ns(),
                    });
                }
                logits
            }
            ExecBackend::Plan => {
                let build_start = sink.timestamp();
                let (plan, cache_hit) = self.plan_for(entry.config, 1)?;
                if enabled {
                    let at_ns = now_ns();
                    sink.record(EventKind::Counter {
                        name: if cache_hit {
                            "plan_cache.hits".to_string()
                        } else {
                            "plan_cache.misses".to_string()
                        },
                        value: 1,
                        at_ns,
                    });
                    if !cache_hit {
                        sink.record(EventKind::Phase {
                            phase: TracePhase::PlanBuild,
                            detail: format!("{:?}", entry.config),
                            start_ns: build_start,
                            end_ns: at_ns,
                        });
                    }
                }
                let exec_start = sink.timestamp();
                let logits = plan.execute(std::slice::from_ref(image), ctx)?;
                if enabled {
                    sink.record(EventKind::Phase {
                        phase: TracePhase::Execute,
                        detail: plan.model().to_string(),
                        start_ns: exec_start,
                        end_ns: now_ns(),
                    });
                }
                logits
            }
        };
        // Always-on result guard (when a guard is configured): no NaN/Inf
        // or over-magnitude logit map is ever returned to a caller.
        if let Some(g) = ctx.fault.output_guard() {
            check_node_guard("logits", &logits, g)?;
        }
        // An injected stall slows the whole execution by the plan's factor;
        // values are untouched, only wall-clock suffers (what the serving
        // watchdog is keyed to).
        if let Some(m) = ctx.fault.stall_multiplier() {
            let extra = exec_began.elapsed().mul_f64(m - 1.0);
            if !extra.is_zero() {
                std::thread::sleep(extra);
            }
        }
        let label_map = logits
            .argmax_channels()
            .expect("segmentation output is NCHW");
        Ok(Inference {
            logits,
            label_map,
            config: entry.config,
            norm_miou_estimate: entry.norm_miou,
            resource_estimate: entry.resource,
            met_budget,
        })
    }

    /// Runs one LUT entry over a coalesced batch of single-sample images in
    /// a single batch-N execution, returning one [`Inference`] per input in
    /// order.
    ///
    /// The images are stacked along the leading axis, executed through the
    /// batch-N graph (or compiled plan, under [`ExecBackend::Plan`]) cached
    /// for `(config, N)`, and the logits split back per sample. Batch-N
    /// kernels tile conv over per-sample channel planes and linear/attention
    /// over per-row/per-batch-entry chunks, so each sample's FP op order is
    /// identical to its own batch-1 run — per-request outputs are
    /// bit-identical to running the N requests sequentially (the
    /// batch-differential tests pin this).
    ///
    /// A batch of one delegates to [`EngineCore::run`] and is exactly the
    /// unbatched path.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when `images` is empty, or when graph
    /// construction, plan lowering, or execution fails. A guard trip
    /// anywhere in the batched logits fails the whole batch (callers
    /// re-serve the members individually to isolate the fault).
    pub fn run_batch(
        &self,
        scratch: &mut ExecScratch,
        images: &[Tensor],
        entry: LutEntry,
        met_budget: bool,
        ctx: &RunContext,
    ) -> Result<Vec<Inference>, EngineError> {
        if images.len() == 1 {
            return Ok(vec![self.run(scratch, &images[0], entry, met_budget, ctx)?]);
        }
        let batch = images.len();
        let batched = Tensor::stack_batch(images).map_err(|e| {
            EngineError::Exec(ExecError::Kernel {
                node: "batch_stack".to_string(),
                source: e,
            })
        })?;
        let sink = ctx.sink.as_ref();
        let enabled = sink.enabled();
        if let Some(f) = ctx
            .fault
            .injected_failure(ctx.exec.backend() == ExecBackend::Plan)
        {
            return Err(EngineError::Fault(f));
        }
        let exec_began = std::time::Instant::now();
        let logits = match ctx.exec.backend() {
            ExecBackend::Interpret => {
                let build_start = sink.timestamp();
                let (graph, cache_hit) = self.graph_for(entry.config, batch)?;
                if enabled {
                    let at_ns = now_ns();
                    sink.record(EventKind::Counter {
                        name: if cache_hit {
                            "graph_cache.hits".to_string()
                        } else {
                            "graph_cache.misses".to_string()
                        },
                        value: 1,
                        at_ns,
                    });
                    if !cache_hit {
                        sink.record(EventKind::Phase {
                            phase: TracePhase::GraphBuild,
                            detail: format!("{:?} batch={batch}", entry.config),
                            start_ns: build_start,
                            end_ns: at_ns,
                        });
                    }
                }
                let exec_start = sink.timestamp();
                let logits = scratch.run_with(
                    self.weight_gen,
                    &graph,
                    std::slice::from_ref(&batched),
                    ctx,
                )?;
                if enabled {
                    sink.record(EventKind::Phase {
                        phase: TracePhase::Execute,
                        detail: format!("{} batch={batch}", graph.model),
                        start_ns: exec_start,
                        end_ns: now_ns(),
                    });
                }
                logits
            }
            ExecBackend::Plan => {
                let build_start = sink.timestamp();
                let (plan, cache_hit) = self.plan_for(entry.config, batch)?;
                if enabled {
                    let at_ns = now_ns();
                    sink.record(EventKind::Counter {
                        name: if cache_hit {
                            "plan_cache.hits".to_string()
                        } else {
                            "plan_cache.misses".to_string()
                        },
                        value: 1,
                        at_ns,
                    });
                    if !cache_hit {
                        sink.record(EventKind::Phase {
                            phase: TracePhase::PlanBuild,
                            detail: format!("{:?} batch={batch}", entry.config),
                            start_ns: build_start,
                            end_ns: at_ns,
                        });
                    }
                }
                let exec_start = sink.timestamp();
                let logits = plan.execute(std::slice::from_ref(&batched), ctx)?;
                if enabled {
                    sink.record(EventKind::Phase {
                        phase: TracePhase::Execute,
                        detail: format!("{} batch={batch}", plan.model()),
                        start_ns: exec_start,
                        end_ns: now_ns(),
                    });
                }
                logits
            }
        };
        if let Some(g) = ctx.fault.output_guard() {
            check_node_guard("logits", &logits, g)?;
        }
        if let Some(m) = ctx.fault.stall_multiplier() {
            let extra = exec_began.elapsed().mul_f64(m - 1.0);
            if !extra.is_zero() {
                std::thread::sleep(extra);
            }
        }
        let label_maps = logits
            .argmax_channels()
            .expect("segmentation output is NCHW")
            .split_batch()
            .expect("label map has a batch axis");
        let per_sample = logits.split_batch().expect("logits have a batch axis");
        Ok(per_sample
            .into_iter()
            .zip(label_maps)
            .map(|(logits, label_map)| Inference {
                logits,
                label_map,
                config: entry.config,
                norm_miou_estimate: entry.norm_miou,
                resource_estimate: entry.resource,
                met_budget,
            })
            .collect())
    }
}

impl DrtEngine {
    /// Builds a SegFormer engine: sweeps the configuration space at the
    /// engine's image size, extracts the Pareto front, and stores the LUT.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the sweep produces no buildable paths.
    pub fn segformer(
        variant: SegFormerVariant,
        workload: Workload,
        image: (usize, usize),
        resource: ResourceKind,
    ) -> Result<Self, EngineError> {
        let num_classes = match workload {
            Workload::SegFormerCityscapes => 19,
            _ => 150,
        };
        let space = segformer_sweep_space(&variant, 2, 8);
        let points = sweep_segformer(&variant, workload, image, num_classes, &space, resource);
        let lut = Lut::from_points(
            format!("{} {workload:?} {resource:?}", variant.name),
            &points,
        );
        Self::with_lut(EngineFamily::SegFormer(variant), num_classes, image, lut)
    }

    /// Builds a SegFormer engine whose resource is *accelerator cycles or
    /// energy* on the given hardware configuration — the §VI deployment
    /// where the DRT LUT is keyed by cycles on `accelerator*`
    /// (Figures 12/13).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the sweep produces no buildable paths.
    pub fn segformer_on_accelerator(
        variant: SegFormerVariant,
        workload: Workload,
        image: (usize, usize),
        accel: &AccelConfig,
        resource: AccelResource,
    ) -> Result<Self, EngineError> {
        let num_classes = match workload {
            Workload::SegFormerCityscapes => 19,
            _ => 150,
        };
        let space = segformer_sweep_space(&variant, 2, 8);
        let points = sweep_segformer_on_accelerator(
            &variant,
            workload,
            image,
            num_classes,
            &space,
            accel,
            resource,
        );
        let lut = Lut::from_points(
            format!("{} {workload:?} accel-{resource:?}", variant.name),
            &points,
        );
        Self::with_lut(EngineFamily::SegFormer(variant), num_classes, image, lut)
    }

    /// Builds a Swin engine over an explicit configuration list.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the sweep produces no buildable paths.
    pub fn swin(
        variant: SwinVariant,
        workload: Workload,
        image: (usize, usize),
        space: &[vit_models::SwinDynamic],
        resource: ResourceKind,
    ) -> Result<Self, EngineError> {
        let points = sweep_swin(&variant, workload, image, 150, space, resource);
        let lut = Lut::from_points(
            format!("{} {workload:?} {resource:?}", variant.name),
            &points,
        );
        Self::with_lut(EngineFamily::Swin(variant), 150, image, lut)
    }

    /// Builds an engine around a precomputed LUT (e.g. deserialized from
    /// JSON).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::EmptyLut`] for an empty LUT.
    pub fn with_lut(
        family: EngineFamily,
        num_classes: usize,
        image: (usize, usize),
        lut: Lut,
    ) -> Result<Self, EngineError> {
        Ok(Self::from_core(Arc::new(EngineCore::new(
            family,
            num_classes,
            image,
            lut,
        )?)))
    }

    /// Wraps a shared core with a fresh private scratch — how serving
    /// workers mint per-thread engine handles over one LUT + graph cache.
    pub fn from_core(core: Arc<EngineCore>) -> Self {
        DrtEngine {
            core,
            scratch: ExecScratch::new(),
            ctx: RunContext::default(),
        }
    }

    /// Sets the [`RunContext`] every subsequent [`DrtEngine::infer`] runs
    /// under (sequential and untraced by default). Neither threading nor
    /// tracing changes outputs — both are bit-identical to the default.
    pub fn set_run_context(&mut self, ctx: RunContext) {
        self.ctx = ctx;
    }

    /// The engine's current run context.
    pub fn run_context(&self) -> &RunContext {
        &self.ctx
    }

    /// The shared, `Send + Sync` part of this engine.
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// The engine's LUT.
    pub fn lut(&self) -> &Lut {
        self.core.lut()
    }

    /// The resource cost of the most expensive (full) execution path —
    /// a convenient reference for choosing budgets.
    pub fn max_resource(&self) -> f64 {
        self.core.max_resource()
    }

    /// The engine's input image size.
    pub fn image_size(&self) -> (usize, usize) {
        self.core.image_size()
    }

    /// Runs one dynamic inference: picks the best path for `budget`
    /// (in the LUT's resource units), executes it, and returns the outputs
    /// with the precomputed accuracy estimate.
    ///
    /// When the budget is below every path, the cheapest path runs and
    /// [`Inference::met_budget`] is false.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction or execution fails.
    pub fn infer(&mut self, image: &Tensor, budget: f64) -> Result<Inference, EngineError> {
        self.core.infer(&mut self.scratch, image, budget, &self.ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_graph::ExecOptions;

    fn small_engine() -> DrtEngine {
        DrtEngine::segformer(
            SegFormerVariant::b0(),
            Workload::SegFormerAde,
            (64, 64),
            ResourceKind::GpuTime,
        )
        .unwrap()
    }

    #[test]
    fn engine_builds_nonempty_lut() {
        let e = small_engine();
        assert!(e.lut().len() >= 3, "only {} LUT rows", e.lut().len());
        assert!(e.max_resource() > 0.0);
    }

    #[test]
    fn tighter_budgets_select_cheaper_less_accurate_paths() {
        let mut e = small_engine();
        let full = e.max_resource();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
        let relaxed = e.infer(&img, full * 2.0).unwrap();
        let tight = e.infer(&img, full * 0.7).unwrap();
        assert!(relaxed.met_budget && tight.met_budget);
        assert!(tight.resource_estimate < relaxed.resource_estimate);
        assert!(tight.norm_miou_estimate <= relaxed.norm_miou_estimate);
        // The relaxed budget runs the full model.
        assert!((relaxed.norm_miou_estimate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_budget_runs_cheapest_and_reports_overrun() {
        let mut e = small_engine();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
        let out = e.infer(&img, 0.0).unwrap();
        assert!(!out.met_budget);
        assert_eq!(
            out.resource_estimate,
            e.lut().entries().first().unwrap().resource
        );
    }

    #[test]
    fn outputs_have_expected_shapes() {
        let mut e = small_engine();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 2);
        let out = e.infer(&img, e.max_resource()).unwrap();
        assert_eq!(out.logits.shape(), &[1, 150, 64, 64]);
        assert_eq!(out.label_map.shape(), &[1, 64, 64]);
    }

    #[test]
    fn graph_cache_reused_across_inferences() {
        let mut e = small_engine();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 3);
        let budget = e.max_resource();
        let a = e.infer(&img, budget).unwrap();
        let b = e.infer(&img, budget).unwrap();
        // Deterministic engine: identical outputs for identical inputs.
        assert_eq!(a.logits, b.logits);
        assert_eq!(e.core().cached_graphs(), 1);
    }

    #[test]
    fn engine_core_and_lut_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineCore>();
        assert_send_sync::<Lut>();
        assert_send_sync::<Arc<EngineCore>>();
    }

    #[test]
    fn select_is_consistent_with_infer() {
        let mut e = small_engine();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 9);
        for frac in [0.0, 0.4, 0.8, 1.0, 2.0] {
            let budget = e.max_resource() * frac;
            let (entry, met) = e.core().select(budget);
            let out = e.infer(&img, budget).unwrap();
            assert_eq!(out.config, entry.config);
            assert_eq!(out.met_budget, met);
        }
    }

    #[test]
    fn workers_share_one_core_and_agree() {
        // Two handles over the same Arc<EngineCore> (separate scratches)
        // produce identical outputs and share the graph cache.
        let e = small_engine();
        let core = e.core().clone();
        drop(e);
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 12);
        let budget = core.max_resource();
        let outs: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let core = core.clone();
                    let img = img.clone();
                    s.spawn(move || {
                        let mut scratch = ExecScratch::new();
                        core.infer(&mut scratch, &img, budget, &RunContext::default())
                            .unwrap()
                            .logits
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(outs[0], outs[1]);
        assert_eq!(core.cached_graphs(), 1);
    }

    #[test]
    fn plan_backend_matches_interpreter_bitwise() {
        let e = small_engine();
        let core = e.core().clone();
        drop(e);
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 21);
        let plan_ctx =
            RunContext::default().with_exec(ExecOptions::default().with_backend(ExecBackend::Plan));
        for frac in [0.3, 1.0] {
            let budget = core.max_resource() * frac;
            let mut scratch = ExecScratch::new();
            let interp = core
                .infer(&mut scratch, &img, budget, &RunContext::default())
                .unwrap();
            let planned = core.infer(&mut scratch, &img, budget, &plan_ctx).unwrap();
            assert_eq!(interp.logits, planned.logits);
            assert_eq!(interp.label_map, planned.label_map);
            assert_eq!(interp.config, planned.config);
        }
        // Each distinct config was compiled exactly once and cached.
        assert_eq!(core.cached_plans(), core.cached_graphs());
        // A repeat inference hits the plan cache (count is unchanged).
        let before = core.cached_plans();
        let mut scratch = ExecScratch::new();
        core.infer(&mut scratch, &img, core.max_resource(), &plan_ctx)
            .unwrap();
        assert_eq!(core.cached_plans(), before);
    }

    #[test]
    fn run_batch_matches_sequential_runs_bitwise() {
        let e = small_engine();
        let core = e.core().clone();
        drop(e);
        let images: Vec<Tensor> = (0..3)
            .map(|i| Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 30 + i))
            .collect();
        let (entry, met) = core.select(core.max_resource());
        for ctx in [
            RunContext::default(),
            RunContext::default().with_exec(ExecOptions::default().with_backend(ExecBackend::Plan)),
        ] {
            let mut scratch = ExecScratch::new();
            let batched = core
                .run_batch(&mut scratch, &images, entry.clone(), met, &ctx)
                .unwrap();
            assert_eq!(batched.len(), images.len());
            for (img, out) in images.iter().zip(&batched) {
                let solo = core
                    .run(&mut scratch, img, entry.clone(), met, &ctx)
                    .unwrap();
                assert_eq!(out.logits, solo.logits, "batch-N diverged from N=1");
                assert_eq!(out.label_map, solo.label_map);
                assert_eq!(out.config, solo.config);
            }
        }
        // Batch-3 and batch-1 paths cache separate graphs for one config.
        assert_eq!(core.cached_graphs(), 2);
        assert_eq!(core.cached_plans(), 2);
    }

    #[test]
    fn run_batch_of_one_is_the_unbatched_path() {
        let e = small_engine();
        let core = e.core().clone();
        drop(e);
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 40);
        let (entry, met) = core.select(core.max_resource());
        let mut scratch = ExecScratch::new();
        let outs = core
            .run_batch(
                &mut scratch,
                std::slice::from_ref(&img),
                entry.clone(),
                met,
                &RunContext::default(),
            )
            .unwrap();
        let solo = core
            .run(&mut scratch, &img, entry, met, &RunContext::default())
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].logits, solo.logits);
        // Only the batch-1 graph exists: a singleton never compiles batch-N.
        assert_eq!(core.cached_graphs(), 1);
    }

    #[test]
    fn accelerator_cycle_budgeted_engine_works() {
        use vit_accel::AccelConfig;
        use vit_resilience::AccelResource;
        let mut e = DrtEngine::segformer_on_accelerator(
            SegFormerVariant::b0(),
            Workload::SegFormerAde,
            (64, 64),
            &AccelConfig::accelerator_star(),
            AccelResource::Cycles,
        )
        .unwrap();
        assert!(e.lut().len() >= 3);
        // Budgets are cycle counts now.
        assert!(e.max_resource() > 1000.0);
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 6);
        let out = e.infer(&img, e.max_resource() * 0.8).unwrap();
        assert!(out.met_budget);
        assert!(out.norm_miou_estimate <= 1.0 + 1e-9);
    }

    #[test]
    fn lut_round_trips_into_engine() {
        let e = small_engine();
        let json = e.lut().to_json();
        let lut = Lut::from_json(&json).unwrap();
        let mut e2 = DrtEngine::with_lut(
            EngineFamily::SegFormer(SegFormerVariant::b0()),
            150,
            (64, 64),
            lut,
        )
        .unwrap();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 4);
        let out = e2.infer(&img, e2.max_resource()).unwrap();
        assert!(out.met_budget);
    }
}
