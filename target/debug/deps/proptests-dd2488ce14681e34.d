/root/repo/target/debug/deps/proptests-dd2488ce14681e34.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-dd2488ce14681e34: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
