/root/repo/target/release/deps/serde_derive-ffe8a31fd828812c.d: vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-ffe8a31fd828812c.so: vendor/serde_derive/src/lib.rs Cargo.toml

vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
