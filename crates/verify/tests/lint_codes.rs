//! One test per lint code: each constructs a minimally-broken graph or
//! LUT (through the unchecked escape hatches where the public builders
//! make the breakage unconstructible) and asserts that exactly the
//! expected diagnostic fires.

use std::sync::OnceLock;
use vit_accel::AccelConfig;
use vit_drt::{DrtEngine, EngineFamily, Lut};
use vit_graph::{Graph, LayerRole, NodeId, Op};
use vit_graph::{SchedMeta, WeightGen};
use vit_plan::{BufRange, ExecContract, ExecPlan, PlanRecord};
use vit_profiler::Profile;
use vit_resilience::{ResourceKind, Workload};
use vit_serve::SchedulePolicy;
use vit_verify::{
    audit_source, verify_accel_mapping, verify_costs, verify_exec_safety, verify_graph, verify_lut,
    verify_plan_exec, verify_sched_meta, verify_shadow, Code, Diagnostic, LutContext, Severity,
    VerifyOptions,
};

fn has(diags: &[Diagnostic], code: Code) -> bool {
    diags.iter().any(|d| d.code == code)
}

/// A small well-formed graph: input -> conv -> relu.
fn small_graph() -> Graph {
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 4, 8, 8]).expect("input");
    let c = g
        .add(
            "conv",
            Op::Conv2d {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                pad: (1, 1),
                groups: 1,
                bias: true,
            },
            LayerRole::Other,
            &[x],
        )
        .expect("conv");
    let r = g
        .add("relu", Op::Relu, LayerRole::Other, &[c])
        .expect("relu");
    g.set_output(r);
    g
}

/// The real SegFormer-B0 GPU-time LUT, built once and shared: the LUT
/// lint tests perturb copies of real rows rather than fabricating them.
fn b0_lut() -> &'static (Lut, LutContext) {
    static CELL: OnceLock<(Lut, LutContext)> = OnceLock::new();
    CELL.get_or_init(|| {
        let engine = DrtEngine::segformer(
            vit_models::SegFormerVariant::b0(),
            Workload::SegFormerAde,
            (64, 64),
            ResourceKind::GpuTime,
        )
        .expect("b0 engine builds");
        let ctx = LutContext::bare(
            EngineFamily::SegFormer(vit_models::SegFormerVariant::b0()),
            150,
            (64, 64),
        );
        (engine.lut().clone(), ctx)
    })
}

#[test]
fn v001_shape_mismatch_fires_on_edited_shape() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    nodes[1].shape = vec![1, 8, 9, 9]; // conv really produces [1, 8, 8, 8]
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    let diags = verify_graph(&broken);
    assert!(has(&diags, Code::ShapeMismatch), "{diags:?}");
    assert!(verify_graph(&g).is_empty(), "pristine graph must be clean");
}

#[test]
fn v002_bad_topology_fires_on_forward_edge() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    nodes[1].inputs = vec![NodeId::from_index(2)]; // conv consumes the later relu
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    assert!(has(&verify_graph(&broken), Code::BadTopology));
}

#[test]
fn v003_infer_failure_fires_on_incompatible_input() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    // A rank-1 input cannot feed a 2-D convolution.
    nodes[0].op = Op::Input { shape: vec![5] };
    nodes[0].shape = vec![5];
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    assert!(has(&verify_graph(&broken), Code::InferFailure));
}

#[test]
fn v004_duplicate_name_fires() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    nodes[2].name = "conv".to_string(); // now collides with node 1
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    assert!(has(&verify_graph(&broken), Code::DuplicateName));
}

#[test]
fn v005_missing_output_fires_and_is_a_warning() {
    let g = small_graph();
    let broken = Graph::from_raw_parts("test", g.nodes().to_vec(), g.input_ids().to_vec(), None);
    let diags = verify_graph(&broken);
    let d = diags
        .iter()
        .find(|d| d.code == Code::MissingOutput)
        .expect("V005 fires");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn v006_role_mismatch_fires_on_convless_fuse_group() {
    // A FuseConv group whose only member is a (parameterized) BatchNorm:
    // the paper's fuse-convolution aggregation would count zero conv FLOPs.
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 4, 8, 8]).expect("input");
    let bn = g
        .add("fuse.bn", Op::BatchNorm, LayerRole::FuseConv, &[x])
        .expect("bn");
    g.set_output(bn);
    assert!(has(&verify_graph(&g), Code::RoleMismatch));
}

#[test]
fn v006_role_mismatch_fires_on_attention_in_decoder() {
    let mut g = Graph::new("test");
    let q = g.input("q", &[1, 16, 32]).expect("q");
    let s = g
        .add(
            "decoder.sdpa",
            Op::Sdpa { heads: 4 },
            LayerRole::DecoderLinear { stage: 0 },
            &[q, q, q],
        )
        .expect("sdpa");
    g.set_output(s);
    assert!(has(&verify_graph(&g), Code::RoleMismatch));
}

#[test]
fn v010_dead_node_fires_on_unreachable_branch() {
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 4, 8, 8]).expect("input");
    let live = g
        .add("live", Op::Relu, LayerRole::Other, &[x])
        .expect("live");
    g.add("dead", Op::Gelu, LayerRole::Other, &[x])
        .expect("dead");
    g.set_output(live);
    let diags = verify_graph(&g);
    let d = diags
        .iter()
        .find(|d| d.code == Code::DeadNode)
        .expect("V010 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("unreachable") || !d.message.is_empty());
}

#[test]
fn v020_cost_mismatch_fires_on_edited_profile() {
    let g = small_graph();
    let mut profile = Profile::flops_only(&g);
    assert!(
        verify_costs(&g, &profile).is_empty(),
        "fresh profile is clean"
    );
    profile.layers[1].flops += 1;
    assert!(has(&verify_costs(&g, &profile), Code::CostMismatch));
}

#[test]
fn v021_pareto_nonmonotone_fires_on_swapped_rows() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    entries.swap(0, 1);
    let broken = Lut::from_entries_unchecked("swapped", entries);
    let diags = verify_lut(&broken, ctx, &VerifyOptions::default());
    assert!(has(&diags, Code::ParetoNonMonotone));
}

#[test]
fn v021_pareto_nonmonotone_fires_on_dominated_row() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    // Row 1 now costs more than row 0 but is no more accurate: dominated.
    entries[1].norm_miou = entries[0].norm_miou;
    let broken = Lut::from_entries_unchecked("dominated", entries);
    assert!(has(
        &verify_lut(&broken, ctx, &VerifyOptions::default()),
        Code::ParetoNonMonotone
    ));
}

#[test]
fn v022_non_finite_fires_on_nan_resource() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    entries[0].resource = f64::NAN;
    let broken = Lut::from_entries_unchecked("nan", entries);
    assert!(has(
        &verify_lut(&broken, ctx, &VerifyOptions::default()),
        Code::NonFinite
    ));
}

#[test]
fn v023_empty_lut_fires() {
    let (_, ctx) = b0_lut();
    let empty = Lut::from_entries_unchecked("empty", Vec::new());
    assert!(has(
        &verify_lut(&empty, ctx, &VerifyOptions::default()),
        Code::EmptyLut
    ));
}

#[test]
fn v024_budget_gap_fires_and_is_a_warning() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    let last = entries.len() - 1;
    entries[last].resource *= 100.0; // still sorted, but a 100x jump
    let broken = Lut::from_entries_unchecked("gapped", entries);
    let diags = verify_lut(&broken, ctx, &VerifyOptions::default());
    let d = diags
        .iter()
        .find(|d| d.code == Code::BudgetGap)
        .expect("V024 fires");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn v025_config_invalid_fires_on_wrong_family() {
    let (lut, _) = b0_lut();
    // SegFormer configs checked against a Swin deployment: every row fails.
    let swin_ctx = LutContext::bare(
        EngineFamily::Swin(vit_models::SwinVariant::tiny()),
        150,
        (64, 64),
    );
    let diags = verify_lut(lut, &swin_ctx, &VerifyOptions::default());
    assert!(has(&diags, Code::ConfigInvalid));
}

#[test]
fn v026_policy_infeasible_fires_on_low_floor_and_bad_static_index() {
    let (lut, ctx) = b0_lut();
    let mut ctx = ctx.clone();
    ctx.budget_floor = Some(lut.entries()[0].resource * 0.5);
    ctx.policies = vec![SchedulePolicy::Static { entry_index: 9999 }];
    let diags = verify_lut(lut, &ctx, &VerifyOptions::default());
    let hits = diags
        .iter()
        .filter(|d| d.code == Code::PolicyInfeasible)
        .count();
    assert!(hits >= 2, "both the floor and the index fire: {diags:?}");
}

#[test]
fn v027_norm_out_of_range_fires() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    entries[0].norm_miou = 1.5;
    let broken = Lut::from_entries_unchecked("oob", entries);
    assert!(has(
        &verify_lut(&broken, ctx, &VerifyOptions::default()),
        Code::NormOutOfRange
    ));
}

#[test]
fn v030_empty_tiling_fires_on_zero_channel_conv() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    if let Op::Conv2d { out_channels, .. } = &mut nodes[1].op {
        *out_channels = 0;
    }
    nodes[1].shape = vec![1, 0, 8, 8];
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    let diags = verify_accel_mapping(
        &broken,
        &AccelConfig::accelerator_a(),
        &VerifyOptions::default(),
    );
    assert!(has(&diags, Code::EmptyTiling));
}

#[test]
fn v031_vector_underutilized_fires_on_degenerate_conv() {
    // c=1 against c0=32 and k=33 against a k0=32 datapath: combined lane
    // utilization (1/32) * (33/64) ~ 1.6%, below the 2% floor.
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 1, 8, 8]).expect("input");
    let c = g
        .add(
            "conv",
            Op::Conv2d {
                out_channels: 33,
                kernel: (1, 1),
                stride: (1, 1),
                pad: (0, 0),
                groups: 1,
                bias: false,
            },
            LayerRole::Other,
            &[x],
        )
        .expect("conv");
    g.set_output(c);
    let accel = AccelConfig::accelerator_a();
    assert_eq!(
        (accel.k0, accel.c0),
        (32, 32),
        "test assumes the 32x32 datapath"
    );
    let diags = verify_accel_mapping(&g, &accel, &VerifyOptions::default());
    let d = diags
        .iter()
        .find(|d| d.code == Code::VectorUnderutilized)
        .expect("V031 fires");
    assert_eq!(d.severity, Severity::Warning);
}

/// A minimal sound two-record plan (input -> relu) built through the
/// escape hatches, which the V05x tests then break one invariant at a
/// time. Arena: input writes [0, 8), relu reads it and writes [8, 16).
fn sound_exec_plan() -> ExecPlan {
    let r0 = PlanRecord::from_raw_parts(
        "in",
        Op::Input { shape: vec![8] },
        vec![],
        vec![],
        BufRange { offset: 0, len: 8 },
        vec![8],
    );
    let r1 = PlanRecord::from_raw_parts(
        "relu",
        Op::Relu,
        vec![BufRange { offset: 0, len: 8 }],
        vec![vec![8]],
        BufRange { offset: 8, len: 8 },
        vec![8],
    );
    ExecPlan::from_raw_parts(
        "exec-test",
        vec![r0, r1],
        16,
        BufRange { offset: 8, len: 8 },
        vec![8],
    )
}

fn break_relu(f: impl FnOnce(&mut PlanRecord)) -> ExecPlan {
    let plan = sound_exec_plan();
    let mut records = plan.records().to_vec();
    f(&mut records[1]);
    ExecPlan::from_raw_parts(
        plan.model(),
        records,
        plan.arena_len(),
        plan.output_range(),
        plan.output_shape().to_vec(),
    )
}

#[test]
fn v050_chunk_overlap_fires_on_overlapping_explicit_chunks() {
    let broken = break_relu(|r| {
        r.contract = ExecContract::Explicit {
            chunks: vec![
                BufRange { offset: 0, len: 6 },
                BufRange { offset: 4, len: 4 },
            ],
            reassociates: false,
        };
    });
    let diags = verify_plan_exec(&broken);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == Code::ChunkOverlap)
            .count(),
        1,
        "{diags:?}"
    );
    assert!(verify_plan_exec(&sound_exec_plan()).is_empty());
}

#[test]
fn v051_chunk_gap_fires_on_uncovered_output() {
    let broken = break_relu(|r| {
        r.contract = ExecContract::Explicit {
            chunks: vec![
                BufRange { offset: 0, len: 3 },
                BufRange { offset: 5, len: 3 },
            ],
            reassociates: false,
        };
    });
    let diags = verify_plan_exec(&broken);
    assert_eq!(
        diags.iter().filter(|d| d.code == Code::ChunkGap).count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn v052_exec_alias_fires_on_in_place_record() {
    // The relu now writes over the very range it reads.
    let broken = break_relu(|r| {
        r.out = BufRange { offset: 0, len: 8 };
    });
    let diags = verify_plan_exec(&broken);
    assert_eq!(
        diags.iter().filter(|d| d.code == Code::ExecAlias).count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn v053_premature_free_fires_on_freed_range_with_pending_reader() {
    // A third record still reads the input range, but the relu's
    // recorded liveness already freed it.
    let plan = sound_exec_plan();
    let mut records = plan.records().to_vec();
    records[1].frees = vec![BufRange { offset: 0, len: 8 }];
    records.push(PlanRecord::from_raw_parts(
        "late-reader",
        Op::Gelu,
        vec![BufRange { offset: 0, len: 8 }],
        vec![vec![8]],
        BufRange { offset: 16, len: 8 },
        vec![8],
    ));
    let broken = ExecPlan::from_raw_parts(
        "exec-test",
        records,
        24,
        BufRange { offset: 16, len: 8 },
        vec![8],
    );
    let diags = verify_plan_exec(&broken);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == Code::PrematureFree)
            .count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn v054_sched_indegree_fires_on_undercounted_dispatch() {
    let g = small_graph();
    let truth = SchedMeta::of(&g);
    // The relu's in-degree drops to 0: it could dispatch before the conv.
    let mut indegree = truth.indegree().to_vec();
    indegree[2] = 0;
    let broken = SchedMeta::from_raw_parts(indegree, truth.consumers().to_vec());
    let diags = verify_sched_meta(&g, &broken);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == Code::SchedIndegree)
            .count(),
        1,
        "{diags:?}"
    );
    assert!(verify_sched_meta(&g, &truth).is_empty());
}

#[test]
fn v055_sched_consumers_fires_on_undercounted_reclamation() {
    let g = small_graph();
    let truth = SchedMeta::of(&g);
    // The conv's buffer would be recycled while the relu still reads it.
    let mut consumers = truth.consumers().to_vec();
    consumers[1] = 0;
    let broken = SchedMeta::from_raw_parts(truth.indegree().to_vec(), consumers);
    let diags = verify_sched_meta(&g, &broken);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == Code::SchedConsumers)
            .count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn v056_fp_reassociation_fires_and_is_a_warning() {
    // A well-formed decomposition that declares reassociation on an op
    // with no registered tolerance class (Relu): the record has left the
    // exact tier with no differential oracle to bound it.
    let broken = break_relu(|r| {
        r.contract = ExecContract::Explicit {
            chunks: vec![
                BufRange { offset: 0, len: 4 },
                BufRange { offset: 4, len: 4 },
            ],
            reassociates: true,
        };
    });
    let diags = verify_plan_exec(&broken);
    let hits: Vec<_> = diags
        .iter()
        .filter(|d| d.code == Code::FpReassociation)
        .collect();
    assert_eq!(hits.len(), 1, "{diags:?}");
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(!diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn v056_is_silent_when_the_op_has_a_tolerance_class() {
    // The same reassociating decomposition on a Linear record is legal:
    // the Gemm tolerance class bounds its outputs in the tolerance tier.
    let routed = break_relu(|r| {
        r.op = Op::Linear {
            out_features: 8,
            bias: false,
        };
        r.contract = ExecContract::Explicit {
            chunks: vec![
                BufRange { offset: 0, len: 4 },
                BufRange { offset: 4, len: 4 },
            ],
            reassociates: true,
        };
    });
    let diags = verify_plan_exec(&routed);
    assert!(
        !diags.iter().any(|d| d.code == Code::FpReassociation),
        "{diags:?}"
    );
}

#[test]
fn v057_undocumented_unsafe_fires_without_safety_comment() {
    let dirty = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let diags = audit_source("test.rs", dirty);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == Code::UndocumentedUnsafe)
            .count(),
        1,
        "{diags:?}"
    );
    let documented = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees `p` is valid.\n    unsafe { *p }\n}\n";
    assert!(audit_source("test.rs", documented).is_empty());
    // Identifier containing the word must not count.
    assert!(audit_source("test.rs", "let unsafe_flag = 1;\n").is_empty());
}

#[test]
fn v058_unchecked_index_fires() {
    let dirty = "// SAFETY: in bounds by construction.\nlet x = unsafe { v.get_unchecked(3) };\n";
    let diags = audit_source("test.rs", dirty);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == Code::UncheckedIndex)
            .count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn v059_shadow_divergence_fires_when_runtime_contradicts_static() {
    // The relu reads a range no record ever writes: statically invisible
    // to the plan-local exec checks (nothing is freed, nothing aliases),
    // but the shadow replay observes the unwritten read.
    let plan = sound_exec_plan();
    let mut records = plan.records().to_vec();
    records[1].inputs = vec![BufRange { offset: 16, len: 8 }];
    let broken = ExecPlan::from_raw_parts(
        "exec-test",
        records,
        24,
        BufRange { offset: 8, len: 8 },
        vec![8],
    );
    let static_diags = verify_plan_exec(&broken);
    assert!(static_diags.is_empty(), "{static_diags:?}");
    let diags = verify_shadow(&broken, &static_diags, &[1, 2, 8]);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == Code::ShadowDivergence)
            .count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn exec_safety_pass_is_clean_on_a_compiled_plan() {
    let g = small_graph();
    let plan = ExecPlan::compile(&g, WeightGen::new(0)).expect("compiles");
    let sched = SchedMeta::of(&g);
    let diags = verify_exec_safety(&g, &plan, &sched);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn batch_n_plans_satisfy_the_same_exec_safety_contracts() {
    // Continuous batching compiles plans from batch-N graphs: the arena
    // sizing, tiling contracts, and liveness proofs must hold at N > 1
    // exactly as they do at N = 1 — same lints, zero diagnostics.
    use vit_models::{build_segformer, SegFormerConfig, SegFormerDynamic, SegFormerVariant};
    let variant = SegFormerVariant::b0();
    let dynamic = SegFormerDynamic::full(&variant);
    for batch in [1usize, 4] {
        let g = build_segformer(&SegFormerConfig {
            variant,
            num_classes: 150,
            image: (64, 64),
            batch,
            dynamic,
        })
        .expect("batch-N segformer builds");
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).expect("batch-N plan compiles");
        let plan_diags = vit_verify::verify_plan(&g, &plan);
        assert!(plan_diags.is_empty(), "batch={batch}: {plan_diags:?}");
        let sched = SchedMeta::of(&g);
        let diags = verify_exec_safety(&g, &plan, &sched);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "batch={batch}: {diags:?}"
        );
    }
}

#[test]
fn every_code_documents_its_invariant() {
    for code in Code::ALL {
        assert!(!code.invariant().is_empty(), "{code} lacks an invariant");
    }
}
