/root/repo/target/debug/deps/repro-73bdf73f02bf0481.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-73bdf73f02bf0481: crates/bench/src/main.rs

crates/bench/src/main.rs:
