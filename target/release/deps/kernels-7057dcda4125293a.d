/root/repo/target/release/deps/kernels-7057dcda4125293a.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-7057dcda4125293a: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
