//! Graph interpreter: executes a [`Graph`] on real tensors with seeded
//! synthetic weights.
//!
//! Weight values are a pure function of `(weight seed, node name, element
//! coordinates)`. This gives the *shared-weights* property the paper's
//! dynamic pruning relies on: a pruned layer that keeps the first `k`
//! channels computes with exactly the same weight values as the full layer's
//! first `k` channels, with no retraining — so measured output fidelity
//! between a pruned graph and the full graph is meaningful.

use crate::graph::{Graph, NodeId};
use crate::op::Op;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use vit_fault::{check_guard, FaultCtx, FaultError, GuardConfig};
use vit_tensor::par::Scope;
use vit_tensor::{ops, BufferPool, ExecCtx, Tensor, TensorError, ThreadPool};
use vit_trace::{now_ns, null_sink, EventKind, Phase as TracePhase, TraceSink};

/// Which execution engine a run uses.
///
/// Both backends produce bit-identical outputs; they differ only in how
/// much per-run work happens outside the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// Walk the graph per run: per-node weight-cache lookups, buffer-pool
    /// allocation, and (when threaded) wavefront node scheduling.
    #[default]
    Interpret,
    /// Replay a compiled `vit-plan` `ExecPlan`: a flat record loop over a
    /// pre-sized arena with pre-packed weights and fused epilogues. The
    /// flag lives here so `RunContext` can carry it everywhere; the plan
    /// types themselves live in the `vit-plan` crate and engines dispatch
    /// on this value.
    Plan,
}

/// How a graph execution runs: sequentially, or tiled across a worker
/// pool with wavefront node scheduling — and on which backend
/// ([`ExecBackend`]).
///
/// The parallel path is **bit-identical** to the sequential one at any
/// thread count (see the determinism contract in [`vit_tensor::par`]); the
/// option only changes wall-clock time, never results.
///
/// Cloning is cheap — clones share the same pool, which is how serving
/// workers cooperate on one set of physical cores instead of
/// oversubscribing.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    pool: Option<Arc<ThreadPool>>,
    backend: ExecBackend,
    reference: bool,
}

impl ExecOptions {
    /// Single-threaded execution (the default).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Execution over a private pool of `threads` total threads; `threads
    /// <= 1` is sequential.
    pub fn threaded(threads: usize) -> Self {
        if threads <= 1 {
            Self::default()
        } else {
            ExecOptions {
                pool: Some(Arc::new(ThreadPool::new(threads))),
                ..Self::default()
            }
        }
    }

    /// Execution over an existing shared pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        ExecOptions {
            pool: Some(pool),
            ..Self::default()
        }
    }

    /// Selects the execution backend, keeping the pool configuration.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Routes interpreter runs to the naive reference oracle kernels
    /// ([`vit_tensor::ops::reference`]) instead of the packed
    /// micro-kernels. The tolerance tier's model-level differentials use
    /// this to replay a whole network against the oracle; it applies to
    /// the [`ExecBackend::Interpret`] backend only (compiled plans are
    /// packed by construction).
    pub fn with_reference_kernels(mut self, reference: bool) -> Self {
        self.reference = reference;
        self
    }

    /// Whether interpreter runs use the reference oracle kernels.
    pub fn reference_kernels(&self) -> bool {
        self.reference
    }

    /// The selected execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Total threads this execution may use (1 when sequential).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// The shared pool, when one is attached and worth using.
    pub fn active_pool(&self) -> Option<&ThreadPool> {
        self.pool.as_deref().filter(|p| p.threads() > 1)
    }
}

/// Everything one graph (or engine) run needs beyond its inputs: how to
/// execute ([`ExecOptions`]) and where to send trace events
/// ([`TraceSink`]).
///
/// This is the single context parameter that replaced the
/// `run`/`run_opts`/`infer_with`/`infer_with_opts` method sprawl.
/// `RunContext::default()` is sequential and untraced — exactly the old
/// default behavior — and the builder methods opt into more:
///
/// ```
/// use vit_graph::{ExecOptions, RunContext};
/// use std::sync::Arc;
///
/// let quiet = RunContext::default();
/// let traced = RunContext::default()
///     .with_exec(ExecOptions::threaded(4))
///     .with_sink(Arc::new(vit_trace::RingBufferSink::new(4096)));
/// assert_eq!(quiet.threads(), 1);
/// assert_eq!(traced.threads(), 4);
/// ```
///
/// Cloning is cheap (both fields are shared handles); serving workers
/// clone one context per request.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Sequential vs wavefront-parallel execution.
    pub exec: ExecOptions,
    /// Destination for trace events; [`vit_trace::NullSink`] (the default)
    /// keeps the run untraced and free of tracing cost.
    pub sink: Arc<dyn TraceSink>,
    /// Fault injection and detection scope ([`vit_fault::FaultCtx`]); the
    /// default is fully inert. Serving arms this per chaos attempt so every
    /// injected fault is a pure function of `(seed, request, attempt)`.
    pub fault: FaultCtx,
}

impl Default for RunContext {
    fn default() -> Self {
        RunContext {
            exec: ExecOptions::sequential(),
            sink: null_sink(),
            fault: FaultCtx::default(),
        }
    }
}

impl RunContext {
    /// Sequential, untraced — identical to `default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the execution options.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Replaces the trace sink.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Replaces the fault injection/detection scope.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultCtx) -> Self {
        self.fault = fault;
        self
    }

    /// Convenience for `with_exec(ExecOptions::threaded(threads))`.
    #[must_use]
    pub fn threaded(threads: usize) -> Self {
        Self::default().with_exec(ExecOptions::threaded(threads))
    }

    /// Total threads this context executes with (1 when sequential).
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Whether the attached sink actually records events.
    pub fn trace_enabled(&self) -> bool {
        self.sink.enabled()
    }
}

/// First-order DRAM bytes of one node — the same model as
/// `vit-profiler::node_io_bytes` (read every input and every parameter,
/// write the output once, 4-byte elements; data movers `Input`/`Identity`
/// count zero), so traced byte totals cross-check against static profiles.
fn node_trace_bytes(graph: &Graph, node: &crate::graph::Node) -> u64 {
    if matches!(node.op, Op::Input { .. } | Op::Identity) {
        return 0;
    }
    let in_bytes: u64 = node
        .inputs
        .iter()
        .map(|id| graph.node(*id).shape.iter().product::<usize>() as u64 * 4)
        .sum();
    let out_bytes = node.shape.iter().product::<usize>() as u64 * 4;
    let param_bytes = node.params(graph) * 4;
    in_bytes + out_bytes + param_bytes
}

/// Error from graph execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// A kernel rejected its inputs.
    Kernel {
        /// Node where the failure occurred.
        node: String,
        /// Underlying tensor error.
        source: TensorError,
    },
    /// The provided inputs did not match the graph's input nodes.
    BadInputs {
        /// Human-readable description.
        msg: String,
    },
    /// An injected fault killed the run, or a detection guard caught a
    /// corrupted activation.
    Fault {
        /// Node (or plan record) where the fault surfaced.
        node: String,
        /// The fault or guard trip.
        source: FaultError,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Kernel { node, source } => {
                write!(f, "execution failed at `{node}`: {source}")
            }
            ExecError::BadInputs { msg } => write!(f, "bad graph inputs: {msg}"),
            ExecError::Fault { node, source } => {
                write!(f, "fault at `{node}`: {source}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Kernel { source, .. } => Some(source),
            ExecError::BadInputs { .. } => None,
            ExecError::Fault { source, .. } => Some(source),
        }
    }
}

/// SplitMix64 finalizer: cheap, high-quality coordinate hashing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic, coordinate-addressed weight generator.
///
/// `value(coords)` is independent of the tensor's overall shape, so any
/// prefix slice of a layer's weights is bit-identical between the full and
/// pruned graphs.
#[derive(Debug, Clone, Copy)]
pub struct WeightGen {
    seed: u64,
}

impl WeightGen {
    /// Creates a generator with a global experiment seed.
    pub fn new(seed: u64) -> Self {
        WeightGen { seed }
    }

    fn node_seed(&self, name: &str) -> u64 {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        splitmix64(self.seed ^ h.finish())
    }

    /// Uniform value in `[-bound, bound]` for one weight coordinate.
    fn coord_value(node_seed: u64, coords: &[usize], bound: f32) -> f32 {
        let mut z = node_seed;
        for &c in coords {
            z = splitmix64(z ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        // Map to [-1, 1).
        let unit = (z >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0;
        unit * bound
    }

    /// Materializes a weight tensor with a constant per-element bound.
    ///
    /// `param` distinguishes multiple parameters of the same node
    /// (e.g. `"weight"` vs `"bias"`).
    pub fn tensor(&self, node: &str, param: &str, shape: &[usize], bound: f32) -> Tensor {
        let ns = self.node_seed(&format!("{node}/{param}"));
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..numel {
            data.push(Self::coord_value(ns, &idx, bound));
            // Row-major increment.
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Tensor::from_vec(data, shape).expect("constructed with matching length")
    }

    /// Materializes a layer weight whose variance *decays along an input
    /// coordinate* so that every prefix width is well-conditioned.
    ///
    /// The element at input index `c` along dimension `decay_dim` has
    /// variance `1 / ((c+1)(c+2)) / spatial`. The telescoping sum
    /// `Σ_{c<n} 1/((c+1)(c+2)) = 1 - 1/(n+1)` means a layer keeps roughly
    /// unit gain for *any* number of retained input channels `n` — the
    /// property that makes the shared-weights pruning experiments both
    /// numerically stable and faithful to importance-ordered channel
    /// pruning of a pretrained model (early channels matter more).
    pub fn decayed_tensor(
        &self,
        node: &str,
        param: &str,
        shape: &[usize],
        decay_dim: usize,
        spatial: usize,
    ) -> Tensor {
        let ns = self.node_seed(&format!("{node}/{param}"));
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..numel {
            let c = idx[decay_dim] as f32;
            let var = 1.0 / ((c + 1.0) * (c + 2.0)) / spatial as f32;
            let bound = (3.0 * var).sqrt();
            data.push(Self::coord_value(ns, &idx, bound));
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Tensor::from_vec(data, shape).expect("constructed with matching length")
    }

    /// A near-one tensor for normalization scales.
    pub fn near_one(&self, node: &str, param: &str, shape: &[usize]) -> Tensor {
        let noise = self.tensor(node, param, shape, 0.1);
        let mut t = noise;
        for v in t.data_mut() {
            *v += 1.0;
        }
        t
    }
}

fn cyclic_shift(x: &Tensor, dy: isize, dx: isize) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(x.shape());
    let xd = x.data();
    let od = out.data_mut();
    let wrap = |v: isize, m: usize| -> usize {
        let m = m as isize;
        (((v % m) + m) % m) as usize
    };
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for y in 0..h {
                let sy = wrap(y as isize - dy, h);
                for xx in 0..w {
                    let sx = wrap(xx as isize - dx, w);
                    od[base + y * w + xx] = xd[base + sy * w + sx];
                }
            }
        }
    }
    out
}

fn window_partition(x: &Tensor, window: usize) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (nh, nw) = (h.div_ceil(window), w.div_ceil(window));
    let mut out = Tensor::zeros(&[n * nh * nw, window * window, c]);
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for wy in 0..nh {
            for wx in 0..nw {
                let wi = (b * nh + wy) * nw + wx;
                for py in 0..window {
                    let iy = wy * window + py;
                    if iy >= h {
                        continue; // zero padding
                    }
                    for px in 0..window {
                        let ix = wx * window + px;
                        if ix >= w {
                            continue; // zero padding
                        }
                        let tok = py * window + px;
                        for ch in 0..c {
                            let src = ((b * c + ch) * h + iy) * w + ix;
                            od[(wi * window * window + tok) * c + ch] = xd[src];
                        }
                    }
                }
            }
        }
    }
    out
}

fn window_merge(x: &Tensor, window: usize, h: usize, w: usize) -> Tensor {
    let c = x.shape()[2];
    let (nh, nw) = (h.div_ceil(window), w.div_ceil(window));
    let n = x.shape()[0] / (nh * nw);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for wy in 0..nh {
            for wx in 0..nw {
                let wi = (b * nh + wy) * nw + wx;
                for py in 0..window {
                    let iy = wy * window + py;
                    if iy >= h {
                        continue; // crop padding
                    }
                    for px in 0..window {
                        let ix = wx * window + px;
                        if ix >= w {
                            continue; // crop padding
                        }
                        let tok = py * window + px;
                        for ch in 0..c {
                            let dst = ((b * c + ch) * h + iy) * w + ix;
                            od[dst] = xd[(wi * window * window + tok) * c + ch];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Per-worker mutable execution state: the lazily generated weight cache
/// and reusable value buffers.
///
/// [`WeightGen`] is `Copy` and freely shared; `ExecScratch` is what a
/// concurrent caller must keep one-per-thread. Weight values are a pure
/// function of the generator, so two workers with separate scratches over
/// the same generator compute identical results.
#[derive(Debug, Default)]
pub struct ExecScratch {
    cache: HashMap<String, Arc<Vec<Tensor>>>,
    values: Vec<Option<Tensor>>,
    bufs: BufferPool,
}

impl ExecScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes with cached weights (observability for cache-reuse
    /// tests).
    pub fn cached_nodes(&self) -> usize {
        self.cache.len()
    }

    /// The parameter-tensor shapes a node of this op/input signature owns.
    fn weight_shapes(op: &Op, in_shapes: &[&[usize]]) -> Vec<Vec<usize>> {
        node_weight_shapes(op, in_shapes)
    }

    /// Whether a cached weight set matches the shapes this graph needs.
    fn cache_entry_valid(w: &[Tensor], expected: &[Vec<usize>]) -> bool {
        w.len() == expected.len()
            && w.iter()
                .zip(expected.iter())
                .all(|(t, s)| t.shape() == s.as_slice())
    }

    fn weights_for(
        &mut self,
        gen: WeightGen,
        node_name: &str,
        op: &Op,
        in_shapes: &[&[usize]],
    ) -> Arc<Vec<Tensor>> {
        // The same node name can appear in graphs of *different* dynamic
        // configurations with different widths (that is the point of the
        // shared-weights design), so a cache hit is only valid when the
        // cached shapes match this graph's shapes.
        let expected = Self::weight_shapes(op, in_shapes);
        if let Some(w) = self.cache.get(node_name) {
            if Self::cache_entry_valid(w, &expected) {
                return Arc::clone(w);
            }
        }
        let w = Arc::new(generate_node_weights(gen, node_name, op, in_shapes));
        self.cache.insert(node_name.to_string(), Arc::clone(&w));
        w
    }

    /// Generates-and-caches weights for every parameterized node of
    /// `graph` whose cache entry is missing or shape-mismatched,
    /// parallelizing generation across `pool` when one is given. Weight
    /// values are a pure function of `(gen, node name, coordinates)`, so
    /// the generation schedule cannot affect them.
    fn materialize_weights(&mut self, gen: WeightGen, graph: &Graph, pool: Option<&ThreadPool>) {
        let mut missing: Vec<(&str, &Op, Vec<&[usize]>)> = Vec::new();
        for (_, node) in graph.iter() {
            let in_shapes: Vec<&[usize]> = node
                .inputs
                .iter()
                .map(|i| graph.node(*i).shape.as_slice())
                .collect();
            let expected = Self::weight_shapes(&node.op, &in_shapes);
            if expected.is_empty() {
                continue;
            }
            match self.cache.get(node.name.as_str()) {
                Some(w) if Self::cache_entry_valid(w, &expected) => {}
                _ => missing.push((node.name.as_str(), &node.op, in_shapes)),
            }
        }
        if missing.is_empty() {
            return;
        }
        let mut generated: Vec<Option<Vec<Tensor>>> = Vec::new();
        generated.resize_with(missing.len(), || None);
        match pool {
            Some(pool) if missing.len() > 1 => pool.scope(|s| {
                for (slot, (name, op, in_shapes)) in generated.iter_mut().zip(missing.iter()) {
                    s.spawn(move |_| {
                        *slot = Some(generate_node_weights(gen, name, op, in_shapes));
                    });
                }
            }),
            _ => {
                for (slot, (name, op, in_shapes)) in generated.iter_mut().zip(missing.iter()) {
                    *slot = Some(generate_node_weights(gen, name, op, in_shapes));
                }
            }
        }
        for ((name, _, _), w) in missing.into_iter().zip(generated) {
            self.cache
                .insert(name.to_string(), Arc::new(w.expect("slot filled")));
        }
    }
}

/// The parameter-tensor shapes a node of `op` with inputs of `in_shapes`
/// owns, in the order [`generate_node_weights`] produces them.
///
/// Plan compilers use this (paired with [`generate_node_weights`]) to
/// materialize weights once at plan time instead of per inference.
pub fn node_weight_shapes(op: &Op, in_shapes: &[&[usize]]) -> Vec<Vec<usize>> {
    match op {
        Op::Conv2d {
            out_channels,
            kernel,
            groups,
            bias,
            ..
        } => {
            let c = in_shapes[0][1];
            let mut v = vec![vec![*out_channels, c / groups, kernel.0, kernel.1]];
            if *bias {
                v.push(vec![*out_channels]);
            }
            v
        }
        Op::Linear { out_features, bias } => {
            let in_features = *in_shapes[0].last().expect("validated");
            let mut v = vec![vec![*out_features, in_features]];
            if *bias {
                v.push(vec![*out_features]);
            }
            v
        }
        Op::DeformAttn {
            heads,
            levels,
            points,
            dim,
        } => {
            let d = *dim;
            let hlp = heads * levels * points;
            vec![vec![d, d], vec![d, d], vec![hlp * 2, d], vec![hlp, d]]
        }
        Op::LayerNorm => {
            let f = *in_shapes[0].last().expect("validated");
            vec![vec![f], vec![f]]
        }
        Op::BatchNorm => {
            let c = in_shapes[0][1];
            vec![vec![c], vec![c]]
        }
        _ => Vec::new(),
    }
}

/// Materializes the parameter tensors a node owns. Pure in `(gen,
/// node_name, op, in_shapes)` — safe to call from any thread, and the
/// values the interpreter's weight cache and a compiled plan's packed
/// weights both come from (which is what makes the two backends
/// bit-identical).
pub fn generate_node_weights(
    gen: WeightGen,
    node_name: &str,
    op: &Op,
    in_shapes: &[&[usize]],
) -> Vec<Tensor> {
    match op {
        Op::Conv2d {
            out_channels,
            kernel,
            groups,
            bias,
            ..
        } => {
            let c = in_shapes[0][1];
            let mut v = vec![gen.decayed_tensor(
                node_name,
                "weight",
                &[*out_channels, c / groups, kernel.0, kernel.1],
                1,
                kernel.0 * kernel.1,
            )];
            if *bias {
                v.push(gen.tensor(node_name, "bias", &[*out_channels], 0.05));
            }
            v
        }
        Op::Linear { out_features, bias } => {
            let in_features = *in_shapes[0].last().expect("validated");
            let mut v =
                vec![gen.decayed_tensor(node_name, "weight", &[*out_features, in_features], 1, 1)];
            if *bias {
                v.push(gen.tensor(node_name, "bias", &[*out_features], 0.05));
            }
            v
        }
        Op::DeformAttn {
            heads,
            levels,
            points,
            dim,
        } => {
            let d = *dim;
            let hlp = heads * levels * points;
            vec![
                gen.decayed_tensor(node_name, "value_proj", &[d, d], 1, 1),
                gen.decayed_tensor(node_name, "output_proj", &[d, d], 1, 1),
                gen.decayed_tensor(node_name, "offsets", &[hlp * 2, d], 1, 1),
                gen.decayed_tensor(node_name, "attn_weights", &[hlp, d], 1, 1),
            ]
        }
        Op::LayerNorm => {
            let f = *in_shapes[0].last().expect("validated");
            vec![
                gen.near_one(node_name, "gamma", &[f]),
                gen.tensor(node_name, "beta", &[f], 0.1),
            ]
        }
        Op::BatchNorm => {
            let c = in_shapes[0][1];
            vec![
                gen.near_one(node_name, "scale", &[c]),
                gen.tensor(node_name, "shift", &[c], 0.1),
            ]
        }
        _ => Vec::new(),
    }
}

impl ExecScratch {
    /// Runs the graph with weights drawn from `gen`, using this scratch's
    /// weight cache and buffers (one tensor per graph input, in declaration
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph or a
    /// kernel fails.
    ///
    /// # Panics
    ///
    /// Panics when the graph has no output set.
    pub fn run(
        &mut self,
        gen: WeightGen,
        graph: &Graph,
        inputs: &[Tensor],
    ) -> Result<Tensor, ExecError> {
        self.run_with(gen, graph, inputs, &RunContext::default())
    }

    /// [`ExecScratch::run`] with explicit [`ExecOptions`]: sequential
    /// without a pool, wavefront-scheduled (plus intra-kernel tiling)
    /// with one. Both paths return bit-identical tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph or a
    /// kernel fails.
    ///
    /// # Panics
    ///
    /// Panics when the graph has no output set.
    pub fn run_opts(
        &mut self,
        gen: WeightGen,
        graph: &Graph,
        inputs: &[Tensor],
        opts: &ExecOptions,
    ) -> Result<Tensor, ExecError> {
        let ctx = RunContext {
            exec: opts.clone(),
            sink: null_sink(),
            fault: FaultCtx::default(),
        };
        self.run_with(gen, graph, inputs, &ctx)
    }

    /// The canonical entry point: runs the graph under a full
    /// [`RunContext`] — execution options plus trace sink.
    ///
    /// With an enabled sink this records a [`TracePhase::WeightMaterialize`]
    /// span, a [`TracePhase::Run`] span, one [`EventKind::Node`] span per
    /// executed node, wavefront [`EventKind::Sched`] samples on the
    /// parallel path, and buffer-pool hit/miss/zeroing counter deltas.
    /// Tracing never changes what is computed: outputs are bit-identical
    /// with any sink attached.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph or a
    /// kernel fails.
    ///
    /// # Panics
    ///
    /// Panics when the graph has no output set.
    pub fn run_with(
        &mut self,
        gen: WeightGen,
        graph: &Graph,
        inputs: &[Tensor],
        ctx: &RunContext,
    ) -> Result<Tensor, ExecError> {
        let output = graph.output().expect("graph must have an output set");
        if inputs.len() != graph.input_ids().len() {
            return Err(ExecError::BadInputs {
                msg: format!(
                    "graph `{}` has {} inputs, got {}",
                    graph.model,
                    graph.input_ids().len(),
                    inputs.len()
                ),
            });
        }
        for (i, id) in graph.input_ids().iter().enumerate() {
            if graph.node(*id).shape != inputs[i].shape() {
                return Err(ExecError::BadInputs {
                    msg: format!(
                        "input {i} expects shape {:?}, got {:?}",
                        graph.node(*id).shape,
                        inputs[i].shape()
                    ),
                });
            }
        }
        let sink = ctx.sink.as_ref();
        let enabled = sink.enabled();
        let pool_stats_before = if enabled {
            Some(self.bufs.stats())
        } else {
            None
        };
        let wm_start = sink.timestamp();
        self.materialize_weights(gen, graph, ctx.exec.active_pool());
        if enabled {
            sink.record(EventKind::Phase {
                phase: TracePhase::WeightMaterialize,
                detail: graph.model.clone(),
                start_ns: wm_start,
                end_ns: now_ns(),
            });
        }
        let run_start = sink.timestamp();
        let reference = ctx.exec.reference_kernels();
        let result = match ctx.exec.active_pool() {
            Some(pool) => self.run_wavefront(
                gen, graph, inputs, output, pool, sink, &ctx.fault, reference,
            ),
            None => self.run_sequential(gen, graph, inputs, output, sink, &ctx.fault, reference),
        };
        if enabled {
            sink.record(EventKind::Phase {
                phase: TracePhase::Run,
                detail: graph.model.clone(),
                start_ns: run_start,
                end_ns: now_ns(),
            });
            if let Some(before) = pool_stats_before {
                let after = self.bufs.stats();
                let at_ns = now_ns();
                for (name, delta) in [
                    ("buffer_pool.hits", after.hits - before.hits),
                    ("buffer_pool.misses", after.misses - before.misses),
                    (
                        "buffer_pool.zeroed_elems",
                        after.zeroed_elems - before.zeroed_elems,
                    ),
                ] {
                    sink.record(EventKind::Counter {
                        name: name.to_string(),
                        value: delta,
                        at_ns,
                    });
                }
            }
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_sequential(
        &mut self,
        gen: WeightGen,
        graph: &Graph,
        inputs: &[Tensor],
        output: NodeId,
        sink: &dyn TraceSink,
        fault: &FaultCtx,
        reference: bool,
    ) -> Result<Tensor, ExecError> {
        // Resolved once per run so injection is independent of node order.
        let flip_at = fault.flip_node(graph.len());
        let node_guard = fault.node_guard();
        let mut refcounts = graph.consumer_counts();
        // Reuse the value buffer across runs (per-request allocation
        // matters on the serving hot path).
        let mut values = std::mem::take(&mut self.values);
        values.clear();
        values.resize_with(graph.len(), || None);
        let enabled = sink.enabled();
        let mut input_iter = inputs.iter();
        for (id, node) in graph.iter() {
            let node_start = sink.timestamp();
            let mut out = if matches!(node.op, Op::Input { .. }) {
                input_iter.next().expect("validated count").clone()
            } else {
                let in_shapes: Vec<&[usize]> = node
                    .inputs
                    .iter()
                    .map(|i| graph.node(*i).shape.as_slice())
                    .collect();
                let weights = self.weights_for(gen, &node.name, &node.op, &in_shapes);
                let in_tensors: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|i| values[i.index()].as_ref().expect("topological order"))
                    .collect();
                let ctx = ExecCtx {
                    pool: None,
                    bufs: Some(&self.bufs),
                    sink: enabled.then_some(sink),
                    reference,
                };
                eval_node(node, weights.as_slice(), &in_tensors, &ctx)?
            };
            if flip_at == Some(id.index()) {
                fault.corrupt(out.data_mut());
            }
            if let Some(g) = node_guard {
                check_node_guard(&node.name, &out, g)?;
            }
            if enabled {
                sink.record(EventKind::Node {
                    name: node.name.clone(),
                    op: node.op.kind_name().to_string(),
                    start_ns: node_start,
                    end_ns: now_ns(),
                    flops: node.flops(graph),
                    bytes: node_trace_bytes(graph, node),
                });
            }
            debug_assert_eq!(
                out.shape(),
                node.shape.as_slice(),
                "shape inference disagrees with execution at `{}`",
                node.name
            );
            // Free inputs that have no remaining consumers, returning their
            // allocations to the buffer pool for later nodes and runs.
            for i in &node.inputs {
                refcounts[i.index()] -= 1;
                if refcounts[i.index()] == 0 {
                    if let Some(t) = values[i.index()].take() {
                        self.bufs.recycle(t.into_vec());
                    }
                }
            }
            values[id.index()] = Some(out);
        }
        let out = values[output.index()].take().expect("output computed");
        for v in values.iter_mut() {
            if let Some(t) = v.take() {
                self.bufs.recycle(t.into_vec());
            }
        }
        values.clear();
        self.values = values;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn run_wavefront(
        &self,
        gen: WeightGen,
        graph: &Graph,
        inputs: &[Tensor],
        output: NodeId,
        pool: &ThreadPool,
        sink: &dyn TraceSink,
        fault: &FaultCtx,
        reference: bool,
    ) -> Result<Tensor, ExecError> {
        let n = graph.len();
        // The dispatch/reclamation counters come from the same metadata
        // object vit-verify's exec-safety pass audits against the graph's
        // edges, so what is proved offline is what schedules here.
        let meta = SchedMeta::of(graph);
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pending: Vec<AtomicUsize> = Vec::with_capacity(n);
        for (id, node) in graph.iter() {
            pending.push(AtomicUsize::new(meta.indegree()[id.index()]));
            for i in &node.inputs {
                successors[i.index()].push(id.index());
            }
        }
        let uses: Vec<AtomicUsize> = meta
            .consumers()
            .iter()
            .map(|&c| AtomicUsize::new(c))
            .collect();
        // The output value must survive the run even when other nodes
        // consume it, so it holds one extra use.
        uses[output.index()].fetch_add(1, Ordering::Relaxed);
        let mut input_pos: Vec<Option<usize>> = vec![None; n];
        for (i, id) in graph.input_ids().iter().enumerate() {
            input_pos[id.index()] = Some(i);
        }
        let trace = sink.enabled();
        let wf = Wavefront {
            gen,
            graph,
            cache: &self.cache,
            bufs: &self.bufs,
            pool,
            inputs,
            input_pos,
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            pending,
            uses,
            successors,
            err: Mutex::new(None),
            abort: AtomicBool::new(false),
            fault,
            flip_at: fault.flip_node(n),
            node_guard: fault.node_guard(),
            sink,
            trace,
            spawn_ns: (0..if trace { n } else { 0 })
                .map(|_| AtomicU64::new(0))
                .collect(),
            spawn_depth: (0..if trace { n } else { 0 })
                .map(|_| AtomicU64::new(0))
                .collect(),
            ready: AtomicUsize::new(0),
            reference,
        };
        pool.scope(|s| {
            // Seed the wavefront with zero-input nodes; completions cascade
            // by spawning each successor the moment its last input lands.
            for (id, node) in graph.iter() {
                if node.inputs.is_empty() {
                    let wf = &wf;
                    let idx = id.index();
                    wf.note_spawn(idx);
                    s.spawn(move |s| wf.exec_node(idx, s));
                }
            }
        });
        if let Some(e) = wf.err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        let out = wf.slots[output.index()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("output computed");
        Ok(Arc::try_unwrap(out).unwrap_or_else(|a| (*a).clone()))
    }
}

/// The wavefront scheduler's per-node counter metadata: how many inputs
/// gate each node's dispatch (`indegree`) and how many readers gate each
/// node's buffer reclamation (`consumers`, which counts the graph output
/// as one extra reader so its buffer survives the run).
///
/// Correctness under *any* topological interleaving rests entirely on
/// these two vectors: an indegree below the true input count lets a node
/// dispatch before an input is ready (read-before-write), and a consumer
/// count below the true reader count recycles a buffer while a reader is
/// still pending (use-after-free into the buffer pool). [`SchedMeta::of`]
/// derives both from the graph's edges — the only sound source — and the
/// executor schedules from the same object, so vit-verify's exec-safety
/// pass (`V054`/`V055`) can audit exactly what will run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedMeta {
    indegree: Vec<usize>,
    consumers: Vec<usize>,
}

impl SchedMeta {
    /// Derives the metadata from `graph`'s edges (the sound construction).
    pub fn of(graph: &Graph) -> Self {
        SchedMeta {
            indegree: graph.iter().map(|(_, n)| n.inputs.len()).collect(),
            consumers: graph.consumer_counts(),
        }
    }

    /// Builds metadata from explicit counter vectors **without checking
    /// them against any graph** — the escape hatch vit-verify's tests use
    /// to represent scheduler state that a sound constructor could never
    /// produce. Executing a graph under metadata that disagrees with its
    /// edges races; keep this out of execution paths.
    pub fn from_raw_parts(indegree: Vec<usize>, consumers: Vec<usize>) -> Self {
        SchedMeta {
            indegree,
            consumers,
        }
    }

    /// Per-node count of inputs that must land before dispatch.
    pub fn indegree(&self) -> &[usize] {
        &self.indegree
    }

    /// Per-node count of readers that must retire before the node's
    /// output buffer is recycled (the graph output counts as one).
    pub fn consumers(&self) -> &[usize] {
        &self.consumers
    }
}

/// Shared state of one wavefront execution: per-node output slots,
/// in-degree and consumer counters, and the first error (if any).
struct Wavefront<'g> {
    gen: WeightGen,
    graph: &'g Graph,
    cache: &'g HashMap<String, Arc<Vec<Tensor>>>,
    bufs: &'g BufferPool,
    pool: &'g ThreadPool,
    inputs: &'g [Tensor],
    input_pos: Vec<Option<usize>>,
    slots: Vec<Mutex<Option<Arc<Tensor>>>>,
    pending: Vec<AtomicUsize>,
    uses: Vec<AtomicUsize>,
    successors: Vec<Vec<usize>>,
    err: Mutex<Option<ExecError>>,
    abort: AtomicBool,
    /// Fault scope of this run (for deterministic corruption).
    fault: &'g FaultCtx,
    /// Node whose output this run's injected bit-flip strikes, if any.
    flip_at: Option<usize>,
    /// Per-node output guard; `Some` only when injection is armed.
    node_guard: Option<GuardConfig>,
    sink: &'g dyn TraceSink,
    /// `sink.enabled()`, hoisted: the one flag every per-node trace action
    /// gates on.
    trace: bool,
    /// Per-node spawn stamp (ns) for [`EventKind::Sched`]; empty when
    /// untraced.
    spawn_ns: Vec<AtomicU64>,
    /// Ready-set depth observed when each node was spawned; empty when
    /// untraced.
    spawn_depth: Vec<AtomicU64>,
    /// Nodes spawned but not yet started (the scheduler's ready set).
    ready: AtomicUsize,
    /// Route kernels to the reference oracle (see
    /// [`ExecOptions::with_reference_kernels`]).
    reference: bool,
}

impl Wavefront<'_> {
    fn slot(&self, i: usize) -> std::sync::MutexGuard<'_, Option<Arc<Tensor>>> {
        self.slots[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stamps spawn time and ready-set depth for node `idx`, immediately
    /// before it is handed to the pool. No-op when untraced.
    fn note_spawn(&self, idx: usize) {
        if self.trace {
            let depth = self.ready.fetch_add(1, Ordering::Relaxed) + 1;
            self.spawn_ns[idx].store(now_ns(), Ordering::Relaxed);
            self.spawn_depth[idx].store(depth as u64, Ordering::Relaxed);
        }
    }

    /// Evaluates node `idx` (all of whose inputs are ready), then releases
    /// dead inputs to the buffer pool and spawns every successor this
    /// completion made ready. Node scheduling order cannot affect values:
    /// each node's kernel is internally deterministic and weights are a
    /// pure function of the generator.
    fn exec_node<'env>(&'env self, idx: usize, scope: &Scope<'env>) {
        if self.abort.load(Ordering::Acquire) {
            return;
        }
        let node = self.graph.node(NodeId::from_index(idx));
        let node_start = if self.trace {
            let start = now_ns();
            self.ready.fetch_sub(1, Ordering::Relaxed);
            self.sink.record(EventKind::Sched {
                node: node.name.clone(),
                spawn_ns: self.spawn_ns[idx].load(Ordering::Relaxed),
                start_ns: start,
                ready_depth: self.spawn_depth[idx].load(Ordering::Relaxed),
            });
            start
        } else {
            0
        };
        let result = if matches!(node.op, Op::Input { .. }) {
            let pos = self.input_pos[idx].expect("input node has a position");
            Ok(self.inputs[pos].clone())
        } else {
            let ins: Vec<Arc<Tensor>> = node
                .inputs
                .iter()
                .map(|i| Arc::clone(self.slot(i.index()).as_ref().expect("inputs ready")))
                .collect();
            let in_refs: Vec<&Tensor> = ins.iter().map(Arc::as_ref).collect();
            let in_shapes: Vec<&[usize]> = node
                .inputs
                .iter()
                .map(|i| self.graph.node(*i).shape.as_slice())
                .collect();
            let weights = self.node_weights(node, &in_shapes);
            let ctx = ExecCtx {
                pool: Some(self.pool),
                bufs: Some(self.bufs),
                sink: self.trace.then_some(self.sink),
                reference: self.reference,
            };
            eval_node(node, weights.as_slice(), &in_refs, &ctx)
        };
        if self.trace {
            self.sink.record(EventKind::Node {
                name: node.name.clone(),
                op: node.op.kind_name().to_string(),
                start_ns: node_start,
                end_ns: now_ns(),
                flops: node.flops(self.graph),
                bytes: node_trace_bytes(self.graph, node),
            });
        }
        // Injection + node guard happen before the slot store, so a
        // corrupted tensor can never become a downstream input unchecked.
        let result = result.and_then(|mut out| {
            if self.flip_at == Some(idx) {
                self.fault.corrupt(out.data_mut());
            }
            if let Some(g) = self.node_guard {
                check_node_guard(&node.name, &out, g)?;
            }
            Ok(out)
        });
        match result {
            Ok(out) => {
                debug_assert_eq!(
                    out.shape(),
                    node.shape.as_slice(),
                    "shape inference disagrees with execution at `{}`",
                    node.name
                );
                *self.slot(idx) = Some(Arc::new(out));
            }
            Err(e) => {
                self.abort.store(true, Ordering::Release);
                let mut err = self.err.lock().unwrap_or_else(|p| p.into_inner());
                if err.is_none() {
                    *err = Some(e);
                }
                return;
            }
        }
        // Recycle inputs whose last consumer just finished.
        for i in &node.inputs {
            let ii = i.index();
            if self.uses[ii].fetch_sub(1, Ordering::AcqRel) == 1 {
                if let Some(a) = self.slot(ii).take() {
                    if let Ok(t) = Arc::try_unwrap(a) {
                        self.bufs.recycle(t.into_vec());
                    }
                }
            }
        }
        for &succ in &self.successors[idx] {
            if self.pending[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.note_spawn(succ);
                scope.spawn(move |s| self.exec_node(succ, s));
            }
        }
    }

    /// This node's weights: from the shared cache when the shapes match,
    /// freshly generated otherwise (pure, so uncached generation is merely
    /// slower, never different).
    fn node_weights(&self, node: &crate::graph::Node, in_shapes: &[&[usize]]) -> Arc<Vec<Tensor>> {
        let expected = ExecScratch::weight_shapes(&node.op, in_shapes);
        if expected.is_empty() {
            return Arc::new(Vec::new());
        }
        if let Some(w) = self.cache.get(node.name.as_str()) {
            if ExecScratch::cache_entry_valid(w, &expected) {
                return Arc::clone(w);
            }
        }
        Arc::new(generate_node_weights(
            self.gen, &node.name, &node.op, in_shapes,
        ))
    }
}

/// Scans one node output against the armed-mode guard, converting a trip
/// into an [`ExecError::Fault`] anchored at the node. Both executor paths
/// (and `vit-plan`'s replay loop) call this, which is what makes the
/// "corruption is caught at its source" property backend-independent.
pub fn check_node_guard(node: &str, out: &Tensor, guard: GuardConfig) -> Result<(), ExecError> {
    check_guard(out.data(), guard).map_err(|trip| ExecError::Fault {
        node: node.to_string(),
        source: FaultError::GuardTripped {
            site: node.to_string(),
            trip,
        },
    })
}

/// Evaluates one non-[`Op::Input`] node on already-computed input tensors.
fn eval_node(
    node: &crate::graph::Node,
    w: &[Tensor],
    in_tensors: &[&Tensor],
    ctx: &ExecCtx<'_>,
) -> Result<Tensor, ExecError> {
    eval_op(&node.name, &node.op, w, in_tensors, ctx)
}

/// Evaluates one non-[`Op::Input`] operator on already-computed input
/// tensors — the single kernel-dispatch point both the interpreter and
/// `vit-plan`'s fallback records call, which is what keeps the two
/// backends bit-identical on ops without a packed kernel.
///
/// `w` must match [`node_weight_shapes`] for the op (empty for
/// parameter-free ops); `name` labels kernel errors. The heavy kernels
/// tile across `ctx`'s pool and draw outputs from its buffer pool; every
/// other op runs sequentially.
///
/// # Errors
///
/// Returns [`ExecError::Kernel`] when the underlying kernel rejects the
/// input/weight shapes.
///
/// # Panics
///
/// Panics on [`Op::Input`], which has no computation — callers route
/// graph inputs themselves.
pub fn eval_op(
    name: &str,
    op: &Op,
    w: &[Tensor],
    in_tensors: &[&Tensor],
    ctx: &ExecCtx<'_>,
) -> Result<Tensor, ExecError> {
    let kerr = |source: TensorError| ExecError::Kernel {
        node: name.to_string(),
        source,
    };
    let out = match op {
        Op::Input { .. } => unreachable!("Op::Input is handled by the caller"),
        Op::Conv2d {
            stride,
            pad,
            groups,
            bias,
            ..
        } => {
            let p = ops::Conv2dParams {
                stride_h: stride.0,
                stride_w: stride.1,
                pad_h: pad.0,
                pad_w: pad.1,
                groups: *groups,
            };
            let b = if *bias { Some(&w[1]) } else { None };
            ops::conv2d_ctx(in_tensors[0], &w[0], b, p, ctx).map_err(kerr)?
        }
        Op::Linear { bias, .. } => {
            let b = if *bias { Some(&w[1]) } else { None };
            ops::linear_ctx(in_tensors[0], &w[0], b, ctx).map_err(kerr)?
        }
        Op::LayerNorm => ops::layer_norm(in_tensors[0], &w[0], &w[1], 1e-5).map_err(kerr)?,
        Op::BatchNorm => ops::batch_norm_inference(in_tensors[0], &w[0], &w[1]).map_err(kerr)?,
        Op::Relu => ops::relu(in_tensors[0]),
        Op::Gelu => ops::gelu(in_tensors[0]),
        Op::Sdpa { heads } => {
            // q/k/v are already projected; use identity-free fused
            // attention: softmax(q k^T / sqrt(d)) v, head-split.
            let q = in_tensors[0];
            let k = in_tensors[1];
            let v = in_tensors[2];
            sdpa(q, k, v, *heads, ctx).map_err(kerr)?
        }
        Op::DeformAttn {
            heads,
            levels,
            points,
            ..
        } => deform_attn(
            in_tensors[0],
            in_tensors[1],
            &w[0],
            &w[1],
            &w[2],
            &w[3],
            *heads,
            *levels,
            *points,
            ctx,
        )
        .map_err(kerr)?,
        Op::MaxPool {
            window,
            stride,
            pad,
        } => ops::max_pool2d(in_tensors[0], *window, *stride, *pad).map_err(kerr)?,
        Op::AdaptiveAvgPool { out_h, out_w } => {
            ops::adaptive_avg_pool2d(in_tensors[0], *out_h, *out_w).map_err(kerr)?
        }
        Op::Resize { out_h, out_w } => {
            ops::bilinear_resize(in_tensors[0], *out_h, *out_w).map_err(kerr)?
        }
        Op::Concat => ops::concat_channels(in_tensors).map_err(kerr)?,
        Op::Add => in_tensors[0].add(in_tensors[1]).map_err(kerr)?,
        Op::FlattenHw => {
            let s = in_tensors[0].shape();
            let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
            in_tensors[0]
                .reshape(&[n, c, h * w])
                .and_then(|t| t.permute(&[0, 2, 1]))
                .map_err(kerr)?
        }
        Op::UnflattenHw { h, w } => {
            let s = in_tensors[0].shape();
            let (n, c) = (s[0], s[2]);
            in_tensors[0]
                .permute(&[0, 2, 1])
                .and_then(|t| t.reshape(&[n, c, *h, *w]))
                .map_err(kerr)?
        }
        Op::WindowPartition { window } => window_partition(in_tensors[0], *window),
        Op::WindowMerge { window, h, w } => window_merge(in_tensors[0], *window, *h, *w),
        Op::CyclicShift { dy, dx } => cyclic_shift(in_tensors[0], *dy, *dx),
        Op::GlobalAvgPool => ops::global_avg_pool(in_tensors[0]).map_err(kerr)?,
        Op::ArgmaxChannels => in_tensors[0].argmax_channels().map_err(kerr)?,
        Op::Identity => in_tensors[0].clone(),
        Op::SliceChannels { keep } => slice_channels(in_tensors[0], *keep),
        Op::SpaceToDepth { block } => space_to_depth(in_tensors[0], *block),
        Op::ConcatTokens => concat_tokens(in_tensors),
    };
    Ok(out)
}

/// Executes graphs with deterministic synthetic weights.
///
/// Weights are generated lazily per node and cached, so repeated executions
/// of the same graph reuse them. This is the single-threaded convenience
/// wrapper over a shared [`WeightGen`] plus a private [`ExecScratch`];
/// concurrent callers hold one `WeightGen` and one scratch per worker and
/// call [`ExecScratch::run`] directly.
#[derive(Debug)]
pub struct Executor {
    gen: WeightGen,
    scratch: ExecScratch,
}

impl Executor {
    /// Creates an executor with a global weight seed.
    pub fn new(seed: u64) -> Self {
        Executor {
            gen: WeightGen::new(seed),
            scratch: ExecScratch::new(),
        }
    }

    /// The underlying weight generator.
    pub fn weight_gen(&self) -> &WeightGen {
        &self.gen
    }

    /// Runs the graph on the provided inputs (one tensor per graph input, in
    /// declaration order) and returns the output tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph or a
    /// kernel fails.
    ///
    /// # Panics
    ///
    /// Panics when the graph has no output set.
    pub fn run(&mut self, graph: &Graph, inputs: &[Tensor]) -> Result<Tensor, ExecError> {
        self.scratch.run(self.gen, graph, inputs)
    }

    /// [`Executor::run`] with explicit [`ExecOptions`] (bit-identical to
    /// `run` at any thread count).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph or a
    /// kernel fails.
    ///
    /// # Panics
    ///
    /// Panics when the graph has no output set.
    pub fn run_opts(
        &mut self,
        graph: &Graph,
        inputs: &[Tensor],
        opts: &ExecOptions,
    ) -> Result<Tensor, ExecError> {
        self.scratch.run_opts(self.gen, graph, inputs, opts)
    }

    /// [`Executor::run`] under a full [`RunContext`] (execution options +
    /// trace sink); bit-identical to `run` under any context.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph or a
    /// kernel fails.
    ///
    /// # Panics
    ///
    /// Panics when the graph has no output set.
    pub fn run_with(
        &mut self,
        graph: &Graph,
        inputs: &[Tensor],
        ctx: &RunContext,
    ) -> Result<Tensor, ExecError> {
        self.scratch.run_with(self.gen, graph, inputs, ctx)
    }
}

fn slice_channels(x: &Tensor, keep: usize) -> Tensor {
    match x.rank() {
        4 => {
            let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
            let mut out = Tensor::zeros(&[n, keep, h, w]);
            let plane = h * w;
            for b in 0..n {
                let src = &x.data()[b * c * plane..(b * c + keep) * plane];
                out.data_mut()[b * keep * plane..(b + 1) * keep * plane].copy_from_slice(src);
            }
            out
        }
        3 => {
            let (b, n, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
            let mut out = Tensor::zeros(&[b, n, keep]);
            for row in 0..b * n {
                let src = &x.data()[row * c..row * c + keep];
                out.data_mut()[row * keep..(row + 1) * keep].copy_from_slice(src);
            }
            out
        }
        _ => unreachable!("validated by shape inference"),
    }
}

fn space_to_depth(x: &Tensor, block: usize) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = (h / block, w / block);
    let oc = c * block * block;
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let xd = x.data();
    let od = out.data_mut();
    for b in 0..n {
        for ch in 0..c {
            for by in 0..block {
                for bx in 0..block {
                    let out_ch = (ch * block + by) * block + bx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            od[((b * oc + out_ch) * oh + oy) * ow + ox] =
                                xd[((b * c + ch) * h + oy * block + by) * w + ox * block + bx];
                        }
                    }
                }
            }
        }
    }
    out
}

fn concat_tokens(inputs: &[&Tensor]) -> Tensor {
    let (b, c) = (inputs[0].shape()[0], inputs[0].shape()[2]);
    let total_n: usize = inputs.iter().map(|t| t.shape()[1]).sum();
    let mut out = Tensor::zeros(&[b, total_n, c]);
    let od = out.data_mut();
    for bi in 0..b {
        let mut tok_off = 0;
        for t in inputs {
            let n = t.shape()[1];
            let src = &t.data()[bi * n * c..(bi + 1) * n * c];
            od[(bi * total_n + tok_off) * c..(bi * total_n + tok_off + n) * c].copy_from_slice(src);
            tok_off += n;
        }
    }
    out
}

/// Multi-scale deformable attention with nearest-token sampling.
///
/// The true kernel samples values at fractional spatial locations with
/// bilinear interpolation; here sampling locations are reduced to a
/// deterministic nearest token index, which preserves the op's cost
/// structure (the only thing the paper's experiments depend on) while
/// remaining a real, executable gather-and-weight computation.
#[allow(clippy::too_many_arguments)]
fn deform_attn(
    query: &Tensor,
    value: &Tensor,
    wv: &Tensor,
    wo: &Tensor,
    woff: &Tensor,
    wattn: &Tensor,
    heads: usize,
    levels: usize,
    points: usize,
    ctx: &ExecCtx<'_>,
) -> Result<Tensor, TensorError> {
    let (b, n, d) = (query.shape()[0], query.shape()[1], query.shape()[2]);
    let m = value.shape()[1];
    let hd = d / heads;
    let v = ops::linear_ctx(value, wv, None, ctx)?;
    let offsets = ops::linear_ctx(query, woff, None, ctx)?; // [b, n, h*l*p*2]
    let attn_logits = ops::linear_ctx(query, wattn, None, ctx)?; // [b, n, h*l*p]
    let attn = ops::softmax_last_dim(&attn_logits)?;
    let mut out = Tensor::zeros(&[b, n, d]);
    let od = out.data_mut();
    let vd = v.data();
    let offd = offsets.data();
    let ad = attn.data();
    let hlp = heads * levels * points;
    for bi in 0..b {
        for qi in 0..n {
            for h in 0..heads {
                for lp in 0..levels * points {
                    let s = h * levels * points + lp;
                    let off_x = offd[(bi * n + qi) * hlp * 2 + s * 2];
                    let off_y = offd[(bi * n + qi) * hlp * 2 + s * 2 + 1];
                    // Deterministic token index derived from the predicted
                    // offsets (nearest-token stand-in for bilinear sampling).
                    let raw = (qi as f32 + off_x * 8.0 + off_y * 64.0).abs() as usize;
                    let tok = raw % m;
                    let wgt = ad[(bi * n + qi) * hlp + s];
                    let vbase = (bi * m + tok) * d + h * hd;
                    let obase = (bi * n + qi) * d + h * hd;
                    for e in 0..hd {
                        od[obase + e] += wgt * vd[vbase + e];
                    }
                }
            }
        }
    }
    ops::linear_ctx(&out, wo, None, ctx)
}

/// Fused scaled-dot-product attention on already-projected q/k/v.
fn sdpa(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    ctx: &ExecCtx<'_>,
) -> Result<Tensor, TensorError> {
    let (b, n, d) = (q.shape()[0], q.shape()[1], q.shape()[2]);
    let m = k.shape()[1];
    let dv = v.shape()[2];
    let hd = d / heads;
    let hdv = dv / heads;
    let split =
        |x: &Tensor, tokens: usize, dim: usize, hdim: usize| -> Result<Tensor, TensorError> {
            x.reshape(&[b, tokens, dim / hdim, hdim])?
                .permute(&[0, 2, 1, 3])?
                .reshape(&[b * (dim / hdim), tokens, hdim])
        };
    let qh = split(q, n, d, hd)?;
    let kh = split(k, m, d, hd)?;
    let vh = split(v, m, dv, hdv)?;
    let kt = kh.permute(&[0, 2, 1])?;
    let scores = ops::bmm_ctx(&qh, &kt, ctx)?.scale(1.0 / (hd as f32).sqrt());
    let probs = ops::softmax_last_dim(&scores)?;
    let attn_out = ops::bmm_ctx(&probs, &vh, ctx)?;
    attn_out
        .reshape(&[b, heads, n, hdv])?
        .permute(&[0, 2, 1, 3])?
        .reshape(&[b, n, dv])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::LayerRole;

    #[test]
    fn weight_gen_is_deterministic_and_name_scoped() {
        let gen = WeightGen::new(7);
        let a = gen.tensor("layer1", "weight", &[4, 4], 1.0);
        let b = gen.tensor("layer1", "weight", &[4, 4], 1.0);
        let c = gen.tensor("layer2", "weight", &[4, 4], 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weight_gen_prefix_slices_are_shared() {
        // The first 2x3 block of a 4x6 weight equals the 2x3 weight.
        let gen = WeightGen::new(42);
        let big = gen.decayed_tensor("conv", "weight", &[4, 6], 1, 1);
        let small = gen.decayed_tensor("conv", "weight", &[2, 3], 1, 1);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(big.at(&[r, c]), small.at(&[r, c]));
            }
        }
    }

    #[test]
    fn executor_runs_simple_cnn() {
        let mut g = Graph::new("mini");
        let x = g.input("image", &[1, 3, 8, 8]).unwrap();
        let c1 = g
            .add(
                "conv1",
                Op::Conv2d {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (2, 2),
                    pad: (1, 1),
                    groups: 1,
                    bias: true,
                },
                LayerRole::Backbone,
                &[x],
            )
            .unwrap();
        let r = g.add("relu", Op::Relu, LayerRole::Backbone, &[c1]).unwrap();
        let p = g
            .add("pool", Op::GlobalAvgPool, LayerRole::Head, &[r])
            .unwrap();
        g.set_output(p);
        let mut ex = Executor::new(0);
        let img = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, 5);
        let out = ex.run(&g, &[img]).unwrap();
        assert_eq!(out.shape(), &[1, 4]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn executor_validates_inputs() {
        let mut g = Graph::new("v");
        let x = g.input("image", &[1, 1, 4, 4]).unwrap();
        g.set_output(x);
        let mut ex = Executor::new(0);
        assert!(ex.run(&g, &[]).is_err());
        assert!(ex.run(&g, &[Tensor::zeros(&[1, 1, 2, 2])]).is_err());
    }

    #[test]
    fn sdpa_node_executes() {
        let mut g = Graph::new("attn");
        let x = g.input("tokens", &[1, 16, 8]).unwrap();
        let q = g
            .add(
                "q",
                Op::Linear {
                    out_features: 8,
                    bias: false,
                },
                LayerRole::Other,
                &[x],
            )
            .unwrap();
        let k = g
            .add(
                "k",
                Op::Linear {
                    out_features: 8,
                    bias: false,
                },
                LayerRole::Other,
                &[x],
            )
            .unwrap();
        let v = g
            .add(
                "v",
                Op::Linear {
                    out_features: 8,
                    bias: false,
                },
                LayerRole::Other,
                &[x],
            )
            .unwrap();
        let a = g
            .add("sdpa", Op::Sdpa { heads: 2 }, LayerRole::Other, &[q, k, v])
            .unwrap();
        g.set_output(a);
        let mut ex = Executor::new(1);
        let out = ex
            .run(&g, &[Tensor::rand_uniform(&[1, 16, 8], -1.0, 1.0, 2)])
            .unwrap();
        assert_eq!(out.shape(), &[1, 16, 8]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cyclic_shift_round_trips() {
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, 3);
        let s = cyclic_shift(&x, 1, 2);
        let back = cyclic_shift(&s, -1, -2);
        assert_eq!(x, back);
        assert_ne!(x, s);
    }

    #[test]
    fn cyclic_shift_moves_pixels() {
        let mut x = Tensor::zeros(&[1, 1, 3, 3]);
        x.set(&[0, 0, 0, 0], 1.0);
        let s = cyclic_shift(&x, 1, 1);
        assert_eq!(s.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(s.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn window_partition_merge_round_trips() {
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], -1.0, 1.0, 9);
        let p = window_partition(&x, 4);
        assert_eq!(p.shape(), &[2 * 4, 16, 3]);
        let m = window_merge(&p, 4, 8, 8);
        assert_eq!(m, x);
    }

    #[test]
    fn executor_frees_intermediates() {
        // Build a diamond and make sure execution still works (refcount
        // logic must keep `x` alive for both branches).
        let mut g = Graph::new("diamond");
        let x = g.input("in", &[1, 2, 4, 4]).unwrap();
        let a = g.add("a", Op::Relu, LayerRole::Other, &[x]).unwrap();
        let b = g.add("b", Op::Gelu, LayerRole::Other, &[x]).unwrap();
        let s = g.add("s", Op::Add, LayerRole::Other, &[a, b]).unwrap();
        g.set_output(s);
        let mut ex = Executor::new(0);
        let out = ex
            .run(&g, &[Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, 1)])
            .unwrap();
        assert_eq!(out.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn per_worker_scratches_agree_and_cache_weights() {
        // Two workers with independent scratches over one shared WeightGen
        // must produce identical outputs (weights are a pure function of
        // the generator), and each scratch caches the layer weights.
        let mut g = Graph::new("w");
        let x = g.input("in", &[1, 1, 6]).unwrap();
        let l = g
            .add(
                "proj",
                Op::Linear {
                    out_features: 4,
                    bias: true,
                },
                LayerRole::Other,
                &[x],
            )
            .unwrap();
        g.set_output(l);
        let gen = WeightGen::new(11);
        let mut s1 = ExecScratch::new();
        let mut s2 = ExecScratch::new();
        let input = Tensor::rand_uniform(&[1, 1, 6], -1.0, 1.0, 4);
        let a = s1.run(gen, &g, std::slice::from_ref(&input)).unwrap();
        let b = s2.run(gen, &g, std::slice::from_ref(&input)).unwrap();
        assert_eq!(a, b);
        assert_eq!(s1.cached_nodes(), 1);
        // Re-running on the same scratch reuses the cache.
        let c = s1.run(gen, &g, &[input]).unwrap();
        assert_eq!(a, c);
        assert_eq!(s1.cached_nodes(), 1);
    }

    #[test]
    fn traced_run_is_bit_identical_and_well_formed() {
        let mut g = Graph::new("traced");
        let x = g.input("image", &[1, 3, 8, 8]).unwrap();
        let c1 = g
            .add(
                "conv1",
                Op::Conv2d {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    pad: (1, 1),
                    groups: 1,
                    bias: true,
                },
                LayerRole::Backbone,
                &[x],
            )
            .unwrap();
        let r = g.add("relu", Op::Relu, LayerRole::Backbone, &[c1]).unwrap();
        let p = g
            .add("pool", Op::GlobalAvgPool, LayerRole::Head, &[r])
            .unwrap();
        g.set_output(p);
        let gen = WeightGen::new(3);
        let img = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, 5);

        let mut plain = ExecScratch::new();
        let baseline = plain.run(gen, &g, std::slice::from_ref(&img)).unwrap();

        for threads in [1usize, 4] {
            let sink = Arc::new(vit_trace::RingBufferSink::new(1 << 16));
            let ctx = RunContext::threaded(threads).with_sink(sink.clone() as Arc<dyn TraceSink>);
            let mut scratch = ExecScratch::new();
            let traced = scratch
                .run_with(gen, &g, std::slice::from_ref(&img), &ctx)
                .unwrap();
            assert_eq!(baseline, traced, "tracing must not change results");
            let events = sink.events();
            vit_trace::validate(&events).unwrap();
            let node_events: Vec<_> = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Node { .. }))
                .collect();
            assert_eq!(node_events.len(), g.len(), "one span per node");
            let traced_flops: u64 = node_events
                .iter()
                .map(|e| match &e.kind {
                    EventKind::Node { flops, .. } => *flops,
                    _ => 0,
                })
                .sum();
            let static_flops: u64 = g.iter().map(|(_, n)| n.flops(&g)).sum();
            assert_eq!(traced_flops, static_flops, "trace FLOPs match static");
        }
    }

    #[test]
    fn shared_weights_between_full_and_pruned_linear() {
        // A linear with 8 outputs and the same node name as one with 4
        // outputs produces identical values on the first 4 outputs.
        let mut g_full = Graph::new("m");
        let x = g_full.input("in", &[1, 1, 6]).unwrap();
        let l = g_full
            .add(
                "proj",
                Op::Linear {
                    out_features: 8,
                    bias: true,
                },
                LayerRole::Other,
                &[x],
            )
            .unwrap();
        g_full.set_output(l);

        let mut g_pruned = Graph::new("m");
        let x2 = g_pruned.input("in", &[1, 1, 6]).unwrap();
        let l2 = g_pruned
            .add(
                "proj",
                Op::Linear {
                    out_features: 4,
                    bias: true,
                },
                LayerRole::Other,
                &[x2],
            )
            .unwrap();
        g_pruned.set_output(l2);

        let input = Tensor::rand_uniform(&[1, 1, 6], -1.0, 1.0, 77);
        let mut ex1 = Executor::new(5);
        let mut ex2 = Executor::new(5);
        let full = ex1.run(&g_full, std::slice::from_ref(&input)).unwrap();
        let pruned = ex2.run(&g_pruned, &[input]).unwrap();
        for i in 0..4 {
            assert!((full.data()[i] - pruned.data()[i]).abs() < 1e-6);
        }
    }
}
