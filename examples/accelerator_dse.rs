//! Accelerator design-space exploration: pick hardware for dynamic
//! vision-transformer inference.
//!
//! Sweeps vectorization and memory sizing under the paper's constant
//! 16384-parallel-MAC budget, then checks whether the winning architecture
//! changes when the workload is a *pruned* configuration instead of the
//! full model — the paper's §VI question.
//!
//! ```text
//! cargo run --release --example accelerator_dse
//! ```

use vit_accel::{design_space, simulate, AccelConfig, SimOptions};
use vit_models::{build_segformer, SegFormerConfig, SegFormerDynamic, SegFormerVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let variant = SegFormerVariant::b2();
    let opts = SimOptions::default();
    let full = build_segformer(&SegFormerConfig::ade20k(variant))?;
    let pruned = build_segformer(&SegFormerConfig::ade20k(variant).with_dynamic(
        SegFormerDynamic::with_depths_and_fuse(&variant, [2, 3, 4, 3], 512),
    ))?;

    for (name, g) in [
        ("full model (point A)", &full),
        ("pruned model (point G)", &pruned),
    ] {
        println!("workload: {name}");
        let points = design_space(
            g,
            &[(32, 32), (32, 16), (16, 16), (16, 8), (8, 8)],
            &[64, 128, 512, 1024],
            &[32, 64],
            &opts,
        );
        let best = points
            .iter()
            .min_by(|a, b| {
                (a.energy_j * a.cycles as f64)
                    .partial_cmp(&(b.energy_j * b.cycles as f64))
                    .expect("finite")
            })
            .expect("nonempty space");
        println!(
            "  {} design points; best (energy-delay): K0={} C0={} WM={} kB AM={} kB \
             -> {} cycles, {:.2} mJ, {:.2} mm^2",
            points.len(),
            best.config.k0,
            best.config.c0,
            best.config.weight_mem_kb,
            best.config.act_mem_kb,
            best.cycles,
            best.energy_j * 1e3,
            best.area_mm2
        );
    }
    println!();

    // The paper's accelerator_A vs accelerator* comparison.
    let a = simulate(&full, &AccelConfig::accelerator_a(), &opts);
    let star = simulate(&full, &AccelConfig::accelerator_star(), &opts);
    println!(
        "accelerator_A: {} cycles, {:.2} mm^2 | accelerator*: {} cycles, {:.2} mm^2",
        a.total_cycles(),
        AccelConfig::accelerator_a().pe_array_area_mm2(),
        star.total_cycles(),
        AccelConfig::accelerator_star().pe_array_area_mm2(),
    );
    println!(
        "conclusion (paper §VI): the small-memory design gives up {:.1}% latency \
         for {:.1}x less area — and the optimum does not move when the model is \
         pruned, so one accelerator serves every dynamic configuration.",
        100.0 * (star.total_cycles() as f64 / a.total_cycles() as f64 - 1.0),
        AccelConfig::accelerator_a().pe_array_area_mm2()
            / AccelConfig::accelerator_star().pe_array_area_mm2()
    );
    Ok(())
}
