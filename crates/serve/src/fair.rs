//! Multi-tenant dispatch: weighted-fair queueing with per-tenant quotas,
//! layered on the EDF discipline.
//!
//! [`DispatchQueue`] keeps one EDF lane per tenant. `pop` picks the lane
//! with the least *virtual work* dispatched so far (each dispatch charges
//! `1 / weight`), then the earliest deadline within that lane — so a tenant
//! with weight 2 is served twice as often as a tenant with weight 1 when
//! both have work queued, and a single-tenant queue degenerates to exactly
//! the pure-EDF order of [`crate::EdfQueue`]. Per-tenant quotas bound how
//! much of the queue one tenant may occupy, so a flooding tenant sheds on
//! itself instead of starving the rest.
//!
//! [`DispatchQueue::pop_if`] is the coalescing primitive behind continuous
//! batching: it pops the next-up request only when a predicate accepts it,
//! letting a dispatching worker gather same-config requests without ever
//! reordering or skipping past a request that resolves differently.
//!
//! The plain `DispatchQueue` is single-threaded (the discrete-event
//! simulator drives it directly); [`SharedDispatchQueue`] wraps it in a
//! mutex + condvars for the threaded server.

use crate::config::TenantSpec;
use crate::request::TenantId;
use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Duration;

/// Error from [`DispatchQueue::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DispatchPushError {
    /// The queue is at total capacity.
    Full,
    /// The submitting tenant is at its queue-share quota.
    OverQuota,
    /// The queue has been closed.
    Closed,
}

impl fmt::Display for DispatchPushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPushError::Full => f.write_str("dispatch queue is at capacity"),
            DispatchPushError::OverQuota => f.write_str("tenant is at its queue-share quota"),
            DispatchPushError::Closed => f.write_str("dispatch queue is closed"),
        }
    }
}

impl std::error::Error for DispatchPushError {}

/// Result of a conditional pop ([`DispatchQueue::pop_if`]).
#[derive(Debug)]
pub enum CoalescePop<T> {
    /// The next-up item matched the predicate and was popped.
    Item(T),
    /// The next-up item did not match; it stays queued, untouched.
    Mismatch,
    /// The queue is empty (and, for the shared wrapper, the wait timed
    /// out without a new arrival).
    Empty,
    /// The queue is closed and drained.
    Closed,
}

struct Entry<K: Ord, T> {
    deadline: K,
    seq: u64,
    item: T,
}

// Max-heap inverted: earliest deadline, then lowest sequence, on top.
impl<K: Ord, T> Ord for Entry<K, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<K: Ord, T> PartialOrd for Entry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, T> PartialEq for Entry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<K: Ord, T> Eq for Entry<K, T> {}

struct Lane<K: Ord, T> {
    tenant: TenantId,
    weight: f64,
    quota: usize,
    heap: BinaryHeap<Entry<K, T>>,
    /// Virtual work dispatched from this lane: each pop adds `1 / weight`.
    vwork: f64,
}

/// A bounded, multi-tenant, weighted-fair EDF queue (single-threaded; see
/// [`SharedDispatchQueue`] for the threaded server's wrapper).
pub struct DispatchQueue<K: Ord, T> {
    lanes: Vec<Lane<K, T>>,
    specs: Vec<TenantSpec>,
    capacity: usize,
    len: usize,
    next_seq: u64,
    closed: bool,
}

impl<K: Ord, T> DispatchQueue<K, T> {
    /// Creates a queue holding at most `capacity` items in total, with the
    /// given tenant specs. Tenants not listed get weight 1 and full share;
    /// lanes materialize on first push.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize, specs: &[TenantSpec]) -> Self {
        assert!(capacity > 0, "dispatch queue needs capacity >= 1");
        DispatchQueue {
            lanes: Vec::new(),
            specs: specs.to_vec(),
            capacity,
            len: 0,
            next_seq: 0,
            closed: false,
        }
    }

    /// Current number of queued items across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items of one tenant.
    pub fn tenant_len(&self, tenant: TenantId) -> usize {
        self.lanes
            .iter()
            .find(|l| l.tenant == tenant)
            .map_or(0, |l| l.heap.len())
    }

    fn lane_index(&mut self, tenant: TenantId) -> usize {
        if let Some(i) = self.lanes.iter().position(|l| l.tenant == tenant) {
            return i;
        }
        let spec = self
            .specs
            .iter()
            .find(|s| s.id == tenant)
            .copied()
            .unwrap_or_else(|| TenantSpec::new(tenant));
        // ceil(share × capacity), at least 1: a tenant granted any share
        // at all can always hold one request.
        let quota =
            ((spec.max_queue_share * self.capacity as f64).ceil() as usize).clamp(1, self.capacity);
        // A lane born (or woken) behind the pack would get a priority
        // burst worth its whole idle period; start it at the busiest
        // lane's virtual time instead.
        let vwork = self
            .lanes
            .iter()
            .filter(|l| !l.heap.is_empty())
            .map(|l| l.vwork)
            .fold(0.0f64, f64::max);
        self.lanes.push(Lane {
            tenant,
            weight: spec.weight,
            quota,
            heap: BinaryHeap::new(),
            vwork,
        });
        self.lanes.len() - 1
    }

    /// Inserts without blocking.
    ///
    /// # Errors
    ///
    /// [`DispatchPushError::Full`] at total capacity,
    /// [`DispatchPushError::OverQuota`] when the tenant holds its full
    /// queue share, [`DispatchPushError::Closed`] after
    /// [`DispatchQueue::close`].
    pub fn try_push(
        &mut self,
        tenant: TenantId,
        deadline: K,
        item: T,
    ) -> Result<(), DispatchPushError> {
        if self.closed {
            return Err(DispatchPushError::Closed);
        }
        if self.len >= self.capacity {
            return Err(DispatchPushError::Full);
        }
        let idx = self.lane_index(tenant);
        if self.lanes[idx].heap.len() >= self.lanes[idx].quota {
            return Err(DispatchPushError::OverQuota);
        }
        // An idle lane re-enters at the busiest lane's virtual time so it
        // cannot spend its idle period as a priority burst.
        if self.lanes[idx].heap.is_empty() {
            let floor = self
                .lanes
                .iter()
                .filter(|l| !l.heap.is_empty())
                .map(|l| l.vwork)
                .fold(0.0f64, f64::max);
            let lane = &mut self.lanes[idx];
            lane.vwork = lane.vwork.max(floor);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[idx].heap.push(Entry {
            deadline,
            seq,
            item,
        });
        self.len += 1;
        Ok(())
    }

    /// The lane `pop` would serve next: least virtual work, breaking ties
    /// by earliest head deadline, then lowest head sequence number.
    fn next_lane(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            let head = match lane.heap.peek() {
                Some(h) => h,
                None => continue,
            };
            best = match best {
                None => Some(i),
                Some(j) => {
                    let cur = self.lanes[j].heap.peek().expect("best lane is non-empty");
                    let better = match lane.vwork.total_cmp(&self.lanes[j].vwork) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => match head.deadline.cmp(&cur.deadline) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => head.seq < cur.seq,
                        },
                    };
                    if better {
                        Some(i)
                    } else {
                        Some(j)
                    }
                }
            };
        }
        best
    }

    /// Removes and returns the next item under the weighted-fair-EDF
    /// discipline, with the owning tenant. `None` when empty.
    pub fn pop(&mut self) -> Option<(TenantId, K, T)> {
        let idx = self.next_lane()?;
        let lane = &mut self.lanes[idx];
        let e = lane.heap.pop().expect("selected lane is non-empty");
        lane.vwork += 1.0 / lane.weight;
        self.len -= 1;
        Some((lane.tenant, e.deadline, e.item))
    }

    /// Pops the item [`DispatchQueue::pop`] would return next, but only
    /// when `pred` accepts it; otherwise the queue is untouched. This is
    /// the batching primitive: a worker coalesces follow-up requests while
    /// they keep resolving to the leader's configuration and stops at the
    /// first that does not — never skipping over or reordering requests.
    pub fn pop_if(&mut self, pred: impl FnOnce(&T) -> bool) -> CoalescePop<(TenantId, K, T)> {
        let idx = match self.next_lane() {
            Some(i) => i,
            None => {
                return if self.closed {
                    CoalescePop::Closed
                } else {
                    CoalescePop::Empty
                }
            }
        };
        let head = self.lanes[idx]
            .heap
            .peek()
            .expect("selected lane is non-empty");
        if !pred(&head.item) {
            return CoalescePop::Mismatch;
        }
        let lane = &mut self.lanes[idx];
        let e = lane.heap.pop().expect("selected lane is non-empty");
        lane.vwork += 1.0 / lane.weight;
        self.len -= 1;
        CoalescePop::Item((lane.tenant, e.deadline, e.item))
    }

    /// Closes the queue: subsequent pushes fail; remaining items still
    /// pop.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether [`DispatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Thread-safe wrapper around [`DispatchQueue`] for the serving worker
/// pool: blocking pop, timed conditional pop (the batch window), and
/// close-and-drain semantics matching [`crate::EdfQueue`].
pub struct SharedDispatchQueue<K: Ord, T> {
    inner: Mutex<DispatchQueue<K, T>>,
    not_empty: Condvar,
}

/// Result of a blocking pop on the shared queue.
pub type SharedPop<K, T> = crate::queue::PopResult<(TenantId, K, T)>;

impl<K: Ord, T> SharedDispatchQueue<K, T> {
    /// Creates a shared queue; see [`DispatchQueue::bounded`].
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize, specs: &[TenantSpec]) -> Self {
        SharedDispatchQueue {
            inner: Mutex::new(DispatchQueue::bounded(capacity, specs)),
            not_empty: Condvar::new(),
        }
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts without blocking; see [`DispatchQueue::try_push`].
    ///
    /// # Errors
    ///
    /// Propagates [`DispatchPushError`] from the inner queue.
    pub fn try_push(
        &self,
        tenant: TenantId,
        deadline: K,
        item: T,
    ) -> Result<(), DispatchPushError> {
        self.inner.lock().try_push(tenant, deadline, item)?;
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removes and returns the next weighted-fair-EDF item, blocking while
    /// the queue is empty. Returns `Closed` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> SharedPop<K, T> {
        let mut q = self.inner.lock();
        loop {
            if let Some(it) = q.pop() {
                return crate::queue::PopResult::Item(it);
            }
            if q.is_closed() {
                return crate::queue::PopResult::Closed;
            }
            self.not_empty.wait(&mut q);
        }
    }

    /// Conditionally pops the next-up item, waiting up to `timeout` for
    /// one to arrive when the queue is empty. [`CoalescePop::Mismatch`]
    /// returns immediately (the batch is over); [`CoalescePop::Empty`]
    /// means the window expired with nothing queued.
    pub fn pop_if_timeout(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&T) -> bool,
    ) -> CoalescePop<(TenantId, K, T)> {
        let mut q = self.inner.lock();
        loop {
            if !q.is_empty() || q.is_closed() {
                return q.pop_if(&mut pred);
            }
            if self.not_empty.wait_for(&mut q, timeout).timed_out() {
                return CoalescePop::Empty;
            }
        }
    }

    /// Closes the queue: pushes fail, poppers drain then observe `Closed`.
    pub fn close(&self) {
        self.inner.lock().close();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants(specs: &[(u32, f64, f64)]) -> Vec<TenantSpec> {
        specs
            .iter()
            .map(|&(id, weight, share)| {
                TenantSpec::new(TenantId(id))
                    .with_weight(weight)
                    .with_queue_share(share)
            })
            .collect()
    }

    #[test]
    fn single_tenant_is_pure_edf_with_fifo_ties() {
        let mut q: DispatchQueue<u64, &str> = DispatchQueue::bounded(8, &[]);
        let t = TenantId::default();
        q.try_push(t, 30, "late").unwrap();
        q.try_push(t, 10, "first-early").unwrap();
        q.try_push(t, 10, "second-early").unwrap();
        q.try_push(t, 20, "mid").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, s)| s)).collect();
        assert_eq!(order, ["first-early", "second-early", "mid", "late"]);
    }

    #[test]
    fn weighted_fair_interleaves_by_weight() {
        // Tenant 1 (weight 2) gets two dispatches per tenant 2 (weight 1)
        // dispatch, regardless of deadlines favoring tenant 2.
        let specs = tenants(&[(1, 2.0, 1.0), (2, 1.0, 1.0)]);
        let mut q: DispatchQueue<u64, u32> = DispatchQueue::bounded(16, &specs);
        for i in 0..6 {
            q.try_push(TenantId(1), 100 + i, 10 + i as u32).unwrap();
            q.try_push(TenantId(2), i, 20 + i as u32).unwrap();
        }
        let order: Vec<TenantId> = std::iter::from_fn(|| q.pop().map(|(t, _, _)| t)).collect();
        let first_six: Vec<u32> = order.iter().take(6).map(|t| t.0).collect();
        // Per 3 dispatches: 2× tenant 1, 1× tenant 2 (weight ratio 2:1).
        assert_eq!(
            first_six.iter().filter(|&&t| t == 1).count(),
            4,
            "order: {order:?}"
        );
        assert_eq!(first_six.iter().filter(|&&t| t == 2).count(), 2);
    }

    #[test]
    fn quota_sheds_the_flooding_tenant_only() {
        let specs = tenants(&[(1, 1.0, 0.5), (2, 1.0, 0.5)]);
        let mut q: DispatchQueue<u64, u32> = DispatchQueue::bounded(8, &specs);
        // Tenant 1 floods: quota is ceil(0.5 × 8) = 4.
        for i in 0..4 {
            q.try_push(TenantId(1), i, i as u32).unwrap();
        }
        assert_eq!(
            q.try_push(TenantId(1), 99, 99),
            Err(DispatchPushError::OverQuota)
        );
        // Tenant 2 still has its full share available.
        for i in 0..4 {
            q.try_push(TenantId(2), i, i as u32).unwrap();
        }
        assert_eq!(q.len(), 8);
        assert_eq!(
            q.try_push(TenantId(2), 99, 99),
            Err(DispatchPushError::Full)
        );
    }

    #[test]
    fn pop_if_mismatch_leaves_queue_untouched() {
        let mut q: DispatchQueue<u64, u32> = DispatchQueue::bounded(8, &[]);
        let t = TenantId::default();
        q.try_push(t, 1, 7).unwrap();
        q.try_push(t, 2, 8).unwrap();
        assert!(matches!(
            q.pop_if(|&v| v == 7),
            CoalescePop::Item((_, 1, 7))
        ));
        // Head is now 8; a predicate wanting 7 must not pop or skip it.
        assert!(matches!(q.pop_if(|&v| v == 7), CoalescePop::Mismatch));
        assert_eq!(q.len(), 1);
        assert!(matches!(q.pop(), Some((_, 2, 8))));
        assert!(matches!(q.pop_if(|_| true), CoalescePop::Empty));
    }

    #[test]
    fn idle_lane_does_not_bank_priority() {
        let specs = tenants(&[(1, 1.0, 1.0), (2, 1.0, 1.0)]);
        let mut q: DispatchQueue<u64, u32> = DispatchQueue::bounded(64, &specs);
        // Tenant 1 runs alone for a while, accumulating vwork.
        for i in 0..10 {
            q.try_push(TenantId(1), i, 0).unwrap();
            q.pop().unwrap();
        }
        // Tenant 2 shows up with equal weight: it must share 1:1 from
        // here, not monopolize until it "catches up" 10 dispatches.
        for i in 0..6 {
            q.try_push(TenantId(1), 100 + i, 1).unwrap();
            q.try_push(TenantId(2), 100 + i, 2).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(t, _, _)| t.0)).collect();
        let first_four = &order[..4];
        assert_eq!(
            first_four.iter().filter(|&&t| t == 2).count(),
            2,
            "tenant 2 burst through: {order:?}"
        );
    }

    #[test]
    fn shared_queue_close_drains_then_reports_closed() {
        use crate::queue::PopResult;
        let q: SharedDispatchQueue<u64, u32> = SharedDispatchQueue::bounded(4, &[]);
        q.try_push(TenantId::default(), 5, 50).unwrap();
        q.close();
        assert_eq!(
            q.try_push(TenantId::default(), 6, 60),
            Err(DispatchPushError::Closed)
        );
        assert!(matches!(q.pop(), PopResult::Item((_, 5, 50))));
        assert!(matches!(q.pop(), PopResult::Closed));
        assert!(matches!(
            q.pop_if_timeout(Duration::from_millis(1), |_| true),
            CoalescePop::Closed
        ));
    }

    #[test]
    fn shared_pop_if_timeout_expires_on_empty() {
        let q: SharedDispatchQueue<u64, u32> = SharedDispatchQueue::bounded(4, &[]);
        assert!(matches!(
            q.pop_if_timeout(Duration::from_millis(1), |_| true),
            CoalescePop::Empty
        ));
    }
}
