/root/repo/target/release/deps/vit_serve-8592a30ba2f870ac.d: crates/serve/src/lib.rs

/root/repo/target/release/deps/libvit_serve-8592a30ba2f870ac.rlib: crates/serve/src/lib.rs

/root/repo/target/release/deps/libvit_serve-8592a30ba2f870ac.rmeta: crates/serve/src/lib.rs

crates/serve/src/lib.rs:
