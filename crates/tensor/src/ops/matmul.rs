//! Matrix multiplication and linear (fully-connected) kernels.
//!
//! The production path packs the right operand into `NR`-wide column
//! panels ([`crate::ops::pack::PackedB`]) and runs the register-blocked
//! micro-kernel; [`crate::par::ExecCtx::reference`] reroutes every entry
//! point to the naive oracle loops in [`crate::ops::reference`] so whole
//! models can be replayed against the tolerance tier's oracle.

use crate::error::{invalid_shape, shape_mismatch, Result};
use crate::ops::fused::Epilogue;
use crate::ops::pack::{gemm_rows, GemmBias, PackedB};
use crate::ops::reference;
use crate::par::ExecCtx;
use crate::tensor::Tensor;

/// Validates a `[m, k] x [k, n]` product, returning `(m, k, n)`.
pub(crate) fn validate_matmul(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(invalid_shape(
            "matmul",
            format!(
                "expected two rank-2 tensors, got {:?} x {:?}",
                a.shape(),
                b.shape()
            ),
        ));
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(shape_mismatch(
            "matmul",
            "[m, k] x [k, n] with shared k".to_string(),
            format!("{:?} x {:?}", a.shape(), b.shape()),
        ));
    }
    Ok((m, k, n))
}

/// Validates a batched product, returning `(batch, m, k, n)`.
pub(crate) fn validate_bmm(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if a.rank() != 3 || b.rank() != 3 || a.shape()[0] != b.shape()[0] {
        return Err(shape_mismatch(
            "bmm",
            "[b, m, k] x [b, k, n] with shared b".to_string(),
            format!("{:?} x {:?}", a.shape(), b.shape()),
        ));
    }
    let (batch, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (k2, n) = (b.shape()[1], b.shape()[2]);
    if k != k2 {
        return Err(shape_mismatch(
            "bmm",
            "[b, m, k] x [b, k, n] with shared k".to_string(),
            format!("{:?} x {:?}", a.shape(), b.shape()),
        ));
    }
    Ok((batch, m, k, n))
}

/// Validates a linear layer, returning the output shape and
/// `(in_features, out_features)`.
pub(crate) fn validate_linear(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<(Vec<usize>, usize, usize)> {
    if weight.rank() != 2 {
        return Err(invalid_shape(
            "linear",
            format!("weight must be rank 2, got {:?}", weight.shape()),
        ));
    }
    let in_features = *input.shape().last().ok_or_else(|| {
        invalid_shape(
            "linear",
            "input must have at least one dimension".to_string(),
        )
    })?;
    let (out_features, w_in) = (weight.shape()[0], weight.shape()[1]);
    if w_in != in_features {
        return Err(shape_mismatch(
            "linear",
            format!("input last dim {in_features}"),
            format!("weight shape {:?}", weight.shape()),
        ));
    }
    if let Some(b) = bias {
        if b.numel() != out_features {
            return Err(shape_mismatch(
                "linear",
                format!("bias of {out_features} elements"),
                format!("{:?}", b.shape()),
            ));
        }
    }
    let mut out_shape = input.shape().to_vec();
    *out_shape.last_mut().expect("non-empty shape") = out_features;
    Ok((out_shape, in_features, out_features))
}

/// Multiplies two 2-D matrices: `a` is `[m, k]`, `b` is `[k, n]`, the result
/// is `[m, n]`.
///
/// # Errors
///
/// Returns [`crate::TensorError::ShapeMismatch`] when the inner dimensions
/// disagree or either input is not rank 2.
///
/// # Examples
///
/// ```
/// use vit_tensor::{Tensor, ops};
/// # fn main() -> Result<(), vit_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(ops::matmul(&a, &id)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_ctx(a, b, &ExecCtx::default())
}

/// [`matmul`] with an execution context: `b` is panel-packed once, then
/// output rows are tiled across the context's thread pool. Blocking
/// geometry depends only on shapes, so the result is bit-identical to
/// [`matmul`] at any thread count.
///
/// # Errors
///
/// Returns the same validation errors as [`matmul`].
pub fn matmul_ctx(a: &Tensor, b: &Tensor, ctx: &ExecCtx<'_>) -> Result<Tensor> {
    let (m, k, n) = validate_matmul(a, b)?;
    let mut out = ctx.alloc_zeroed(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    if ctx.reference {
        ctx.for_each_row_chunk(out.data_mut(), n, |_, start, piece| {
            reference::matmul_rows(ad, bd, piece, start / n.max(1), k, n);
        });
        return Ok(out);
    }
    let packed = PackedB::pack(bd, k, n);
    ctx.for_each_row_chunk(out.data_mut(), n, |_, start, piece| {
        gemm_rows(
            ad,
            k,
            start / n.max(1),
            packed.panels(),
            piece,
            GemmBias::None,
            Epilogue::None,
        );
    });
    Ok(out)
}

/// Batched matrix multiplication over the leading dimension:
/// `a` is `[b, m, k]`, `b` is `[b, k, n]`, the result is `[b, m, n]`.
///
/// # Errors
///
/// Returns [`crate::TensorError::ShapeMismatch`] when batch or inner
/// dimensions disagree.
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bmm_ctx(a, b, &ExecCtx::default())
}

/// [`bmm`] with an execution context: batches are tiled across the
/// context's thread pool, each packing and multiplying its own `b`
/// slice. Per-batch packing depends only on shapes, so the result is
/// bit-identical to [`bmm`] at any thread count.
///
/// Products with a tiny inner dimension (`k < NR`) skip packing and run
/// the naive row loop instead: the register tile's fixed setup/store
/// cost cannot amortize over so few inner iterations (measured ~2.5x
/// slower on the spatial-reduction attention's `attn @ v` shapes). The
/// two kernels compute every output element through the identical
/// k-ascending add chain, so the dispatch — a pure function of shapes —
/// is bitwise invisible.
///
/// # Errors
///
/// Returns the same validation errors as [`bmm`].
pub fn bmm_ctx(a: &Tensor, b: &Tensor, ctx: &ExecCtx<'_>) -> Result<Tensor> {
    let (batch, m, k, n) = validate_bmm(a, b)?;
    let _ = batch;
    let mut out = ctx.alloc_zeroed(&[batch, m, n]);
    let ad = a.data();
    let bd = b.data();
    let per = m * n;
    let naive = ctx.reference || k < crate::ops::pack::NR;
    // Chunk on whole batches; each batch is an independent [m, k] x [k, n]
    // product computed directly on the input slices.
    ctx.for_each_row_chunk(out.data_mut(), per, |_, start, piece| {
        let b0 = start / per.max(1);
        for (off, opiece) in piece.chunks_mut(per.max(1)).enumerate() {
            let bi = b0 + off;
            let abatch = &ad[bi * m * k..(bi + 1) * m * k];
            let bbatch = &bd[bi * k * n..(bi + 1) * k * n];
            if naive {
                reference::matmul_rows(abatch, bbatch, opiece, 0, k, n);
            } else {
                let packed = PackedB::pack(bbatch, k, n);
                gemm_rows(
                    abatch,
                    k,
                    0,
                    packed.panels(),
                    opiece,
                    GemmBias::None,
                    Epilogue::None,
                );
            }
        }
    });
    Ok(out)
}

/// Applies a linear (fully-connected) layer to the last dimension.
///
/// `input` is `[..., in_features]`, `weight` is
/// `[out_features, in_features]` (PyTorch convention), `bias` is
/// `[out_features]` or `None`. The result replaces the last dimension with
/// `out_features`.
///
/// # Errors
///
/// Returns [`crate::TensorError::ShapeMismatch`] when `in_features` or the
/// bias length disagree.
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_ctx(input, weight, bias, &ExecCtx::default())
}

/// [`linear`] with an execution context: the weight is packed as `W^T`
/// column panels once, then output rows are tiled across the context's
/// thread pool. Bit-identical to [`linear`] at any thread count.
///
/// # Errors
///
/// Returns the same validation errors as [`linear`].
pub fn linear_ctx(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    ctx: &ExecCtx<'_>,
) -> Result<Tensor> {
    let (out_shape, in_features, out_features) = validate_linear(input, weight, bias)?;
    let mut out = ctx.alloc_zeroed(&out_shape);
    let xd = input.data();
    let wd = weight.data();
    let bd = bias.map(Tensor::data);
    if ctx.reference {
        ctx.for_each_row_chunk(out.data_mut(), out_features, |_, start, piece| {
            let r0 = start / out_features.max(1);
            reference::linear_rows(
                xd,
                wd,
                bd,
                piece,
                r0,
                in_features,
                out_features,
                Epilogue::None,
            );
        });
        return Ok(out);
    }
    let packed = PackedB::pack_transposed(wd, out_features, in_features);
    ctx.for_each_row_chunk(out.data_mut(), out_features, |_, start, piece| {
        gemm_rows(
            xd,
            in_features,
            start / out_features.max(1),
            packed.panels(),
            piece,
            bd.map_or(GemmBias::None, GemmBias::PerCol),
            Epilogue::None,
        );
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_example() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::rand_uniform(&[5, 5], -1.0, 1.0, 7);
        let mut id = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            id.set(&[i, i], 1.0);
        }
        let c = matmul(&a, &id).unwrap();
        for (x, y) in a.data().iter().zip(c.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::rand_uniform(&[3, 2, 4], -1.0, 1.0, 1);
        let b = Tensor::rand_uniform(&[3, 4, 5], -1.0, 1.0, 2);
        let c = bmm(&a, &b).unwrap();
        assert_eq!(c.shape(), &[3, 2, 5]);
        for bi in 0..3 {
            let a2 = Tensor::from_vec(a.data()[bi * 8..(bi + 1) * 8].to_vec(), &[2, 4]).unwrap();
            let b2 = Tensor::from_vec(b.data()[bi * 20..(bi + 1) * 20].to_vec(), &[4, 5]).unwrap();
            let expect = matmul(&a2, &b2).unwrap();
            assert_eq!(&c.data()[bi * 10..(bi + 1) * 10], expect.data());
        }
    }

    #[test]
    fn linear_matches_matmul_transpose() {
        let x = Tensor::rand_uniform(&[4, 6], -1.0, 1.0, 3);
        let w = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, 4);
        let y = linear(&x, &w, None).unwrap();
        let wt = w.transpose2().unwrap();
        let expect = matmul(&x, &wt).unwrap();
        for (a, b) in y.data().iter().zip(expect.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_applies_bias_and_keeps_leading_dims() {
        let x = Tensor::ones(&[2, 3, 4]);
        let w = Tensor::zeros(&[2, 4]);
        let b = Tensor::from_vec(vec![1.5, -2.5], &[2]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.shape(), &[2, 3, 2]);
        for row in 0..6 {
            assert_eq!(y.data()[row * 2], 1.5);
            assert_eq!(y.data()[row * 2 + 1], -2.5);
        }
    }

    #[test]
    fn linear_rejects_bad_bias() {
        let x = Tensor::ones(&[1, 4]);
        let w = Tensor::zeros(&[2, 4]);
        let b = Tensor::zeros(&[3]);
        assert!(linear(&x, &w, Some(&b)).is_err());
    }

    #[test]
    fn reference_ctx_reroutes_to_oracle() {
        let a = Tensor::rand_uniform(&[5, 7], -1.0, 1.0, 21);
        let b = Tensor::rand_uniform(&[7, 6], -1.0, 1.0, 22);
        let ref_ctx = ExecCtx {
            reference: true,
            ..ExecCtx::default()
        };
        let via_ctx = matmul_ctx(&a, &b, &ref_ctx).unwrap();
        let oracle = crate::ops::reference::matmul(&a, &b).unwrap();
        assert_eq!(via_ctx.data(), oracle.data());
    }
}
