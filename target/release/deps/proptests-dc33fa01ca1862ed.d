/root/repo/target/release/deps/proptests-dc33fa01ca1862ed.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-dc33fa01ca1862ed.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
