/root/repo/target/release/examples/segmentation_budget_sweep-f87c55351235a476.d: crates/core/../../examples/segmentation_budget_sweep.rs

/root/repo/target/release/examples/segmentation_budget_sweep-f87c55351235a476: crates/core/../../examples/segmentation_budget_sweep.rs

crates/core/../../examples/segmentation_budget_sweep.rs:
