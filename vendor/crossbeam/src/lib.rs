//! Offline stand-in for `crossbeam`.
//!
//! Implements the two pieces the workspace uses on top of the standard
//! library: [`scope`] (scoped threads, over `std::thread::scope`) and
//! [`channel`] — a genuine bounded/unbounded MPMC channel built from a
//! `Mutex<VecDeque>` plus two condition variables. The channel favours
//! correctness and predictable FIFO behaviour over lock-free throughput;
//! the serving layer's hot path is model execution, not queue handoff.

#![warn(missing_docs)]

use std::any::Any;

/// Error type returned by [`scope`] when a child thread panicked.
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A handle for spawning scoped threads; see [`scope`].
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn further threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let this = *self;
        self.inner.spawn(move || f(this))
    }
}

/// Runs `f` with a [`Scope`] on which borrowed-data threads can be spawned;
/// all threads are joined before `scope` returns (crossbeam's API shape;
/// a panicking child propagates as a panic here, which callers already
/// treat as fatal).
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Error returned by [`Sender::send`]: all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: channel empty and all senders
    /// are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Channel empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel holding at most `capacity` messages;
    /// `send` blocks while full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity.max(1)))
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = shared.not_full.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = shared.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = shared.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut q = shared.lock();
            if let Some(v) = q.pop_front() {
                drop(q);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Receives, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &*self.shared;
            let mut q = shared.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = shared
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_capacity_blocks_try_send() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = bounded::<i32>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn mpmc_all_messages_arrive_exactly_once() {
            let (tx, rx) = bounded(4);
            let n_producers = 4;
            let per_producer = 100;
            let mut handles = Vec::new();
            for p in 0..n_producers {
                let tx = tx.clone();
                handles.push(thread::spawn(move || {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut consumers = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                consumers.push(thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for h in handles {
                h.join().unwrap();
            }
            let mut all: Vec<i32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let expected: Vec<i32> = (0..n_producers * per_producer).collect();
            assert_eq!(all, expected);
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let mut out = [0u64; 4];
        super::scope(|s| {
            for (o, v) in out.chunks_mut(2).zip(data.chunks(2)) {
                s.spawn(move |_| {
                    for (a, b) in o.iter_mut().zip(v) {
                        *a = b * 10;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, [10, 20, 30, 40]);
    }
}
