/root/repo/target/release/deps/serving-fae8051e2dd55dfe.d: crates/serve/../../tests/serving.rs Cargo.toml

/root/repo/target/release/deps/libserving-fae8051e2dd55dfe.rmeta: crates/serve/../../tests/serving.rs Cargo.toml

crates/serve/../../tests/serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
