//! §IV experiments: the DRT inference engine in operation (Figure 8) and
//! the comparison against input-dependent early exit.

use crate::{banner, f, pct, Table};
use vit_drt::{BudgetTrace, DrtEngine, EarlyExitBaseline, TracePattern, TrainedFamily};
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};
use vit_tensor::Tensor;

/// Figure 8: the engine consuming a time-varying budget trace.
pub fn fig8() {
    banner("Figure 8 — DRT engine under a varying resource budget (B0 @ 64x64, executable)");
    let mut engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    println!(
        "LUT: {} Pareto-optimal execution paths (cheapest {:.3} ms, full {:.3} ms)",
        engine.lut().len(),
        engine.lut().entries()[0].resource * 1e3,
        engine.max_resource() * 1e3
    );
    let full = engine.max_resource();
    let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 5);
    let mut t = Table::new(&[
        "step",
        "budget (x full)",
        "chosen depths / fuse-ch",
        "est. norm mIoU",
        "est. resource (x full)",
        "met budget",
    ]);
    let trace = BudgetTrace::new(
        TracePattern::Sinusoid {
            min: 0.55,
            max: 1.05,
            period: 8,
        },
        3,
    );
    for (step, budget) in trace.take(12).enumerate() {
        let out = engine.infer(&image, budget * full).expect("inference runs");
        let cfg = match out.config {
            vit_drt::LutConfig::SegFormer {
                depths,
                fuse_in_channels,
                ..
            } => format!("{depths:?} / {fuse_in_channels}"),
            vit_drt::LutConfig::Swin {
                depths,
                bottleneck_in_channels,
            } => {
                format!("{depths:?} / {bottleneck_in_channels}")
            }
        };
        t.row(&[
            step.to_string(),
            f(budget, 2),
            cfg,
            f(out.norm_miou_estimate, 3),
            f(out.resource_estimate / full, 3),
            out.met_budget.to_string(),
        ]);
    }
    t.print();
    println!();
    println!(
        "every inference runs a path that fits its budget (or flags the overrun \
         when the budget is below the cheapest path) — independent of the input \
         image, unlike early-exit methods."
    );
}

/// The early-exit comparison: deadline-miss rates under hard budgets.
pub fn early_exit() {
    banner("Early-exit baseline — deadline misses under hard budgets");
    let ee = EarlyExitBaseline::typical();
    let mut t = Table::new(&["budget (x full)", "early-exit miss rate", "DRT miss rate"]);
    for budget in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        // DRT misses only when the budget is below its cheapest path
        // (0.35x here, matching the early-exit model's shallowest exit).
        let drt_miss = if budget < 0.35 { 1.0 } else { 0.0 };
        t.row(&[
            f(budget, 2),
            pct(ee.deadline_miss_rate(budget, 5000, 7)),
            pct(drt_miss),
        ]);
    }
    t.print();
    println!();
    println!(
        "input-dependent early exit minimizes average cost but cannot enforce a \
         per-inference budget: hard inputs run deep and miss. The DRT engine \
         selects the path by budget, so it never misses a feasible deadline \
         (paper §I/§IV's motivating argument, quantified)."
    );
}

/// The engine keyed by accelerator cycles (the §VI deployment: Figures
/// 12/13 use cycles and accelerator energy as the dynamic constraint).
pub fn accel_lut() {
    banner("DRT engine with accelerator-cycle budgets (B0 @ 64x64 on accelerator*)");
    use vit_accel::AccelConfig;
    use vit_resilience::AccelResource;
    let mut engine = DrtEngine::segformer_on_accelerator(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        &AccelConfig::accelerator_star(),
        AccelResource::Cycles,
    )
    .expect("engine builds");
    let full = engine.max_resource();
    println!(
        "LUT: {} paths; cheapest {:.0} cycles, full {:.0} cycles",
        engine.lut().len(),
        engine.lut().entries()[0].resource,
        full
    );
    let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 5);
    let mut t = Table::new(&[
        "cycle budget (x full)",
        "est. norm mIoU",
        "est. cycles (x full)",
    ]);
    for frac in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let out = engine.infer(&image, frac * full).expect("inference runs");
        t.row(&[
            f(frac, 2),
            f(out.norm_miou_estimate, 3),
            f(out.resource_estimate / full, 3),
        ]);
    }
    t.print();
    println!();
    println!(
        "the same engine machinery serves GPU-time, GPU-energy, and accelerator-cycle budgets."
    );
}

/// The trained-model crossover analysis (§III / §VII-A).
pub fn crossover() {
    banner("Crossover — when to switch from dynamic pruning to retrained models");
    for (workload, name) in [
        (Workload::SegFormerAde, "SegFormer-B2 / ADE20K"),
        (Workload::SegFormerCityscapes, "SegFormer-B2 / Cityscapes"),
    ] {
        let fam = TrainedFamily::for_workload(workload);
        // Build the dynamic front from the anchored tables.
        let v = SegFormerVariant::b2();
        let model = vit_resilience::AccuracyModel::for_workload(workload);
        let points = match workload {
            Workload::SegFormerAde => vit_resilience::table2_ade(),
            _ => vit_resilience::table2_cityscapes(),
        };
        let front: Vec<(f64, f64)> = points
            .iter()
            .map(|p| {
                (
                    p.norm_resource,
                    model.norm_miou_segformer(&p.to_segformer_dynamic(&v), &v),
                )
            })
            .collect();
        match fam.crossover(&front) {
            Some(c) => println!(
                "{name}: trained models win below {:.0}% of full execution time \
                 (dynamic pruning is competitive for savings up to ~{:.0}%)",
                c * 100.0,
                (1.0 - c) * 100.0
            ),
            None => println!("{name}: dynamic pruning is never beaten on this front"),
        }
    }
    println!();
    println!("paper: switch between 20% and 50% savings depending on the model/dataset.");
}
