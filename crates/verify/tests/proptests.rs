//! Property-based tests: any graph assembled through the *public* builder
//! API must pass the well-formedness pass with zero diagnostics, and cost
//! conservation must hold against a fresh profile — the escape hatches
//! (`from_raw_parts`, `from_entries_unchecked`) are the only way to make
//! the verifier fire.

use proptest::prelude::*;
use vit_graph::{Graph, LayerRole, Op};
use vit_profiler::Profile;
use vit_verify::{verify_accel_mapping, verify_costs, verify_graph, Severity, VerifyOptions};

/// One randomly chosen NCHW-preserving layer.
#[derive(Debug, Clone)]
enum Layer {
    Conv { out: usize, k: usize },
    BatchNorm,
    Relu,
    Gelu,
    Slice { frac: usize },
}

fn arb_layer() -> impl Strategy<Value = Layer> {
    (0usize..5, 1usize..12, 1usize..4).prop_map(|(which, out, k)| match which {
        0 => Layer::Conv { out, k },
        1 => Layer::BatchNorm,
        2 => Layer::Relu,
        3 => Layer::Gelu,
        _ => Layer::Slice { frac: k },
    })
}

/// Builds a random chain graph through the public API only. Every layer
/// consumes the previous one, so the graph is fully live by construction.
fn build_chain(c: usize, h: usize, w: usize, layers: &[Layer]) -> Graph {
    let mut g = Graph::new("proptest");
    let mut prev = g.input("in", &[1, c, h, w]).expect("input");
    let mut channels = c;
    for (i, layer) in layers.iter().enumerate() {
        prev = match layer {
            Layer::Conv { out, k } => {
                let k = (*k).min(h).min(w);
                let id = g
                    .add(
                        &format!("l{i}.conv"),
                        Op::Conv2d {
                            out_channels: *out,
                            kernel: (k, k),
                            stride: (1, 1),
                            pad: (k / 2, k / 2),
                            groups: 1,
                            bias: i % 2 == 0,
                        },
                        LayerRole::Other,
                        &[prev],
                    )
                    .expect("conv");
                channels = *out;
                id
            }
            Layer::BatchNorm => g
                .add(
                    &format!("l{i}.bn"),
                    Op::BatchNorm,
                    LayerRole::Other,
                    &[prev],
                )
                .expect("bn"),
            Layer::Relu => g
                .add(&format!("l{i}.relu"), Op::Relu, LayerRole::Other, &[prev])
                .expect("relu"),
            Layer::Gelu => g
                .add(&format!("l{i}.gelu"), Op::Gelu, LayerRole::Other, &[prev])
                .expect("gelu"),
            Layer::Slice { frac } => {
                let keep = (channels / (frac + 1)).max(1);
                let id = g
                    .add(
                        &format!("l{i}.slice"),
                        Op::SliceChannels { keep },
                        LayerRole::Other,
                        &[prev],
                    )
                    .expect("slice");
                channels = keep;
                id
            }
        };
    }
    g.set_output(prev);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn public_api_graphs_pass_well_formedness(
        c in 1usize..8,
        h in 4usize..10,
        w in 4usize..10,
        layers in prop::collection::vec(arb_layer(), 1..8),
    ) {
        let g = build_chain(c, h, w, &layers);
        let diags = verify_graph(&g);
        prop_assert!(diags.is_empty(), "public-API graph flagged: {diags:?}");
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn cost_conservation_holds_by_construction(
        c in 1usize..8,
        h in 4usize..10,
        w in 4usize..10,
        layers in prop::collection::vec(arb_layer(), 1..8),
    ) {
        let g = build_chain(c, h, w, &layers);
        let diags = verify_costs(&g, &Profile::flops_only(&g));
        prop_assert!(diags.is_empty(), "fresh profile flagged: {diags:?}");
    }

    #[test]
    fn accel_mapping_of_valid_graphs_never_errors(
        c in 1usize..8,
        h in 4usize..10,
        w in 4usize..10,
        layers in prop::collection::vec(arb_layer(), 1..8),
    ) {
        // Narrow random layers may warn (V031 lane padding) but a graph the
        // builder accepted can never produce an unschedulable tiling.
        let g = build_chain(c, h, w, &layers);
        let accel = vit_accel::AccelConfig::accelerator_a();
        let diags = verify_accel_mapping(&g, &accel, &VerifyOptions::default());
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "valid graph produced accel errors: {diags:?}"
        );
    }
}
