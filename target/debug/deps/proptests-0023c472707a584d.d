/root/repo/target/debug/deps/proptests-0023c472707a584d.d: crates/accel/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0023c472707a584d: crates/accel/tests/proptests.rs

crates/accel/tests/proptests.rs:
