//! Measured output fidelity between a pruned and a full execution path.
//!
//! Unlike the anchored accuracy model, this module produces a *measured*
//! resilience signal: it runs the real pruned graph and the real full graph
//! (shared slice-consistent weights) on synthetic scenes and reports the
//! mIoU **between their predicted label maps**. A configuration that
//! bypasses little computation agrees almost perfectly with the full model;
//! aggressive pruning diverges — the same qualitative mechanism the paper
//! measures against ground truth, with the full model standing in for the
//! reference.

use vit_data::{mean_iou, Dataset, SceneGenerator};
use vit_graph::{ExecError, ExecOptions, Executor, Graph};
use vit_models::{
    build_segformer, build_swin_upernet, ModelError, SegFormerConfig, SegFormerDynamic,
    SegFormerVariant, SwinConfig, SwinDynamic, SwinVariant,
};

/// Settings of a fidelity measurement.
#[derive(Debug, Clone, Copy)]
pub struct FidelitySettings {
    /// Image size to execute at (small sizes keep this fast; 64x64 by
    /// default).
    pub image: (usize, usize),
    /// Number of synthetic scenes to average over.
    pub samples: usize,
    /// Scene/weight seed.
    pub seed: u64,
}

impl Default for FidelitySettings {
    fn default() -> Self {
        FidelitySettings {
            image: (64, 64),
            samples: 3,
            seed: 7,
        }
    }
}

/// Error from a fidelity measurement.
#[derive(Debug)]
pub enum FidelityError {
    /// A graph failed to build.
    Model(ModelError),
    /// Execution failed.
    Exec(ExecError),
}

impl std::fmt::Display for FidelityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FidelityError::Model(e) => write!(f, "fidelity model error: {e}"),
            FidelityError::Exec(e) => write!(f, "fidelity execution error: {e}"),
        }
    }
}

impl std::error::Error for FidelityError {}

impl From<ModelError> for FidelityError {
    fn from(e: ModelError) -> Self {
        FidelityError::Model(e)
    }
}

impl From<ExecError> for FidelityError {
    fn from(e: ExecError) -> Self {
        FidelityError::Exec(e)
    }
}

fn measure(
    full: &Graph,
    pruned: &Graph,
    classes: usize,
    settings: &FidelitySettings,
) -> Result<f64, FidelityError> {
    let gen = SceneGenerator::new(Dataset::Ade20k, settings.seed);
    let mut exec_full = Executor::new(settings.seed);
    let mut exec_pruned = Executor::new(settings.seed);
    let mut total = 0.0;
    for i in 0..settings.samples {
        let scene = gen.sample_sized(i as u64, settings.image.0, settings.image.1);
        let ref_logits = exec_full.run(full, std::slice::from_ref(&scene.image))?;
        let cut_logits = exec_pruned.run(pruned, &[scene.image])?;
        let ref_map = ref_logits
            .argmax_channels()
            .expect("segmentation output is NCHW");
        let cut_map = cut_logits
            .argmax_channels()
            .expect("segmentation output is NCHW");
        total += mean_iou(&cut_map, &ref_map, classes);
    }
    Ok(total / settings.samples as f64)
}

/// Measured fidelity mIoU of a pruned SegFormer against the full model.
///
/// Returns 1.0 for the full configuration by construction.
///
/// # Errors
///
/// Returns [`FidelityError`] when a graph cannot be built or executed.
pub fn segformer_fidelity(
    variant: &SegFormerVariant,
    dynamic: &SegFormerDynamic,
    settings: &FidelitySettings,
) -> Result<f64, FidelityError> {
    let classes = 150;
    let base = SegFormerConfig::ade20k(*variant).with_image(settings.image.0, settings.image.1);
    let full = build_segformer(&base.clone())?;
    let pruned = build_segformer(&base.with_dynamic(*dynamic))?;
    measure(&full, &pruned, classes, settings)
}

/// Measured mIoU between the packed production kernels and the naive
/// reference oracle (`vit_tensor::ops::reference`) on the *same* full
/// model — the semantic leg of the two-tier kernel contract: the
/// registered ULP/relative tolerance bounds must be invisible at the
/// task level, so this returns 1.0 unless a kernel change spends enough
/// headroom to move an argmax.
///
/// # Errors
///
/// Returns [`FidelityError`] when the graph cannot be built or executed.
pub fn segformer_kernel_tier_fidelity(
    variant: &SegFormerVariant,
    settings: &FidelitySettings,
) -> Result<f64, FidelityError> {
    let classes = 150;
    let base = SegFormerConfig::ade20k(*variant).with_image(settings.image.0, settings.image.1);
    let full = build_segformer(&base)?;
    let gen = SceneGenerator::new(Dataset::Ade20k, settings.seed);
    let mut exec_packed = Executor::new(settings.seed);
    let mut exec_oracle = Executor::new(settings.seed);
    let packed = ExecOptions::sequential();
    let oracle = ExecOptions::sequential().with_reference_kernels(true);
    let mut total = 0.0;
    for i in 0..settings.samples {
        let scene = gen.sample_sized(i as u64, settings.image.0, settings.image.1);
        let inputs = std::slice::from_ref(&scene.image);
        let p = exec_packed.run_opts(&full, inputs, &packed)?;
        let o = exec_oracle.run_opts(&full, inputs, &oracle)?;
        let p_map = p.argmax_channels().expect("segmentation output is NCHW");
        let o_map = o.argmax_channels().expect("segmentation output is NCHW");
        total += mean_iou(&p_map, &o_map, classes);
    }
    Ok(total / settings.samples as f64)
}

/// Measured fidelity mIoU of a pruned Swin + UPerNet against the full model.
///
/// # Errors
///
/// Returns [`FidelityError`] when a graph cannot be built or executed.
pub fn swin_fidelity(
    variant: &SwinVariant,
    dynamic: &SwinDynamic,
    settings: &FidelitySettings,
) -> Result<f64, FidelityError> {
    let classes = 150;
    let base = SwinConfig::ade20k(*variant).with_image(settings.image.0, settings.image.1);
    let full = build_swin_upernet(&base.clone())?;
    let pruned = build_swin_upernet(&base.with_dynamic(*dynamic))?;
    measure(&full, &pruned, classes, settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> FidelitySettings {
        FidelitySettings {
            image: (64, 64),
            samples: 2,
            seed: 3,
        }
    }

    #[test]
    fn full_config_has_perfect_fidelity() {
        let v = SegFormerVariant::b0();
        let f = segformer_fidelity(&v, &SegFormerDynamic::full(&v), &fast()).unwrap();
        assert!((f - 1.0).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn fidelity_degrades_with_aggressive_pruning() {
        let v = SegFormerVariant::b0();
        let mild = SegFormerDynamic::with_depths_and_fuse(&v, v.depths, 896);
        let severe = SegFormerDynamic::with_depths_and_fuse(&v, [1, 1, 1, 1], 128);
        let f_mild = segformer_fidelity(&v, &mild, &fast()).unwrap();
        let f_severe = segformer_fidelity(&v, &severe, &fast()).unwrap();
        assert!(f_mild < 1.0 + 1e-9);
        assert!(
            f_severe < f_mild,
            "severe pruning ({f_severe:.3}) should diverge more than mild ({f_mild:.3})"
        );
        assert!(
            f_mild > 0.2,
            "mild pruning should retain substantial agreement, got {f_mild:.3}"
        );
    }

    #[test]
    fn packed_kernels_are_semantically_invisible() {
        // The whole-model oracle replay: packed GEMM/conv kernels vs the
        // naive reference loops must agree perfectly at the task level.
        let v = SegFormerVariant::b0();
        let f = segformer_kernel_tier_fidelity(&v, &fast()).unwrap();
        assert!((f - 1.0).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn channel_cut_fidelity_is_graceful() {
        // Cutting a modest fraction of fuse channels keeps high agreement —
        // the measured analogue of the paper's resilience claim.
        let v = SegFormerVariant::b0();
        let cut = SegFormerDynamic::with_depths_and_fuse(&v, v.depths, 768);
        let f = segformer_fidelity(&v, &cut, &fast()).unwrap();
        assert!(f > 0.5, "got {f}");
    }
}
