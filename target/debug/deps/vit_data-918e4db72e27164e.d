/root/repo/target/debug/deps/vit_data-918e4db72e27164e.d: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libvit_data-918e4db72e27164e.rlib: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libvit_data-918e4db72e27164e.rmeta: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/metrics.rs:
crates/data/src/scene.rs:
