/root/repo/target/debug/deps/vit_resilience-4eec25242b9f7eba.d: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

/root/repo/target/debug/deps/libvit_resilience-4eec25242b9f7eba.rlib: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

/root/repo/target/debug/deps/libvit_resilience-4eec25242b9f7eba.rmeta: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

crates/resilience/src/lib.rs:
crates/resilience/src/accel_sweep.rs:
crates/resilience/src/accuracy.rs:
crates/resilience/src/config.rs:
crates/resilience/src/fidelity.rs:
crates/resilience/src/pareto.rs:
crates/resilience/src/sweep.rs:
