//! SegFormer (MiT encoder + all-MLP decoder) graph builder with dynamic
//! execution-path configuration.
//!
//! The builder produces the *already-pruned* graph for a given
//! [`SegFormerDynamic`] configuration. Channel cuts follow the paper's
//! backwards-propagation rules (§III-A):
//!
//! * cutting `Conv2DFuse` input channels removes the corresponding
//!   `DecodeLinear` output channels (each stage contributes an equal slice);
//! * cutting `Conv2DPred` input channels removes `Conv2DFuse` output
//!   channels (propagating through the BatchNorm and ReLU in between);
//! * cutting `DecodeLinear0` *input* channels cannot remove any encoder
//!   computation, because the full stage-0 output still feeds stage 1 —
//!   the cut is a slice in the decoder only.
//!
//! Node names are identical between the full and pruned graphs, so the
//! executor's slice-consistent weights give both graphs literally shared
//! weights.

use crate::error::{ModelError, Result};
use vit_graph::{Graph, LayerRole, NodeId, Op};

/// Static architecture hyper-parameters of a SegFormer variant (MiT-B0..B5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegFormerVariant {
    /// Variant name, e.g. `"segformer-b2"`.
    pub name: &'static str,
    /// Embedding dimension of each encoder stage.
    pub embed_dims: [usize; 4],
    /// Transformer blocks per encoder stage.
    pub depths: [usize; 4],
    /// Attention heads per stage.
    pub heads: [usize; 4],
    /// Spatial-reduction ratios of the efficient self-attention per stage.
    pub sr_ratios: [usize; 4],
    /// MixFFN expansion ratio.
    pub mlp_ratio: usize,
    /// Decoder embedding dimension (the per-stage slice of `Conv2DFuse`'s
    /// input).
    pub decoder_dim: usize,
}

impl SegFormerVariant {
    /// MiT-B0: the smallest variant.
    pub fn b0() -> Self {
        SegFormerVariant {
            name: "segformer-b0",
            embed_dims: [32, 64, 160, 256],
            depths: [2, 2, 2, 2],
            heads: [1, 2, 5, 8],
            sr_ratios: [8, 4, 2, 1],
            mlp_ratio: 4,
            decoder_dim: 256,
        }
    }

    /// MiT-B1.
    pub fn b1() -> Self {
        SegFormerVariant {
            name: "segformer-b1",
            embed_dims: [64, 128, 320, 512],
            depths: [2, 2, 2, 2],
            heads: [1, 2, 5, 8],
            sr_ratios: [8, 4, 2, 1],
            mlp_ratio: 4,
            decoder_dim: 256,
        }
    }

    /// MiT-B2: the paper's main case study (27.6 M parameters).
    pub fn b2() -> Self {
        SegFormerVariant {
            name: "segformer-b2",
            embed_dims: [64, 128, 320, 512],
            depths: [3, 4, 6, 3],
            heads: [1, 2, 5, 8],
            sr_ratios: [8, 4, 2, 1],
            mlp_ratio: 4,
            decoder_dim: 768,
        }
    }

    /// MiT-B3.
    pub fn b3() -> Self {
        SegFormerVariant {
            name: "segformer-b3",
            depths: [3, 4, 18, 3],
            ..Self::b2()
        }
    }

    /// MiT-B4.
    pub fn b4() -> Self {
        SegFormerVariant {
            name: "segformer-b4",
            depths: [3, 8, 27, 3],
            ..Self::b2()
        }
    }

    /// MiT-B5.
    pub fn b5() -> Self {
        SegFormerVariant {
            name: "segformer-b5",
            depths: [3, 6, 40, 3],
            ..Self::b2()
        }
    }

    /// Total `Conv2DFuse` input channels of the unpruned model.
    pub fn full_fuse_in(&self) -> usize {
        4 * self.decoder_dim
    }
}

/// A dynamic execution-path configuration (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegFormerDynamic {
    /// Encoder blocks actually executed per stage (prefix of the trained
    /// blocks; the rest are bypassed).
    pub depths: [usize; 4],
    /// Total input channels into `Conv2DFuse` (divided equally across the
    /// four per-stage decoder slices).
    pub fuse_in_channels: usize,
    /// Output channels of `Conv2DFuse` == input channels of `Conv2DPred`.
    pub fuse_out_channels: usize,
    /// Input channels kept into `DecodeLinear0` (cutting these does *not*
    /// propagate into the encoder).
    pub decode_linear0_in: usize,
}

impl SegFormerDynamic {
    /// The unpruned execution path of a variant.
    pub fn full(variant: &SegFormerVariant) -> Self {
        SegFormerDynamic {
            depths: variant.depths,
            fuse_in_channels: variant.full_fuse_in(),
            fuse_out_channels: variant.decoder_dim,
            decode_linear0_in: variant.embed_dims[0],
        }
    }

    /// Convenience constructor for (depths, fuse-in-channels) points like
    /// those of Table II, keeping the remaining knobs at their full values.
    pub fn with_depths_and_fuse(
        variant: &SegFormerVariant,
        depths: [usize; 4],
        fuse_in: usize,
    ) -> Self {
        SegFormerDynamic {
            depths,
            fuse_in_channels: fuse_in,
            ..Self::full(variant)
        }
    }

    fn validate(&self, variant: &SegFormerVariant) -> Result<()> {
        for (i, (&d, &full)) in self.depths.iter().zip(variant.depths.iter()).enumerate() {
            if d == 0 || d > full {
                return Err(ModelError::BadConfig(format!(
                    "stage {i} depth {d} out of range 1..={full}"
                )));
            }
        }
        if self.fuse_in_channels == 0
            || !self.fuse_in_channels.is_multiple_of(4)
            || self.fuse_in_channels > variant.full_fuse_in()
        {
            return Err(ModelError::BadConfig(format!(
                "fuse_in_channels {} must be a positive multiple of 4 and <= {}",
                self.fuse_in_channels,
                variant.full_fuse_in()
            )));
        }
        if self.fuse_out_channels == 0 || self.fuse_out_channels > variant.decoder_dim {
            return Err(ModelError::BadConfig(format!(
                "fuse_out_channels {} out of range 1..={}",
                self.fuse_out_channels, variant.decoder_dim
            )));
        }
        if self.decode_linear0_in == 0 || self.decode_linear0_in > variant.embed_dims[0] {
            return Err(ModelError::BadConfig(format!(
                "decode_linear0_in {} out of range 1..={}",
                self.decode_linear0_in, variant.embed_dims[0]
            )));
        }
        Ok(())
    }
}

/// Full build configuration: variant + task + input geometry + dynamic path.
#[derive(Debug, Clone)]
pub struct SegFormerConfig {
    /// Architecture variant.
    pub variant: SegFormerVariant,
    /// Segmentation classes (150 for ADE20K, 19 for Cityscapes).
    pub num_classes: usize,
    /// Input image `(height, width)`; both must be multiples of 32.
    pub image: (usize, usize),
    /// Batch size.
    pub batch: usize,
    /// Dynamic execution path.
    pub dynamic: SegFormerDynamic,
}

impl SegFormerConfig {
    /// Standard ADE20K configuration (512x512, 150 classes) for a variant.
    pub fn ade20k(variant: SegFormerVariant) -> Self {
        SegFormerConfig {
            dynamic: SegFormerDynamic::full(&variant),
            variant,
            num_classes: 150,
            image: (512, 512),
            batch: 1,
        }
    }

    /// Standard Cityscapes configuration (1024x2048, 19 classes).
    pub fn cityscapes(variant: SegFormerVariant) -> Self {
        SegFormerConfig {
            dynamic: SegFormerDynamic::full(&variant),
            variant,
            num_classes: 19,
            image: (1024, 2048),
            batch: 1,
        }
    }

    /// Same configuration at a different image size (e.g. a small size for
    /// executable tests).
    pub fn with_image(mut self, h: usize, w: usize) -> Self {
        self.image = (h, w);
        self
    }

    /// Same configuration with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Same configuration with a different dynamic execution path.
    pub fn with_dynamic(mut self, dynamic: SegFormerDynamic) -> Self {
        self.dynamic = dynamic;
        self
    }
}

/// Builds the SegFormer execution graph for a configuration.
///
/// The graph input is `[batch, 3, H, W]`; the output is the class-logit map
/// `[batch, num_classes, H, W]`.
///
/// # Errors
///
/// Returns [`ModelError`] when the dynamic configuration is out of range or
/// the image size is not a multiple of 32.
pub fn build_segformer(cfg: &SegFormerConfig) -> Result<Graph> {
    cfg.dynamic.validate(&cfg.variant)?;
    let (ih, iw) = cfg.image;
    if ih % 32 != 0 || iw % 32 != 0 || ih == 0 || iw == 0 {
        return Err(ModelError::BadConfig(format!(
            "image {ih}x{iw} must be a positive multiple of 32"
        )));
    }
    if cfg.batch == 0 {
        return Err(ModelError::BadConfig("batch must be nonzero".to_string()));
    }
    let v = &cfg.variant;
    let mut g = Graph::new(v.name);
    let image = g.input("image", &[cfg.batch, 3, ih, iw])?;

    // ---- Encoder: four MiT stages ------------------------------------
    let mut stage_outputs: Vec<NodeId> = Vec::with_capacity(4); // NCHW per stage
    let mut x_nchw = image;
    let mut h = ih;
    let mut w = iw;
    for stage in 0..4 {
        let dim = v.embed_dims[stage];
        let (k, s, p) = if stage == 0 { (7, 4, 3) } else { (3, 2, 1) };
        h = (h + 2 * p - k) / s + 1;
        w = (w + 2 * p - k) / s + 1;
        let pe_role = LayerRole::PatchEmbed { stage };
        let pe = g.add(
            &format!("encoder.stage{stage}.patch_embed.conv"),
            Op::Conv2d {
                out_channels: dim,
                kernel: (k, k),
                stride: (s, s),
                pad: (p, p),
                groups: 1,
                bias: true,
            },
            pe_role,
            &[x_nchw],
        )?;
        let mut seq = g.add(
            &format!("encoder.stage{stage}.patch_embed.flatten"),
            Op::FlattenHw,
            pe_role,
            &[pe],
        )?;
        seq = g.add(
            &format!("encoder.stage{stage}.patch_embed.norm"),
            Op::LayerNorm,
            pe_role,
            &[seq],
        )?;

        for block in 0..cfg.dynamic.depths[stage] {
            seq = add_mit_block(
                &mut g,
                seq,
                stage,
                block,
                dim,
                v.heads[stage],
                v.sr_ratios[stage],
                v.mlp_ratio,
                h,
                w,
            )?;
        }
        let role = LayerRole::EncoderBlock {
            stage,
            block: cfg.dynamic.depths[stage] - 1,
        };
        let normed = g.add(
            &format!("encoder.stage{stage}.norm"),
            Op::LayerNorm,
            role,
            &[seq],
        )?;
        let nchw = g.add(
            &format!("encoder.stage{stage}.to_nchw"),
            Op::UnflattenHw { h, w },
            role,
            &[normed],
        )?;
        stage_outputs.push(nchw);
        x_nchw = nchw;
    }

    // ---- All-MLP decoder ----------------------------------------------
    let (dh, dw) = (ih / 4, iw / 4); // stage-0 resolution
    let slice_per_stage = cfg.dynamic.fuse_in_channels / 4;
    let mut fused_inputs: Vec<NodeId> = Vec::with_capacity(4);
    // mmseg fuses in reversed stage order (stage 3 first).
    for stage in (0..4).rev() {
        let role = LayerRole::DecoderLinear { stage };
        let mut seq = g.add(
            &format!("decoder.linear{stage}.flatten"),
            Op::FlattenHw,
            role,
            &[stage_outputs[stage]],
        )?;
        if stage == 0 && cfg.dynamic.decode_linear0_in < v.embed_dims[0] {
            seq = g.add(
                "decoder.linear0.slice",
                Op::SliceChannels {
                    keep: cfg.dynamic.decode_linear0_in,
                },
                role,
                &[seq],
            )?;
        }
        let proj = g.add(
            &format!("decoder.linear{stage}"),
            Op::Linear {
                out_features: slice_per_stage,
                bias: true,
            },
            role,
            &[seq],
        )?;
        let (sh, sw) = (ih >> (2 + stage), iw >> (2 + stage));
        let nchw = g.add(
            &format!("decoder.linear{stage}.to_nchw"),
            Op::UnflattenHw { h: sh, w: sw },
            role,
            &[proj],
        )?;
        let up = g.add(
            &format!("decoder.linear{stage}.resize"),
            Op::Resize {
                out_h: dh,
                out_w: dw,
            },
            role,
            &[nchw],
        )?;
        fused_inputs.push(up);
    }
    let cat = g.add(
        "decoder.concat",
        Op::Concat,
        LayerRole::Other,
        &fused_inputs,
    )?;
    let fuse = g.add(
        "decoder.conv_fuse",
        Op::Conv2d {
            out_channels: cfg.dynamic.fuse_out_channels,
            kernel: (1, 1),
            stride: (1, 1),
            pad: (0, 0),
            groups: 1,
            bias: false,
        },
        LayerRole::FuseConv,
        &[cat],
    )?;
    let bn = g.add(
        "decoder.fuse_bn",
        Op::BatchNorm,
        LayerRole::FuseConv,
        &[fuse],
    )?;
    let relu = g.add("decoder.fuse_relu", Op::Relu, LayerRole::FuseConv, &[bn])?;
    let pred = g.add(
        "decoder.conv_pred",
        Op::Conv2d {
            out_channels: cfg.num_classes,
            kernel: (1, 1),
            stride: (1, 1),
            pad: (0, 0),
            groups: 1,
            bias: true,
        },
        LayerRole::PredConv,
        &[relu],
    )?;
    let up = g.add(
        "decoder.upsample",
        Op::Resize {
            out_h: ih,
            out_w: iw,
        },
        LayerRole::Head,
        &[pred],
    )?;
    g.set_output(up);
    Ok(g)
}

/// Adds one MiT transformer block (efficient self-attention + MixFFN).
#[allow(clippy::too_many_arguments)]
fn add_mit_block(
    g: &mut Graph,
    input: NodeId,
    stage: usize,
    block: usize,
    dim: usize,
    heads: usize,
    sr_ratio: usize,
    mlp_ratio: usize,
    h: usize,
    w: usize,
) -> Result<NodeId> {
    let p = format!("encoder.stage{stage}.block{block}");
    let role = LayerRole::EncoderBlock { stage, block };
    let linear = |out| Op::Linear {
        out_features: out,
        bias: true,
    };

    // Efficient self-attention with spatial reduction on k/v.
    let norm1 = g.add(&format!("{p}.norm1"), Op::LayerNorm, role, &[input])?;
    let q = g.add(&format!("{p}.attn.q"), linear(dim), role, &[norm1])?;
    let kv_src = if sr_ratio > 1 {
        let un = g.add(
            &format!("{p}.attn.sr_unflatten"),
            Op::UnflattenHw { h, w },
            role,
            &[norm1],
        )?;
        let sr = g.add(
            &format!("{p}.attn.sr_conv"),
            Op::Conv2d {
                out_channels: dim,
                kernel: (sr_ratio, sr_ratio),
                stride: (sr_ratio, sr_ratio),
                pad: (0, 0),
                groups: 1,
                bias: true,
            },
            role,
            &[un],
        )?;
        let fl = g.add(&format!("{p}.attn.sr_flatten"), Op::FlattenHw, role, &[sr])?;
        g.add(&format!("{p}.attn.sr_norm"), Op::LayerNorm, role, &[fl])?
    } else {
        norm1
    };
    let k = g.add(&format!("{p}.attn.k"), linear(dim), role, &[kv_src])?;
    let val = g.add(&format!("{p}.attn.v"), linear(dim), role, &[kv_src])?;
    let sdpa = g.add(
        &format!("{p}.attn.sdpa"),
        Op::Sdpa { heads },
        role,
        &[q, k, val],
    )?;
    let proj = g.add(&format!("{p}.attn.proj"), linear(dim), role, &[sdpa])?;
    let res1 = g.add(&format!("{p}.attn.residual"), Op::Add, role, &[input, proj])?;

    // MixFFN: fc1 -> 3x3 depthwise conv -> GELU -> fc2.
    let hidden = dim * mlp_ratio;
    let norm2 = g.add(&format!("{p}.norm2"), Op::LayerNorm, role, &[res1])?;
    let fc1 = g.add(&format!("{p}.ffn.fc1"), linear(hidden), role, &[norm2])?;
    let un = g.add(
        &format!("{p}.ffn.unflatten"),
        Op::UnflattenHw { h, w },
        role,
        &[fc1],
    )?;
    let dw = g.add(
        &format!("{p}.ffn.dwconv"),
        Op::Conv2d {
            out_channels: hidden,
            kernel: (3, 3),
            stride: (1, 1),
            pad: (1, 1),
            groups: hidden,
            bias: true,
        },
        role,
        &[un],
    )?;
    let fl = g.add(&format!("{p}.ffn.flatten"), Op::FlattenHw, role, &[dw])?;
    let gelu = g.add(&format!("{p}.ffn.gelu"), Op::Gelu, role, &[fl])?;
    let fc2 = g.add(&format!("{p}.ffn.fc2"), linear(dim), role, &[gelu])?;
    Ok(g.add(&format!("{p}.ffn.residual"), Op::Add, role, &[res1, fc2])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_graph::OpClass;

    #[test]
    fn b2_ade_flops_match_paper_table1() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let gflops = g.total_flops() as f64 / 1e9;
        // Paper Table I: 62.6 GFLOPs. Allow a few percent of accounting slack.
        assert!(
            (gflops - 62.6).abs() / 62.6 < 0.08,
            "got {gflops:.1} GFLOPs, expected ~62.6"
        );
    }

    #[test]
    fn b2_params_match_paper_table1() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Paper Table I: 27.6 M parameters.
        assert!((m - 27.6).abs() / 27.6 < 0.08, "got {m:.1} M params");
    }

    #[test]
    fn b2_cityscapes_flops_scale_with_image_area() {
        let ade = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let city = build_segformer(&SegFormerConfig::cityscapes(SegFormerVariant::b2())).unwrap();
        let ratio = city.total_flops() as f64 / ade.total_flops() as f64;
        // 1024x2048 / 512x512 = 8x area; attention grows super-linearly but
        // the model is conv/linear dominated. Paper: 705 / 62.6 = 11.3x.
        assert!(ratio > 8.0 && ratio < 14.0, "ratio {ratio:.1}");
    }

    #[test]
    fn conv_fuse_dominates_flops() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let fuse = g.find("decoder.conv_fuse").unwrap();
        let share = g.node(fuse).flops(&g) as f64 / g.total_flops() as f64;
        // Paper Fig. 3: Conv2DFuse alone is 62% of total FLOPs.
        assert!((share - 0.62).abs() < 0.05, "fuse share {share:.2}");
    }

    #[test]
    fn conv_share_matches_paper_68_percent() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let conv = g.flops_by_class(OpClass::Conv) as f64 / g.total_flops() as f64;
        // Paper: 68% of FLOPs are in convolution layers.
        assert!((conv - 0.68).abs() < 0.05, "conv share {conv:.2}");
    }

    #[test]
    fn decoder_share_is_about_68_percent() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let share = g.decoder_flops() as f64 / g.total_flops() as f64;
        assert!(share > 0.6 && share < 0.75, "decoder share {share:.2}");
    }

    #[test]
    fn pruning_fuse_channels_reduces_fuse_and_linears_only() {
        let variant = SegFormerVariant::b2();
        let full = build_segformer(&SegFormerConfig::ade20k(variant)).unwrap();
        let pruned_cfg = SegFormerConfig::ade20k(variant).with_dynamic(
            SegFormerDynamic::with_depths_and_fuse(&variant, variant.depths, 1920),
        );
        let pruned = build_segformer(&pruned_cfg).unwrap();
        // Encoder FLOPs identical: cutting fuse input channels does not
        // propagate into the encoder (paper §III-A).
        let enc = |g: &Graph| -> u64 {
            g.iter()
                .filter(|(_, n)| {
                    matches!(
                        n.role,
                        LayerRole::EncoderBlock { .. } | LayerRole::PatchEmbed { .. }
                    )
                })
                .map(|(_, n)| n.flops(g))
                .sum()
        };
        assert_eq!(enc(&full), enc(&pruned));
        // Fuse conv shrinks proportionally to kept channels.
        let fuse_flops = |g: &Graph| g.node(g.find("decoder.conv_fuse").unwrap()).flops(g);
        let ratio = fuse_flops(&pruned) as f64 / fuse_flops(&full) as f64;
        assert!((ratio - 1920.0 / 3072.0).abs() < 0.01, "ratio {ratio:.3}");
        // Decoder linears shrink too (their outputs are the cut channels).
        let lin = |g: &Graph| g.node(g.find("decoder.linear3").unwrap()).flops(g);
        assert!(lin(&pruned) < lin(&full));
    }

    #[test]
    fn cutting_decode_linear0_input_does_not_touch_encoder() {
        let variant = SegFormerVariant::b2();
        let full = build_segformer(&SegFormerConfig::ade20k(variant)).unwrap();
        let mut dynamic = SegFormerDynamic::full(&variant);
        dynamic.decode_linear0_in = 32;
        let pruned =
            build_segformer(&SegFormerConfig::ade20k(variant).with_dynamic(dynamic)).unwrap();
        let enc = |g: &Graph| -> u64 {
            g.iter()
                .filter(|(_, n)| !n.role.is_decoder() && n.role != LayerRole::Head)
                .map(|(_, n)| n.flops(g))
                .sum()
        };
        assert_eq!(enc(&full), enc(&pruned));
        let lin0 = |g: &Graph| g.node(g.find("decoder.linear0").unwrap()).flops(g);
        assert!(lin0(&pruned) < lin0(&full));
    }

    #[test]
    fn bypassing_encoder_blocks_reduces_encoder_flops_only() {
        let variant = SegFormerVariant::b2();
        let full = build_segformer(&SegFormerConfig::ade20k(variant)).unwrap();
        let pruned_cfg = SegFormerConfig::ade20k(variant).with_dynamic(
            SegFormerDynamic::with_depths_and_fuse(&variant, [2, 3, 5, 3], 3072),
        );
        let pruned = build_segformer(&pruned_cfg).unwrap();
        assert!(pruned.total_flops() < full.total_flops());
        let fuse = |g: &Graph| g.node(g.find("decoder.conv_fuse").unwrap()).flops(g);
        assert_eq!(fuse(&full), fuse(&pruned));
    }

    #[test]
    fn invalid_dynamic_configs_rejected() {
        let variant = SegFormerVariant::b2();
        let mut bad = SegFormerDynamic::full(&variant);
        bad.depths[0] = 4; // B2 stage 0 has only 3 blocks.
        assert!(build_segformer(&SegFormerConfig::ade20k(variant).with_dynamic(bad)).is_err());
        let mut bad2 = SegFormerDynamic::full(&variant);
        bad2.fuse_in_channels = 3073;
        assert!(build_segformer(&SegFormerConfig::ade20k(variant).with_dynamic(bad2)).is_err());
        let mut bad3 = SegFormerDynamic::full(&variant);
        bad3.fuse_in_channels = 6; // not a multiple of 4
        assert!(build_segformer(&SegFormerConfig::ade20k(variant).with_dynamic(bad3)).is_err());
    }

    #[test]
    fn bad_image_sizes_rejected() {
        let cfg = SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(100, 100);
        assert!(build_segformer(&cfg).is_err());
    }

    #[test]
    fn small_graph_executes_end_to_end() {
        use vit_graph::Executor;
        use vit_tensor::Tensor;
        let cfg = SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(64, 64);
        let g = build_segformer(&cfg).unwrap();
        let mut ex = Executor::new(0);
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
        let out = ex.run(&g, &[img]).unwrap();
        assert_eq!(out.shape(), &[1, 150, 64, 64]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn b0_smaller_than_b2() {
        let b0 = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0())).unwrap();
        let b2 = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        assert!(b0.total_flops() < b2.total_flops());
        assert!(b0.total_params() < b2.total_params());
    }
}
