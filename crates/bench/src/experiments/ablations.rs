//! Ablations of the design choices `DESIGN.md` calls out: pruning
//! propagation, the OS-LWS dataflow, cross-PE reduction, and LUT
//! granularity.

use crate::{banner, f, pct, Table};
use vit_accel::{simulate, AccelConfig, SimOptions};
use vit_drt::Lut;
use vit_models::{build_segformer, SegFormerConfig, SegFormerDynamic, SegFormerVariant};
use vit_profiler::GpuModel;
use vit_resilience::{segformer_sweep_space, sweep_segformer, ResourceKind, Workload};

/// Pruning propagation on/off: how much of the latency saving comes from
/// propagating channel cuts backwards into producer layers.
pub fn pruning_propagation() {
    banner("Ablation — backwards propagation of channel cuts");
    let v = SegFormerVariant::b2();
    let gpu = GpuModel::titan_v();
    let full = build_segformer(&SegFormerConfig::ade20k(v)).expect("builds");
    let t_full = gpu.total_time(&full);
    let mut t = Table::new(&[
        "fuse in-ch",
        "saving with propagation",
        "saving without (slice only)",
    ]);
    for ch in [2048usize, 1024, 512] {
        // With propagation: the builder shrinks DecodeLinear outputs too.
        let with = build_segformer(
            &SegFormerConfig::ade20k(v)
                .with_dynamic(SegFormerDynamic::with_depths_and_fuse(&v, v.depths, ch)),
        )
        .expect("builds");
        // Without propagation: only the fuse conv itself shrinks; model it
        // by keeping the full decoder linears and charging the fuse conv
        // for `ch` channels. The extra cost is the full-width linears.
        let linear_cost: f64 = {
            let slice = ch as f64 / v.full_fuse_in() as f64;
            let full_linears: f64 = full
                .iter()
                .filter(|(_, n)| n.name.starts_with("decoder.linear") && n.name.len() == 15)
                .map(|(_, n)| gpu.node_time(&full, n))
                .sum();
            full_linears * (1.0 - slice)
        };
        let t_with = gpu.total_time(&with);
        let t_without = t_with + linear_cost;
        t.row(&[
            ch.to_string(),
            pct(1.0 - t_with / t_full),
            pct(1.0 - t_without / t_full),
        ]);
    }
    t.print();
    println!();
    println!("propagation is what turns a fuse-channel cut into real upstream savings (§III-A).");
}

/// OS-LWS vs no local weight reuse: the Q0 loop's energy contribution.
pub fn dataflow() {
    banner("Ablation — OS-LWS local weight reuse (Q0)");
    let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).expect("builds");
    let mut t = Table::new(&["Q0 reuse", "norm energy"]);
    let base = simulate(
        &g,
        &AccelConfig::accelerator_star(),
        &SimOptions {
            q0_reuse: 8,
            ..SimOptions::default()
        },
    )
    .total_energy_j();
    for q0 in [1usize, 2, 4, 8, 16] {
        let e = simulate(
            &g,
            &AccelConfig::accelerator_star(),
            &SimOptions {
                q0_reuse: q0,
                ..SimOptions::default()
            },
        )
        .total_energy_j();
        t.row(&[q0.to_string(), f(e / base, 3)]);
    }
    t.print();
    println!();
    println!("without the Q0 loop (Q0 = 1) every MAC pays a weight-SRAM read.");
}

/// Cross-PE reduction on/off.
pub fn cross_pe() {
    banner("Ablation — cross-PE reduction");
    let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).expect("builds");
    let on = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
    let off = simulate(
        &g,
        &AccelConfig::accelerator_star(),
        &SimOptions {
            cross_pe_reduction: false,
            ..SimOptions::default()
        },
    );
    println!(
        "cycles with cross-PE reduction: {} / without: {} ({} slower)",
        on.total_cycles(),
        off.total_cycles(),
        pct(off.total_cycles() as f64 / on.total_cycles() as f64 - 1.0)
    );
    println!(
        "weight passes on Conv2DFuse: {} (on) vs {} (off) — splitting input \
         channels across PEs shrinks per-PE weights so large layers fit \
         small weight memories (§V, optimization 2)",
        on.layers
            .iter()
            .find(|l| l.name == "decoder.conv_fuse")
            .expect("exists")
            .weight_passes,
        off.layers
            .iter()
            .find(|l| l.name == "decoder.conv_fuse")
            .expect("exists")
            .weight_passes,
    );
}

/// Model-level parallelism on/off (§V, optimization 1).
pub fn model_parallelism() {
    banner("Ablation — model-level parallelism (decoder linears under encoder stages)");
    let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).expect("builds");
    let base = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
    let mp = simulate(
        &g,
        &AccelConfig::accelerator_star(),
        &SimOptions {
            model_parallelism: true,
            ..SimOptions::default()
        },
    );
    println!(
        "cycles without: {} / with: {} ({} saved)",
        base.total_cycles(),
        mp.total_cycles(),
        pct(1.0 - mp.total_cycles() as f64 / base.total_cycles() as f64)
    );
}

/// LUT granularity: accuracy regret vs number of Pareto rows retained.
pub fn lut_granularity() {
    banner("Ablation — LUT granularity (accuracy regret vs rows retained)");
    let v = SegFormerVariant::b0();
    let space = segformer_sweep_space(&v, 2, 8);
    let points = sweep_segformer(
        &v,
        Workload::SegFormerAde,
        (128, 128),
        150,
        &space,
        ResourceKind::GpuTime,
    );
    let full_lut = Lut::from_points("full", &points);
    let budgets: Vec<f64> = (0..40)
        .map(|i| {
            let max = full_lut.entries().last().expect("nonempty").resource;
            let min = full_lut.entries()[0].resource;
            min + (max - min) * i as f64 / 39.0
        })
        .collect();
    let regret = |lut: &Lut| -> f64 {
        budgets
            .iter()
            .map(|&b| {
                let best = full_lut.lookup(b).map(|e| e.norm_miou).unwrap_or(0.0);
                let got = lut.lookup(b).map(|e| e.norm_miou).unwrap_or(0.0);
                best - got
            })
            .sum::<f64>()
            / budgets.len() as f64
    };
    let mut t = Table::new(&["LUT rows", "mean accuracy regret"]);
    for n in [2usize, 4, 8, 16, full_lut.len()] {
        let lut = full_lut.downsample(n);
        t.row(&[lut.len().to_string(), f(regret(&lut), 4)]);
    }
    t.print();
    println!();
    println!("a handful of Pareto rows already captures almost all of the benefit.");
}

/// Runs every ablation.
pub fn all() {
    pruning_propagation();
    dataflow();
    cross_pe();
    model_parallelism();
    lut_granularity();
}
