/root/repo/target/debug/deps/integration-265479d06309fb3b.d: crates/core/../../tests/integration.rs

/root/repo/target/debug/deps/integration-265479d06309fb3b: crates/core/../../tests/integration.rs

crates/core/../../tests/integration.rs:
