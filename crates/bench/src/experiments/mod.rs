//! One module per group of paper experiments.

pub mod ablations;
pub mod accelerator;
pub mod chaos;
pub mod characterization;
pub mod engine;
pub mod headline;
pub mod parallel;
pub mod profile;
pub mod resilience;
pub mod serve;
pub mod verify;
