/root/repo/target/release/deps/vit_profiler-4c9bcfa26905e13d.d: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

/root/repo/target/release/deps/libvit_profiler-4c9bcfa26905e13d.rlib: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

/root/repo/target/release/deps/libvit_profiler-4c9bcfa26905e13d.rmeta: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

crates/profiler/src/lib.rs:
crates/profiler/src/flops.rs:
crates/profiler/src/gpu.rs:
