//! Serving experiment: deadline-aware DRT serving vs a static full-model
//! server at equal offered load.
//!
//! This is the paper's thesis applied to a server: because the DRT engine
//! can trade accuracy for resources per-request, a deadline-aware
//! scheduler degrades accuracy gracefully under load where a fixed-model
//! server starts missing deadlines. The sweep is a deterministic
//! discrete-event simulation over a seeded open-loop arrival process
//! (Poisson base + periodic bursts), so it reproduces exactly.

use crate::loadgen;
use crate::{banner, f, pct, Table};
use std::sync::Arc;
use vit_drt::{DrtEngine, EngineCore};
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};
use vit_serve::{simulate, SchedulePolicy, ServerMetrics, SimConfig};

const WORKERS: usize = 4;
const QUEUE_DEPTH: usize = 16;
const SEED: u64 = 42;

pub(crate) fn build_core() -> Arc<EngineCore> {
    let engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    engine.core().clone()
}

/// Runs one operating point of the sweep under both policies.
///
/// `load_x` is offered load as a multiple of full-model capacity
/// (`WORKERS / full_cost` requests per second).
fn operating_point(core: &EngineCore, load_x: f64, seed: u64) -> (ServerMetrics, ServerMetrics) {
    let full = core.max_resource();
    let capacity_hz = WORKERS as f64 / full;
    // Long enough to see steady-state queueing: ~1500 full service times,
    // with a burst of 3x the worker count every fifth of the run.
    let duration = 1500.0 * full / WORKERS as f64;
    let arrivals = loadgen::poisson_with_bursts(
        load_x * capacity_hz,
        duration,
        2.0 * full, // slack fits the full model plus some queueing
        duration / 5.0,
        3 * WORKERS,
        seed,
    );
    // LUT resources for GpuTime are already seconds.
    let config = |policy| SimConfig::new(WORKERS, QUEUE_DEPTH, policy, 1.0);
    let drt = simulate(core, config(SchedulePolicy::DrtDynamic), &arrivals);
    let stat = simulate(core, config(SchedulePolicy::static_full()), &arrivals);
    (drt, stat)
}

/// `repro serve`: the offered-load sweep.
pub fn serve() {
    banner("Serving — deadline-aware DRT vs static full model at equal offered load");
    let core = build_core();
    let full = core.max_resource();
    println!(
        "SegFormer-B0 @ 64x64, GPU-time LUT: {} Pareto paths (cheapest {:.3} ms, \
         full {:.3} ms); {WORKERS} workers, EDF queue depth {QUEUE_DEPTH}, \
         slack 2.0x full, seed {SEED}",
        core.lut().len(),
        core.min_resource() * 1e3,
        full * 1e3,
    );
    println!();
    let mut t = Table::new(&[
        "load (x capacity)",
        "policy",
        "miss rate",
        "shed rate",
        "p99 latency (ms)",
        "p50/p95/p99 qwait (ms)",
        "delivered acc",
    ]);
    let mut overload_ok = true;
    for (i, load_x) in [0.5, 0.8, 1.0, 1.5, 2.0, 3.0].into_iter().enumerate() {
        let (drt, stat) = operating_point(&core, load_x, SEED + i as u64);
        for (name, m) in [("drt", &drt), ("static-full", &stat)] {
            t.row(&[
                f(load_x, 1),
                name.to_string(),
                pct(m.deadline_miss_rate),
                pct(m.shed_rate),
                f(m.p99_latency * 1e3, 3),
                format!(
                    "{} / {} / {}",
                    f(m.p50_queue_wait * 1e3, 3),
                    f(m.p95_queue_wait * 1e3, 3),
                    f(m.p99_queue_wait * 1e3, 3),
                ),
                f(m.mean_delivered_accuracy, 3),
            ]);
        }
        if load_x > 1.0 && drt.deadline_miss_rate >= stat.deadline_miss_rate {
            overload_ok = false;
        }
    }
    t.print();
    println!();
    println!(
        "deadline-aware DRT serving {} a strictly lower miss rate than the \
         static full-model server at every overloaded point — under pressure it \
         selects cheaper LUT paths instead of letting deadlines slip.",
        if overload_ok {
            "achieves"
        } else {
            "DID NOT achieve"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drt_beats_static_baseline_at_overload() {
        let core = build_core();
        for load_x in [1.5, 2.0, 3.0] {
            let (drt, stat) = operating_point(&core, load_x, SEED);
            assert!(drt.accounts_for_all_submissions());
            assert!(stat.accounts_for_all_submissions());
            assert!(
                drt.deadline_miss_rate < stat.deadline_miss_rate,
                "at {load_x}x load: DRT {} vs static {}",
                drt.deadline_miss_rate,
                stat.deadline_miss_rate
            );
            assert!(drt.mean_delivered_accuracy > stat.mean_delivered_accuracy);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let core = build_core();
        let (a, _) = operating_point(&core, 2.0, SEED);
        let (b, _) = operating_point(&core, 2.0, SEED);
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.config_histogram, b.config_histogram);
    }
}
