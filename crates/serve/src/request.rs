//! Request and per-request outcome types.

use std::fmt;
use std::time::Instant;
use vit_drt::LutConfig;
use vit_resilience::ResourceKind;
use vit_tensor::Tensor;

/// Identifies the tenant a request belongs to for quota accounting and
/// weighted-fair scheduling. Tenant `0` is the default tenant; a server
/// with no explicit tenancy configuration treats all traffic as tenant 0
/// and degenerates to pure EDF scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// The correlation handle [`crate::Server::submit`] returns for an admitted
/// request. The same ticket appears on the request's terminal
/// [`RequestRecord`] / [`FailureRecord`] / in-queue [`ShedRecord`], so
/// callers can match completions back to submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestTicket(pub u64);

impl fmt::Display for RequestTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ticket{}", self.0)
    }
}

/// One inference request submitted to a [`crate::Server`].
#[derive(Debug)]
pub struct InferenceRequest {
    /// The input image (`[1, 3, h, w]`, matching the engine's image size).
    pub image: Tensor,
    /// Absolute completion deadline. The scheduler turns remaining slack
    /// (`deadline − now`) into the DRT resource budget at dispatch time.
    pub deadline: Instant,
    /// The resource dimension the deadline is stated in. Must match the
    /// kind the server's LUT was swept with; a mismatched request is
    /// rejected at submission.
    pub resource_kind: ResourceKind,
    /// The submitting tenant, for quota and fair-share accounting.
    pub tenant: TenantId,
}

impl InferenceRequest {
    /// A request from the default tenant.
    pub fn new(image: Tensor, deadline: Instant, resource_kind: ResourceKind) -> Self {
        InferenceRequest {
            image,
            deadline,
            resource_kind,
            tenant: TenantId::default(),
        }
    }

    /// Re-tags the request with an explicit tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Why a request was shed instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ShedReason {
    /// The bounded queue was full at submission (overload backpressure).
    QueueFull,
    /// Remaining slack was already below the cheapest LUT entry's cost at
    /// admission — executing could not possibly meet the deadline.
    SlackBelowCheapest,
    /// Slack ran out while the request waited in the queue; detected at
    /// dispatch, before wasting worker time on a hopeless request.
    SlackExhausted,
    /// The submitting tenant already holds its full queue share; admitting
    /// more would let one tenant starve the rest.
    OverQuota,
}

impl ShedReason {
    /// Stable lower-snake name, used in log lines and trace event details.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::SlackBelowCheapest => "slack_below_cheapest",
            ShedReason::SlackExhausted => "slack_exhausted",
            ShedReason::OverQuota => "over_quota",
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The terminal record of a shed request.
#[derive(Debug, Clone)]
pub struct ShedRecord {
    /// Why the request was shed.
    pub reason: ShedReason,
    /// The tenant whose request was shed.
    pub tenant: TenantId,
    /// The admission ticket, for requests that were admitted and later
    /// shed in-queue ([`ShedReason::SlackExhausted`]). `None` for requests
    /// refused at submission, which never received a ticket.
    pub ticket: Option<RequestTicket>,
}

impl ShedRecord {
    /// A shed refused at submission (no ticket, default tenant).
    pub fn at_admission(reason: ShedReason, tenant: TenantId) -> Self {
        ShedRecord {
            reason,
            tenant,
            ticket: None,
        }
    }
}

/// Why a request ultimately failed (after exhausting any retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FailureReason {
    /// An injected worker crash killed the attempt.
    Crash,
    /// An output guard caught a corrupted (non-finite or absurd-magnitude)
    /// activation before it could reach the client.
    GuardTripped,
    /// A compiled-plan replay failure (and retries, if any, also failed).
    PlanReplay,
    /// The execution watchdog aborted an attempt that overran its
    /// slack-derived allowance.
    Watchdog,
    /// Any other engine error.
    Engine,
}

impl FailureReason {
    /// Stable lower-snake name, used in log lines and trace event details.
    pub fn name(self) -> &'static str {
        match self {
            FailureReason::Crash => "crash",
            FailureReason::GuardTripped => "guard_tripped",
            FailureReason::PlanReplay => "plan_replay",
            FailureReason::Watchdog => "watchdog",
            FailureReason::Engine => "engine",
        }
    }
}

impl fmt::Display for FailureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The terminal record of a request that dispatched but never produced a
/// result — every attempt the recovery policy allowed faulted.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Why the final attempt failed.
    pub reason: FailureReason,
    /// Re-attempts made after the first failed one.
    pub retries: u32,
    /// Faults observed across all attempts of this request.
    pub faults_seen: u32,
    /// The tenant that submitted the request.
    pub tenant: TenantId,
    /// The admission ticket, for correlating with the submission.
    pub ticket: Option<RequestTicket>,
}

/// What finally happened to one completed (executed) request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Submission → completion, in seconds (virtual or wall).
    pub latency: f64,
    /// Submission → dispatch, in seconds.
    pub queue_wait: f64,
    /// Whether the request finished at or before its deadline.
    pub met_deadline: bool,
    /// The LUT's normalized-mIoU estimate of the configuration that ran.
    pub accuracy: f64,
    /// The execution path that ran.
    pub config: LutConfig,
    /// Re-attempts it took to complete (0 = clean first attempt; > 0 means
    /// this is a *degraded* completion produced by fault recovery).
    pub retries: u32,
    /// Faults observed across all attempts of this request.
    pub faults_seen: u32,
    /// The tenant that submitted the request.
    pub tenant: TenantId,
    /// The admission ticket, for correlating with the submission.
    pub ticket: Option<RequestTicket>,
    /// How many requests shared the engine pass that served this one
    /// (1 = unbatched; > 1 = coalesced into a batch-N execution).
    pub batch_size: u32,
}

impl RequestRecord {
    /// Accuracy actually delivered to the client: the configuration's
    /// estimate when the deadline was met, zero for a late result (a
    /// missed deadline delivers no usable output in a real-time system).
    pub fn delivered_accuracy(&self) -> f64 {
        if self.met_deadline {
            self.accuracy
        } else {
            0.0
        }
    }
}

impl RequestRecord {
    /// Whether fault recovery degraded this request to a retry attempt.
    pub fn is_degraded(&self) -> bool {
        self.retries > 0
    }
}

/// The terminal state of one submitted request.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The request executed (possibly late).
    Completed(RequestRecord),
    /// The request was shed without executing.
    Shed(ShedRecord),
    /// The request dispatched but every allowed attempt faulted.
    Failed(FailureRecord),
}
