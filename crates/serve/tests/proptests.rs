//! Property tests for the serving scheduler: EDF ordering under arbitrary
//! interleavings, and admission control never letting through a request
//! whose slack cannot cover the cheapest LUT entry.

use proptest::collection::vec;
use proptest::prelude::*;
use vit_drt::{EngineCore, EngineFamily, Lut};
use vit_models::{SegFormerDynamic, SegFormerVariant};
use vit_resilience::{DynConfig, TradeoffPoint};
use vit_serve::{admissible, simulate, EdfQueue, PopResult, SchedulePolicy, SimArrival, SimConfig};

/// A synthetic core whose LUT costs 1/2/4 units.
fn tiny_core() -> EngineCore {
    let point = |r: f64, a: f64| TradeoffPoint {
        label: String::new(),
        config: DynConfig::SegFormer(SegFormerDynamic::with_depths_and_fuse(
            &SegFormerVariant::b0(),
            [1, 1, 1, 1],
            ((r * 64.0) as usize).max(4),
        )),
        resource: r,
        norm_resource: r / 4.0,
        norm_miou: a,
    };
    let lut = Lut::from_points(
        "proptest",
        &[point(1.0, 0.6), point(2.0, 0.85), point(4.0, 1.0)],
    );
    EngineCore::new(
        EngineFamily::SegFormer(SegFormerVariant::b0()),
        150,
        (64, 64),
        lut,
    )
    .unwrap()
}

proptest! {
    /// Whatever order deadlines are pushed in, pops come out in
    /// nondecreasing deadline order, and equal deadlines come out in
    /// arrival (FIFO) order.
    #[test]
    fn edf_pop_order_is_sorted_with_fifo_ties(deadlines in vec(0u64..16, 1..64)) {
        let q: EdfQueue<u64, usize> = EdfQueue::bounded(64);
        for (i, d) in deadlines.iter().enumerate() {
            q.try_push(*d, i).unwrap();
        }
        q.close();
        let mut popped = Vec::new();
        while let PopResult::Item(it) = q.pop() {
            popped.push(it);
        }
        prop_assert_eq!(popped.len(), deadlines.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "deadlines out of order: {:?}", w);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {:?}", w);
            }
        }
    }

    /// Admission is exactly the slack-vs-cheapest-cost threshold.
    #[test]
    fn admission_never_admits_slack_below_cheapest(
        slack in -100.0f64..100.0,
        cheapest in 0.0f64..50.0,
    ) {
        prop_assert_eq!(admissible(slack, cheapest), slack >= cheapest);
    }

    /// Under arbitrary arrival patterns, the simulator (a) accounts for
    /// every request, (b) sheds at admission *exactly* the arrivals whose
    /// slack is below the cheapest path, and (c) never runs a request
    /// whose budget could not cover the cheapest entry.
    #[test]
    fn simulator_conserves_requests_and_enforces_admission(
        raw in vec((0.0f64..50.0, 0.0f64..12.0), 1..80),
        workers in 1usize..5,
        queue_depth in 1usize..12,
    ) {
        let core = tiny_core();
        let arrivals: Vec<SimArrival> = raw
            .iter()
            .map(|(time, slack)| SimArrival { time: *time, slack: *slack })
            .collect();
        let metrics = simulate(
            &core,
            SimConfig {
                workers,
                queue_depth,
                policy: SchedulePolicy::DrtDynamic,
                secs_per_unit: 1.0,
            },
            &arrivals,
        );
        prop_assert_eq!(metrics.submitted, arrivals.len());
        prop_assert!(metrics.accounts_for_all_submissions());
        // With secs_per_unit = 1.0 a slack below the cheapest cost (1.0)
        // can never be admitted, and nothing else sheds for that reason.
        let impossible = arrivals
            .iter()
            .filter(|a| !admissible(a.slack, core.min_resource()))
            .count();
        prop_assert_eq!(metrics.shed_no_slack, impossible);
        // Every completed request ran a path at least as cheap as its
        // whole slack allowed: delivered accuracy only comes from real
        // LUT rows.
        for (config, _) in &metrics.config_histogram {
            prop_assert!(core.lut().entries().iter().any(|e| e.config == *config));
        }
    }
}
