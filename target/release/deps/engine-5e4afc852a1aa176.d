/root/repo/target/release/deps/engine-5e4afc852a1aa176.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-5e4afc852a1aa176: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
