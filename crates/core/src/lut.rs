//! The Pareto look-up table at the heart of the DRT engine (block 'A' of
//! Figure 8): Pareto-optimal execution paths keyed by resource budget.

use crate::json::{self, Json};
use serde::{Deserialize, Serialize};
use std::fmt;
use vit_models::{SegFormerDynamic, SwinDynamic};
use vit_resilience::{pareto_front, DynConfig, TradeoffPoint};

/// A serializable dynamic configuration (mirror of
/// [`vit_resilience::DynConfig`] with stable field names for the on-disk
/// LUT format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LutConfig {
    /// SegFormer execution path.
    SegFormer {
        /// Encoder depths.
        depths: [usize; 4],
        /// `Conv2DFuse` input channels.
        fuse_in_channels: usize,
        /// `Conv2DFuse` output channels.
        fuse_out_channels: usize,
        /// `DecodeLinear0` input channels.
        decode_linear0_in: usize,
    },
    /// Swin execution path.
    Swin {
        /// Encoder depths.
        depths: [usize; 4],
        /// `fpn_bottleneck_Conv2D` input channels.
        bottleneck_in_channels: usize,
    },
}

impl From<DynConfig> for LutConfig {
    fn from(c: DynConfig) -> Self {
        match c {
            DynConfig::SegFormer(d) => LutConfig::SegFormer {
                depths: d.depths,
                fuse_in_channels: d.fuse_in_channels,
                fuse_out_channels: d.fuse_out_channels,
                decode_linear0_in: d.decode_linear0_in,
            },
            DynConfig::Swin(d) => LutConfig::Swin {
                depths: d.depths,
                bottleneck_in_channels: d.bottleneck_in_channels,
            },
        }
    }
}

impl LutConfig {
    /// The SegFormer configuration, if this is one.
    pub fn as_segformer(&self) -> Option<SegFormerDynamic> {
        match self {
            LutConfig::SegFormer {
                depths,
                fuse_in_channels,
                fuse_out_channels,
                decode_linear0_in,
            } => Some(SegFormerDynamic {
                depths: *depths,
                fuse_in_channels: *fuse_in_channels,
                fuse_out_channels: *fuse_out_channels,
                decode_linear0_in: *decode_linear0_in,
            }),
            LutConfig::Swin { .. } => None,
        }
    }

    /// The Swin configuration, if this is one.
    pub fn as_swin(&self) -> Option<SwinDynamic> {
        match self {
            LutConfig::Swin {
                depths,
                bottleneck_in_channels,
            } => Some(SwinDynamic {
                depths: *depths,
                bottleneck_in_channels: *bottleneck_in_channels,
            }),
            LutConfig::SegFormer { .. } => None,
        }
    }
}

/// One LUT row: an execution path with its precomputed cost and accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LutEntry {
    /// The execution path.
    pub config: LutConfig,
    /// Absolute resource cost (seconds, joules, or cycles, per the LUT's
    /// resource kind).
    pub resource: f64,
    /// Resource normalized to the full model.
    pub norm_resource: f64,
    /// Normalized mIoU estimate.
    pub norm_miou: f64,
}

/// Error returned when no execution path fits a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetTooSmall {
    /// The requested budget.
    pub budget: f64,
    /// The cheapest available path's cost.
    pub cheapest: f64,
}

impl fmt::Display for BudgetTooSmall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget {} is below the cheapest execution path ({})",
            self.budget, self.cheapest
        )
    }
}

impl std::error::Error for BudgetTooSmall {}

/// Error returned when loading a LUT artifact fails — either the JSON is
/// malformed or the decoded table violates a LUT invariant. The engine
/// refuses to run on such a table: `lookup` assumes budget-sorted,
/// Pareto-consistent rows, and a violated invariant would silently return
/// sub-optimal configurations at serve time.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LutError {
    /// The input is not valid JSON.
    Parse(json::JsonParseError),
    /// The JSON is valid but does not have the LUT shape (missing or
    /// mistyped field, unknown config tag, wrong depths arity, ...).
    Schema(String),
    /// The table has no rows; a LUT must offer at least one execution path.
    Empty,
    /// A row's resource or accuracy is NaN or infinite.
    NonFinite {
        /// Index of the offending row.
        index: usize,
        /// Which field is non-finite.
        field: &'static str,
    },
    /// Rows are not strictly sorted by increasing resource (`lookup`'s
    /// early-exit scan requires it).
    NotBudgetSorted {
        /// Index of the row that is not more expensive than its predecessor.
        index: usize,
    },
    /// A more expensive row is not strictly more accurate than its
    /// predecessor, i.e. it is dominated and should have been pruned.
    NotParetoConsistent {
        /// Index of the dominated row.
        index: usize,
    },
}

impl fmt::Display for LutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutError::Parse(e) => write!(f, "malformed LUT JSON: {e}"),
            LutError::Schema(msg) => write!(f, "LUT JSON has wrong shape: {msg}"),
            LutError::Empty => write!(f, "LUT has no entries"),
            LutError::NonFinite { index, field } => {
                write!(f, "LUT entry {index} has a non-finite `{field}`")
            }
            LutError::NotBudgetSorted { index } => write!(
                f,
                "LUT entry {index} is not strictly more expensive than its predecessor"
            ),
            LutError::NotParetoConsistent { index } => write!(
                f,
                "LUT entry {index} is dominated: more expensive but not more accurate"
            ),
        }
    }
}

impl std::error::Error for LutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LutError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<json::JsonParseError> for LutError {
    fn from(e: json::JsonParseError) -> Self {
        LutError::Parse(e)
    }
}

/// The Pareto LUT: rows sorted by increasing resource, each strictly more
/// accurate than the previous (invariant established at construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut {
    /// Human-readable description (model + workload + resource kind).
    pub description: String,
    entries: Vec<LutEntry>,
}

impl Lut {
    /// Builds a LUT from sweep points: extracts the Pareto front and sorts
    /// it by resource.
    pub fn from_points(description: impl Into<String>, points: &[TradeoffPoint]) -> Self {
        let front = pareto_front(points);
        let entries = front
            .into_iter()
            .map(|p| LutEntry {
                config: p.config.into(),
                resource: p.resource,
                norm_resource: p.norm_resource,
                norm_miou: p.norm_miou,
            })
            .collect();
        Lut {
            description: description.into(),
            entries,
        }
    }

    /// Assembles a LUT from raw rows **without validating** the invariants
    /// [`Lut::lookup`] relies on — the escape hatch for verification
    /// tooling that must represent broken tables (both
    /// [`Lut::from_points`] and [`Lut::from_json`] refuse to). Run
    /// [`Lut::validate`] or the `vit-verify` LUT pass before serving from
    /// the result.
    pub fn from_entries_unchecked(description: impl Into<String>, entries: Vec<LutEntry>) -> Self {
        Lut {
            description: description.into(),
            entries,
        }
    }

    /// The LUT rows, cheapest first.
    pub fn entries(&self) -> &[LutEntry] {
        &self.entries
    }

    /// The accuracy-maximizing execution path that fits `budget`
    /// (the dynamic inference algorithm, block 'D' of Figure 8).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetTooSmall`] when even the cheapest path exceeds the
    /// budget (the caller may still choose to run it, accepting a deadline
    /// miss — the engine surfaces that decision).
    pub fn lookup(&self, budget: f64) -> Result<&LutEntry, BudgetTooSmall> {
        let mut best: Option<&LutEntry> = None;
        for e in &self.entries {
            if e.resource <= budget {
                best = Some(e);
            } else {
                break;
            }
        }
        best.ok_or_else(|| BudgetTooSmall {
            budget,
            cheapest: self.entries.first().map_or(f64::INFINITY, |e| e.resource),
        })
    }

    /// Serializes the LUT to JSON (the precomputed artifact the runtime
    /// engine loads). Uses the externally-tagged layout, e.g.
    /// `"config": {"SegFormer": {"depths": [...], ...}}`.
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let config = match e.config {
                    LutConfig::SegFormer {
                        depths,
                        fuse_in_channels,
                        fuse_out_channels,
                        decode_linear0_in,
                    } => Json::Obj(vec![(
                        "SegFormer".into(),
                        Json::Obj(vec![
                            ("depths".into(), depths_json(&depths)),
                            ("fuse_in_channels".into(), usize_json(fuse_in_channels)),
                            ("fuse_out_channels".into(), usize_json(fuse_out_channels)),
                            ("decode_linear0_in".into(), usize_json(decode_linear0_in)),
                        ]),
                    )]),
                    LutConfig::Swin {
                        depths,
                        bottleneck_in_channels,
                    } => Json::Obj(vec![(
                        "Swin".into(),
                        Json::Obj(vec![
                            ("depths".into(), depths_json(&depths)),
                            (
                                "bottleneck_in_channels".into(),
                                usize_json(bottleneck_in_channels),
                            ),
                        ]),
                    )]),
                };
                Json::Obj(vec![
                    ("config".into(), config),
                    ("resource".into(), Json::Num(e.resource)),
                    ("norm_resource".into(), Json::Num(e.norm_resource)),
                    ("norm_miou".into(), Json::Num(e.norm_miou)),
                ])
            })
            .collect();
        json::write_pretty(&Json::Obj(vec![
            ("description".into(), Json::Str(self.description.clone())),
            ("entries".into(), Json::Arr(entries)),
        ]))
    }

    /// Loads a LUT from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`LutError`] when the input is not valid JSON, does not
    /// have the LUT shape, or decodes to a table that violates a LUT
    /// invariant (empty, not budget-sorted, not Pareto-consistent, or
    /// containing non-finite numbers).
    pub fn from_json(s: &str) -> Result<Self, LutError> {
        let doc = json::parse(s)?;
        let description = field(&doc, "description")?
            .as_str()
            .ok_or_else(|| LutError::Schema("`description` must be a string".into()))?
            .to_string();
        let rows = field(&doc, "entries")?
            .as_arr()
            .ok_or_else(|| LutError::Schema("`entries` must be an array".into()))?;
        let entries = rows
            .iter()
            .enumerate()
            .map(|(i, row)| decode_entry(row).map_err(|e| prefix_entry(i, e)))
            .collect::<Result<Vec<_>, _>>()?;
        let lut = Lut {
            description,
            entries,
        };
        lut.validate()?;
        Ok(lut)
    }

    /// Checks the LUT invariants `lookup` relies on: at least one row,
    /// finite numbers, rows strictly sorted by increasing resource, and
    /// strictly increasing accuracy (no dominated rows).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`LutError`].
    pub fn validate(&self) -> Result<(), LutError> {
        if self.entries.is_empty() {
            return Err(LutError::Empty);
        }
        for (i, e) in self.entries.iter().enumerate() {
            for (field, v) in [
                ("resource", e.resource),
                ("norm_resource", e.norm_resource),
                ("norm_miou", e.norm_miou),
            ] {
                if !v.is_finite() {
                    return Err(LutError::NonFinite { index: i, field });
                }
            }
        }
        for (i, w) in self.entries.windows(2).enumerate() {
            if w[1].resource <= w[0].resource {
                return Err(LutError::NotBudgetSorted { index: i + 1 });
            }
            if w[1].norm_miou <= w[0].norm_miou {
                return Err(LutError::NotParetoConsistent { index: i + 1 });
            }
        }
        Ok(())
    }

    /// Number of Pareto rows retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the LUT has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reduces the LUT to at most `n` rows, keeping the endpoints and the
    /// most evenly spread interior rows (the granularity ablation).
    pub fn downsample(&self, n: usize) -> Lut {
        if n == 0 || self.entries.len() <= n {
            return self.clone();
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let idx = i * (self.entries.len() - 1) / (n - 1).max(1);
            entries.push(self.entries[idx].clone());
        }
        entries.dedup_by(|a, b| a.resource == b.resource);
        Lut {
            description: self.description.clone(),
            entries,
        }
    }
}

fn usize_json(v: usize) -> Json {
    Json::Int(v as i64)
}

fn depths_json(depths: &[usize; 4]) -> Json {
    Json::Arr(depths.iter().map(|&d| usize_json(d)).collect())
}

fn field<'a>(obj: &'a Json, name: &str) -> Result<&'a Json, LutError> {
    obj.get(name)
        .ok_or_else(|| LutError::Schema(format!("missing field `{name}`")))
}

fn prefix_entry(index: usize, e: LutError) -> LutError {
    match e {
        LutError::Schema(msg) => LutError::Schema(format!("entry {index}: {msg}")),
        other => other,
    }
}

fn decode_f64(obj: &Json, name: &str) -> Result<f64, LutError> {
    field(obj, name)?
        .as_f64()
        .ok_or_else(|| LutError::Schema(format!("`{name}` must be a number")))
}

fn decode_usize(obj: &Json, name: &str) -> Result<usize, LutError> {
    field(obj, name)?
        .as_usize()
        .ok_or_else(|| LutError::Schema(format!("`{name}` must be a non-negative integer")))
}

fn decode_depths(obj: &Json) -> Result<[usize; 4], LutError> {
    let arr = field(obj, "depths")?
        .as_arr()
        .ok_or_else(|| LutError::Schema("`depths` must be an array".into()))?;
    if arr.len() != 4 {
        return Err(LutError::Schema(format!(
            "`depths` must have 4 stages, got {}",
            arr.len()
        )));
    }
    let mut depths = [0usize; 4];
    for (i, v) in arr.iter().enumerate() {
        depths[i] = v
            .as_usize()
            .ok_or_else(|| LutError::Schema("`depths` elements must be non-negative".into()))?;
    }
    Ok(depths)
}

fn decode_config(config: &Json) -> Result<LutConfig, LutError> {
    match config {
        Json::Obj(fields) if fields.len() == 1 => {
            let (tag, body) = &fields[0];
            match tag.as_str() {
                "SegFormer" => Ok(LutConfig::SegFormer {
                    depths: decode_depths(body)?,
                    fuse_in_channels: decode_usize(body, "fuse_in_channels")?,
                    fuse_out_channels: decode_usize(body, "fuse_out_channels")?,
                    decode_linear0_in: decode_usize(body, "decode_linear0_in")?,
                }),
                "Swin" => Ok(LutConfig::Swin {
                    depths: decode_depths(body)?,
                    bottleneck_in_channels: decode_usize(body, "bottleneck_in_channels")?,
                }),
                other => Err(LutError::Schema(format!("unknown config tag `{other}`"))),
            }
        }
        _ => Err(LutError::Schema(
            "`config` must be an object with exactly one variant tag".into(),
        )),
    }
}

fn decode_entry(row: &Json) -> Result<LutEntry, LutError> {
    Ok(LutEntry {
        config: decode_config(field(row, "config")?)?,
        resource: decode_f64(row, "resource")?,
        norm_resource: decode_f64(row, "norm_resource")?,
        norm_miou: decode_f64(row, "norm_miou")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_models::SegFormerVariant;

    fn point(r: f64, a: f64) -> TradeoffPoint {
        TradeoffPoint {
            label: String::new(),
            config: DynConfig::SegFormer(SegFormerDynamic::with_depths_and_fuse(
                &SegFormerVariant::b2(),
                [2, 3, 5, 3],
                ((r * 3072.0) as usize / 4).max(1) * 4,
            )),
            resource: r,
            norm_resource: r,
            norm_miou: a,
        }
    }

    fn lut() -> Lut {
        Lut::from_points(
            "test",
            &[
                point(1.0, 1.0),
                point(0.8, 0.95),
                point(0.9, 0.5), // dominated
                point(0.6, 0.8),
                point(0.4, 0.6),
            ],
        )
    }

    #[test]
    fn lut_keeps_only_pareto_rows_sorted() {
        let l = lut();
        assert_eq!(l.len(), 4);
        for w in l.entries().windows(2) {
            assert!(w[0].resource < w[1].resource);
            assert!(w[0].norm_miou < w[1].norm_miou);
        }
    }

    #[test]
    fn lookup_maximizes_accuracy_within_budget() {
        let l = lut();
        assert_eq!(l.lookup(1.5).unwrap().norm_miou, 1.0);
        assert_eq!(l.lookup(0.85).unwrap().norm_miou, 0.95);
        assert_eq!(l.lookup(0.65).unwrap().norm_miou, 0.8);
        assert_eq!(l.lookup(0.4).unwrap().norm_miou, 0.6);
    }

    #[test]
    fn lookup_rejects_impossible_budget() {
        let l = lut();
        let err = l.lookup(0.1).unwrap_err();
        assert_eq!(err.cheapest, 0.4);
        assert!(err.to_string().contains("0.1"));
    }

    #[test]
    fn json_round_trip() {
        let l = lut();
        let s = l.to_json();
        let back = Lut::from_json(&s).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn from_json_rejects_malformed_syntax() {
        for doc in [
            "",
            "{",
            "not json",
            "{\"description\": \"x\", \"entries\": [}",
        ] {
            assert!(
                matches!(Lut::from_json(doc), Err(LutError::Parse(_))),
                "{doc:?} should be a parse error"
            );
        }
    }

    #[test]
    fn from_json_rejects_wrong_shape() {
        let cases = [
            r#"{"entries": []}"#,                                      // missing description
            r#"{"description": "x"}"#,                                 // missing entries
            r#"{"description": 3, "entries": []}"#,                    // mistyped description
            r#"{"description": "x", "entries": 3}"#,                   // mistyped entries
            r#"{"description": "x", "entries": [{"resource": 1.0}]}"#, // missing config
        ];
        for doc in cases {
            assert!(
                matches!(Lut::from_json(doc), Err(LutError::Schema(_))),
                "{doc} should be a schema error"
            );
        }
        // Unknown variant tag and bad depths arity are schema errors too.
        let bad_tag = lut().to_json().replace("SegFormer", "ResNet");
        assert!(
            matches!(Lut::from_json(&bad_tag), Err(LutError::Schema(m)) if m.contains("ResNet"))
        );
    }

    #[test]
    fn from_json_rejects_invariant_violations() {
        let entry = |r: f64, a: f64| {
            format!(
                r#"{{"config": {{"Swin": {{"depths": [2, 2, 6, 2], "bottleneck_in_channels": 512}}}},
                     "resource": {r}, "norm_resource": {r}, "norm_miou": {a}}}"#
            )
        };
        let doc = |entries: &[String]| {
            format!(
                r#"{{"description": "t", "entries": [{}]}}"#,
                entries.join(",")
            )
        };

        assert_eq!(Lut::from_json(&doc(&[])), Err(LutError::Empty));
        assert_eq!(
            Lut::from_json(&doc(&[entry(0.8, 0.9), entry(0.5, 0.95)])),
            Err(LutError::NotBudgetSorted { index: 1 })
        );
        assert_eq!(
            Lut::from_json(&doc(&[entry(0.5, 0.9), entry(0.8, 0.9)])),
            Err(LutError::NotParetoConsistent { index: 1 })
        );
    }

    #[test]
    fn validate_rejects_non_finite_rows() {
        let mut l = lut();
        l.entries[1].norm_miou = f64::NAN;
        assert_eq!(
            l.validate(),
            Err(LutError::NonFinite {
                index: 1,
                field: "norm_miou"
            })
        );
    }

    #[test]
    fn from_points_always_validates() {
        assert!(lut().validate().is_ok());
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let l = lut();
        let d = l.downsample(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries()[0].resource, l.entries()[0].resource);
        assert_eq!(d.entries()[1].resource, l.entries()[l.len() - 1].resource);
        // Downsampling more rows than exist is identity.
        assert_eq!(l.downsample(100), l);
    }

    #[test]
    fn config_round_trips_through_lutconfig() {
        let d = SegFormerDynamic::with_depths_and_fuse(&SegFormerVariant::b2(), [2, 3, 5, 3], 1024);
        let lc: LutConfig = DynConfig::SegFormer(d).into();
        assert_eq!(lc.as_segformer().unwrap(), d);
        assert!(lc.as_swin().is_none());
    }
}
