//! Differential tests: the parallel wavefront executor must be
//! *bit-identical* to the sequential interpreter on randomized graphs at
//! every thread count. Equality is exact (`Tensor: PartialEq` compares raw
//! f32 bits via `==`), not approximate — the determinism contract is that
//! every output element is produced by the exact same floating-point
//! operation sequence regardless of how work is scheduled.

use proptest::prelude::*;
use vit_graph::{ExecOptions, Executor, Graph, LayerRole, Op};
use vit_tensor::Tensor;

const THREADS: [usize; 3] = [1, 2, 8];

/// Runs the graph sequentially and at each thread count, asserting exact
/// output equality against the sequential reference.
fn assert_bit_identical(g: &Graph, input: Tensor, seed: u64) {
    let mut exec = Executor::new(seed);
    let inputs = std::slice::from_ref(&input);
    let seq = exec
        .run_opts(g, inputs, &ExecOptions::sequential())
        .unwrap();
    for threads in THREADS {
        let par = exec
            .run_opts(g, inputs, &ExecOptions::threaded(threads))
            .unwrap();
        assert_eq!(
            par, seq,
            "graph `{}` diverged from sequential at {} threads",
            g.model, threads
        );
    }
}

/// A convolutional stack with residual adds and mixed activations: keeps
/// spatial dims via same-padding so every layer can take a residual.
fn conv_residual_graph(
    cin: usize,
    cout: usize,
    k: usize,
    depth: usize,
    hw: usize,
) -> (Graph, Vec<usize>) {
    let mut g = Graph::new("conv-residual");
    let shape = vec![1, cin, hw, hw];
    let x = g.input("in", &shape).unwrap();
    let mut prev = g
        .add(
            "stem",
            Op::Conv2d {
                out_channels: cout,
                kernel: (k, k),
                stride: (1, 1),
                pad: (k / 2, k / 2),
                groups: 1,
                bias: true,
            },
            LayerRole::Backbone,
            &[x],
        )
        .unwrap();
    for i in 0..depth {
        let c = g
            .add(
                &format!("conv{i}"),
                Op::Conv2d {
                    out_channels: cout,
                    kernel: (k, k),
                    stride: (1, 1),
                    pad: (k / 2, k / 2),
                    groups: 1,
                    bias: i % 2 == 0,
                },
                LayerRole::Backbone,
                &[prev],
            )
            .unwrap();
        let act = g
            .add(
                &format!("act{i}"),
                if i % 2 == 0 { Op::Relu } else { Op::Gelu },
                LayerRole::Backbone,
                &[c],
            )
            .unwrap();
        // Residual add creates a diamond: `prev` is consumed twice, which
        // exercises the wavefront executor's per-edge reference counting.
        prev = g
            .add(
                &format!("res{i}"),
                Op::Add,
                LayerRole::Backbone,
                &[prev, act],
            )
            .unwrap();
    }
    g.set_output(prev);
    (g, shape)
}

/// A transformer-ish tail: flatten -> linear -> layernorm -> self-attention
/// -> linear head. Exercises the tiled matmul/linear/bmm kernels.
fn attention_graph(cin: usize, hw: usize, heads: usize, head_dim: usize) -> (Graph, Vec<usize>) {
    let dim = heads * head_dim;
    let mut g = Graph::new("attention");
    let shape = vec![1, cin, hw, hw];
    let x = g.input("in", &shape).unwrap();
    let f = g
        .add("flat", Op::FlattenHw, LayerRole::Backbone, &[x])
        .unwrap();
    let e = g
        .add(
            "embed",
            Op::Linear {
                out_features: dim,
                bias: true,
            },
            LayerRole::Backbone,
            &[f],
        )
        .unwrap();
    let n = g
        .add("ln", Op::LayerNorm, LayerRole::Backbone, &[e])
        .unwrap();
    // Self-attention: the same node feeds q, k and v (three edges from one
    // producer), another reference-counting stress.
    let a = g
        .add("sdpa", Op::Sdpa { heads }, LayerRole::Backbone, &[n, n, n])
        .unwrap();
    let r = g.add("res", Op::Add, LayerRole::Backbone, &[e, a]).unwrap();
    let h = g
        .add(
            "head",
            Op::Linear {
                out_features: 4,
                bias: true,
            },
            LayerRole::Head,
            &[r],
        )
        .unwrap();
    g.set_output(h);
    (g, shape)
}

/// Two pruned branches concatenated: depthwise + pointwise convs, pooling,
/// and `SliceChannels` — the dynamic-pruning ops from the paper.
fn branchy_graph(cin: usize, hw: usize, keep: usize) -> (Graph, Vec<usize>) {
    let mut g = Graph::new("branchy");
    let shape = vec![1, cin, hw, hw];
    let x = g.input("in", &shape).unwrap();
    let dw = g
        .add(
            "dw",
            Op::Conv2d {
                out_channels: cin,
                kernel: (3, 3),
                stride: (1, 1),
                pad: (1, 1),
                groups: cin,
                bias: true,
            },
            LayerRole::Backbone,
            &[x],
        )
        .unwrap();
    let sliced = g
        .add(
            "slice",
            Op::SliceChannels { keep },
            LayerRole::Backbone,
            &[dw],
        )
        .unwrap();
    let pooled = g
        .add(
            "pool",
            Op::MaxPool {
                window: 2,
                stride: 2,
                pad: 0,
            },
            LayerRole::Backbone,
            &[x],
        )
        .unwrap();
    let up = g
        .add(
            "up",
            Op::Resize {
                out_h: hw,
                out_w: hw,
            },
            LayerRole::Backbone,
            &[pooled],
        )
        .unwrap();
    let cat = g
        .add("cat", Op::Concat, LayerRole::Head, &[sliced, up])
        .unwrap();
    let head = g
        .add(
            "head",
            Op::Conv2d {
                out_channels: 3,
                kernel: (1, 1),
                stride: (1, 1),
                pad: (0, 0),
                groups: 1,
                bias: true,
            },
            LayerRole::Head,
            &[cat],
        )
        .unwrap();
    g.set_output(head);
    (g, shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_residual_parallel_is_bit_identical(
        (cin, cout, k, depth, hw) in (1usize..4, 1usize..6, 0usize..3, 1usize..4, 3usize..9),
        seed in any::<u64>(),
    ) {
        let k = 2 * k + 1; // odd kernels so same-padding preserves dims
        let (g, shape) = conv_residual_graph(cin, cout, k, depth, hw);
        assert_bit_identical(&g, Tensor::rand_uniform(&shape, -1.0, 1.0, seed), seed);
    }

    #[test]
    fn attention_parallel_is_bit_identical(
        (cin, hw, heads, head_dim) in (1usize..4, 2usize..6, 1usize..4, 1usize..5),
        seed in any::<u64>(),
    ) {
        let (g, shape) = attention_graph(cin, hw, heads, head_dim);
        assert_bit_identical(&g, Tensor::rand_uniform(&shape, -1.0, 1.0, seed), seed);
    }

    #[test]
    fn branchy_parallel_is_bit_identical(
        (cin, hw) in (2usize..6).prop_flat_map(|c| (Just(c), 2usize..5)),
        keep_frac in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let hw = hw * 2; // MaxPool(2) needs even dims
        let keep = (cin * keep_frac / 2).max(1);
        let (g, shape) = branchy_graph(cin, hw, keep);
        assert_bit_identical(&g, Tensor::rand_uniform(&shape, -1.0, 1.0, seed), seed);
    }
}

/// Weight caching across runs must not perturb determinism: re-running the
/// same graph through the same scratch at a different thread count reuses
/// cached weights, and a fresh executor regenerates them — both paths must
/// produce the same bits.
#[test]
fn weight_cache_reuse_matches_fresh_executor() {
    let (g, shape) = attention_graph(3, 4, 2, 3);
    let input = Tensor::rand_uniform(&shape, -1.0, 1.0, 11);
    let mut warm = Executor::new(7);
    let seq = warm
        .run_opts(&g, std::slice::from_ref(&input), &ExecOptions::sequential())
        .unwrap();
    let warm_par = warm
        .run_opts(&g, std::slice::from_ref(&input), &ExecOptions::threaded(4))
        .unwrap();
    let cold_par = Executor::new(7)
        .run_opts(&g, std::slice::from_ref(&input), &ExecOptions::threaded(4))
        .unwrap();
    assert_eq!(seq, warm_par);
    assert_eq!(seq, cold_par);
}
