//! ResNet-50 and the Once-For-All (OFA) subnet space.
//!
//! ResNet-50 is the computationally dominant backbone of DETR and
//! Deformable DETR (paper §II-A); the OFA parameterizations of it (varying
//! stage depths, width multiplier, and bottleneck expand ratio) are the
//! paper's dynamic case study for object detection (§VI-C, Figure 16).

use crate::error::{ModelError, Result};
use vit_graph::{Graph, LayerRole, NodeId, Op};

/// Configuration of a (possibly OFA-reduced) ResNet-50.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResNetConfig {
    /// Bottleneck blocks per stage (full ResNet-50: `[3, 4, 6, 3]`).
    pub depths: [usize; 4],
    /// Width multiplier on all channel counts (OFA: 0.65 / 0.8 / 1.0).
    pub width_mult: f64,
    /// Bottleneck expand ratio: mid channels = `expand * out_channels`
    /// (base ResNet-50: 0.25; OFA: 0.2 / 0.25 / 0.35).
    pub expand_ratio: f64,
    /// Input image `(height, width)`.
    pub image: (usize, usize),
    /// Batch size.
    pub batch: usize,
    /// Classification classes; `None` omits the classification head
    /// (backbone mode, as used inside DETR).
    pub num_classes: Option<usize>,
}

impl ResNetConfig {
    /// Full ResNet-50 as an ImageNet classifier at 224x224.
    pub fn imagenet() -> Self {
        ResNetConfig {
            depths: [3, 4, 6, 3],
            width_mult: 1.0,
            expand_ratio: 0.25,
            image: (224, 224),
            batch: 1,
            num_classes: Some(1000),
        }
    }

    /// Full ResNet-50 as a detection backbone at the COCO size the paper
    /// uses (640x480).
    pub fn coco_backbone() -> Self {
        ResNetConfig {
            image: (480, 640),
            num_classes: None,
            ..Self::imagenet()
        }
    }

    /// Same configuration at a different image size.
    pub fn with_image(mut self, h: usize, w: usize) -> Self {
        self.image = (h, w);
        self
    }

    /// Same configuration with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    fn validate(&self) -> Result<()> {
        for (i, &d) in self.depths.iter().enumerate() {
            if d == 0 || d > 8 {
                return Err(ModelError::BadConfig(format!(
                    "stage {i} depth {d} out of range 1..=8"
                )));
            }
        }
        if !(0.25..=1.0).contains(&self.width_mult) {
            return Err(ModelError::BadConfig(format!(
                "width_mult {} out of range 0.25..=1.0",
                self.width_mult
            )));
        }
        if !(0.1..=0.5).contains(&self.expand_ratio) {
            return Err(ModelError::BadConfig(format!(
                "expand_ratio {} out of range 0.1..=0.5",
                self.expand_ratio
            )));
        }
        let (h, w) = self.image;
        if h % 32 != 0 || w % 32 != 0 || h == 0 || w == 0 {
            return Err(ModelError::BadConfig(format!(
                "image {h}x{w} must be a positive multiple of 32"
            )));
        }
        if self.batch == 0 {
            return Err(ModelError::BadConfig("batch must be nonzero".to_string()));
        }
        Ok(())
    }
}

fn scaled(base: usize, mult: f64) -> usize {
    // Round to a multiple of 8, the usual OFA channel granularity.
    let v = (base as f64 * mult / 8.0).round() as usize * 8;
    v.max(8)
}

/// Output of [`build_resnet`]: the graph plus the ids of the four stage
/// outputs (`C2..C5`), which detection models consume.
#[derive(Debug)]
pub struct ResNetGraph {
    /// The built graph. Its output is the classifier logits when a head was
    /// requested, otherwise the final stage output.
    pub graph: Graph,
    /// Stage outputs C2 (stride 4) through C5 (stride 32).
    pub stage_outputs: [NodeId; 4],
}

/// Builds a (possibly OFA-reduced) ResNet-50 graph.
///
/// # Errors
///
/// Returns [`ModelError`] for out-of-range configurations.
pub fn build_resnet(cfg: &ResNetConfig) -> Result<ResNetGraph> {
    cfg.validate()?;
    let mut g = Graph::new(if cfg.num_classes.is_some() {
        "resnet50"
    } else {
        "resnet50-backbone"
    });
    let (ih, iw) = cfg.image;
    let image = g.input("image", &[cfg.batch, 3, ih, iw])?;
    let role = LayerRole::Backbone;

    let stem_ch = scaled(64, cfg.width_mult);
    let conv = g.add(
        "stem.conv",
        Op::Conv2d {
            out_channels: stem_ch,
            kernel: (7, 7),
            stride: (2, 2),
            pad: (3, 3),
            groups: 1,
            bias: false,
        },
        role,
        &[image],
    )?;
    let bn = g.add("stem.bn", Op::BatchNorm, role, &[conv])?;
    let relu = g.add("stem.relu", Op::Relu, role, &[bn])?;
    let mut x = g.add(
        "stem.maxpool",
        Op::MaxPool {
            window: 3,
            stride: 2,
            pad: 1,
        },
        role,
        &[relu],
    )?;

    let base_out = [256usize, 512, 1024, 2048];
    let mut stage_outputs = Vec::with_capacity(4);
    for (stage, &blocks) in cfg.depths.iter().enumerate() {
        let out_ch = scaled(base_out[stage], cfg.width_mult);
        let mid_ch = scaled(
            (base_out[stage] as f64 * cfg.expand_ratio) as usize,
            cfg.width_mult,
        );
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            x = add_bottleneck(&mut g, x, stage, block, mid_ch, out_ch, stride)?;
        }
        stage_outputs.push(x);
    }

    let output = if let Some(classes) = cfg.num_classes {
        let pool = g.add("head.avgpool", Op::GlobalAvgPool, LayerRole::Head, &[x])?;
        g.add(
            "head.fc",
            Op::Linear {
                out_features: classes,
                bias: true,
            },
            LayerRole::Head,
            &[pool],
        )?
    } else {
        x
    };
    g.set_output(output);
    Ok(ResNetGraph {
        graph: g,
        stage_outputs: [
            stage_outputs[0],
            stage_outputs[1],
            stage_outputs[2],
            stage_outputs[3],
        ],
    })
}

/// Appends one bottleneck residual block (1x1 down, 3x3, 1x1 up).
fn add_bottleneck(
    g: &mut Graph,
    input: NodeId,
    stage: usize,
    block: usize,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
) -> Result<NodeId> {
    let p = format!("stage{stage}.block{block}");
    let role = LayerRole::Backbone;
    let conv = |out: usize, k: usize, s: usize, pad: usize| Op::Conv2d {
        out_channels: out,
        kernel: (k, k),
        stride: (s, s),
        pad: (pad, pad),
        groups: 1,
        bias: false,
    };
    let c1 = g.add(&format!("{p}.conv1"), conv(mid_ch, 1, 1, 0), role, &[input])?;
    let b1 = g.add(&format!("{p}.bn1"), Op::BatchNorm, role, &[c1])?;
    let r1 = g.add(&format!("{p}.relu1"), Op::Relu, role, &[b1])?;
    let c2 = g.add(
        &format!("{p}.conv2"),
        conv(mid_ch, 3, stride, 1),
        role,
        &[r1],
    )?;
    let b2 = g.add(&format!("{p}.bn2"), Op::BatchNorm, role, &[c2])?;
    let r2 = g.add(&format!("{p}.relu2"), Op::Relu, role, &[b2])?;
    let c3 = g.add(&format!("{p}.conv3"), conv(out_ch, 1, 1, 0), role, &[r2])?;
    let b3 = g.add(&format!("{p}.bn3"), Op::BatchNorm, role, &[c3])?;

    // Projection shortcut when shape changes, identity otherwise.
    let in_ch = g.node(input).shape[1];
    let shortcut = if in_ch != out_ch || stride != 1 {
        let sc = g.add(
            &format!("{p}.downsample.conv"),
            conv(out_ch, 1, stride, 0),
            role,
            &[input],
        )?;
        g.add(&format!("{p}.downsample.bn"), Op::BatchNorm, role, &[sc])?
    } else {
        input
    };
    let add = g.add(&format!("{p}.add"), Op::Add, role, &[b3, shortcut])?;
    Ok(g.add(&format!("{p}.relu_out"), Op::Relu, role, &[add])?)
}

/// One member of the OFA ResNet-50 trade-off family: a subnet configuration
/// together with its (anchored) ImageNet top-1 accuracy.
///
/// The accuracy anchors follow the published OFA-ResNet50 trade-off curve
/// shape (76-79% top-1 between roughly 1 and 4 GFLOPs at 224x224); exact
/// per-subnet values are synthetic anchors, documented in `DESIGN.md`, since
/// the original numbers live in model checkpoints we do not have.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfaSubnet {
    /// Short label, e.g. `"ofa-d3-w1.0-e0.35"`.
    pub label: &'static str,
    /// Stage depths.
    pub depths: [usize; 4],
    /// Width multiplier.
    pub width_mult: f64,
    /// Bottleneck expand ratio.
    pub expand_ratio: f64,
    /// Anchored ImageNet top-1 accuracy of the retrained subnet.
    pub top1: f64,
}

impl OfaSubnet {
    /// Builds this subnet as a backbone at the given image size.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid image sizes.
    pub fn build_backbone(&self, image: (usize, usize), batch: usize) -> Result<ResNetGraph> {
        build_resnet(&ResNetConfig {
            depths: self.depths,
            width_mult: self.width_mult,
            expand_ratio: self.expand_ratio,
            image,
            batch,
            num_classes: None,
        })
    }

    /// Builds this subnet as a classifier at the given image size.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for invalid image sizes.
    pub fn build_classifier(&self, image: (usize, usize), batch: usize) -> Result<ResNetGraph> {
        build_resnet(&ResNetConfig {
            depths: self.depths,
            width_mult: self.width_mult,
            expand_ratio: self.expand_ratio,
            image,
            batch,
            num_classes: Some(1000),
        })
    }
}

/// The OFA ResNet-50 trade-off family used for Figure 16: eight subnets
/// spanning the published accuracy/FLOPs curve, ordered from largest to
/// smallest.
pub fn ofa_family() -> Vec<OfaSubnet> {
    vec![
        OfaSubnet {
            label: "ofa-full",
            depths: [3, 4, 6, 3],
            width_mult: 1.0,
            expand_ratio: 0.35,
            top1: 79.3,
        },
        OfaSubnet {
            label: "ofa-d2343-w1.0-e0.35",
            depths: [2, 3, 4, 3],
            width_mult: 1.0,
            expand_ratio: 0.35,
            top1: 79.0,
        },
        OfaSubnet {
            label: "ofa-d2343-w1.0-e0.25",
            depths: [2, 3, 4, 3],
            width_mult: 1.0,
            expand_ratio: 0.25,
            top1: 78.6,
        },
        OfaSubnet {
            label: "ofa-d2242-w0.8-e0.35",
            depths: [2, 2, 4, 2],
            width_mult: 0.8,
            expand_ratio: 0.35,
            top1: 78.1,
        },
        OfaSubnet {
            label: "ofa-d2242-w0.8-e0.25",
            depths: [2, 2, 4, 2],
            width_mult: 0.8,
            expand_ratio: 0.25,
            top1: 77.4,
        },
        OfaSubnet {
            label: "ofa-d2232-w0.65-e0.35",
            depths: [2, 2, 3, 2],
            width_mult: 0.65,
            expand_ratio: 0.35,
            top1: 76.6,
        },
        OfaSubnet {
            label: "ofa-d2232-w0.65-e0.25",
            depths: [2, 2, 3, 2],
            width_mult: 0.65,
            expand_ratio: 0.25,
            top1: 75.9,
        },
        OfaSubnet {
            label: "ofa-d2222-w0.65-e0.2",
            depths: [2, 2, 2, 2],
            width_mult: 0.65,
            expand_ratio: 0.2,
            top1: 75.1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_imagenet_flops_and_params() {
        let r = build_resnet(&ResNetConfig::imagenet()).unwrap();
        let gflops = r.graph.total_flops() as f64 / 1e9;
        let m = r.graph.total_params() as f64 / 1e6;
        // Reference: ResNet-50 is 4.1 GMACs / 25.6 M params at 224x224.
        assert!((gflops - 4.1).abs() / 4.1 < 0.08, "got {gflops:.2} GMACs");
        assert!((m - 25.6).abs() / 25.6 < 0.08, "got {m:.1} M params");
    }

    #[test]
    fn backbone_output_is_c5() {
        let r = build_resnet(&ResNetConfig::coco_backbone()).unwrap();
        let out = r.graph.node(r.graph.output().unwrap());
        assert_eq!(out.shape, vec![1, 2048, 15, 20]);
    }

    #[test]
    fn stage_outputs_have_expected_strides() {
        let r = build_resnet(&ResNetConfig::imagenet()).unwrap();
        let shapes: Vec<_> = r
            .stage_outputs
            .iter()
            .map(|&id| r.graph.node(id).shape.clone())
            .collect();
        assert_eq!(shapes[0], vec![1, 256, 56, 56]);
        assert_eq!(shapes[1], vec![1, 512, 28, 28]);
        assert_eq!(shapes[2], vec![1, 1024, 14, 14]);
        assert_eq!(shapes[3], vec![1, 2048, 7, 7]);
    }

    #[test]
    fn width_mult_shrinks_flops_quadratically() {
        let full = build_resnet(&ResNetConfig::imagenet()).unwrap();
        let slim = build_resnet(&ResNetConfig {
            width_mult: 0.65,
            ..ResNetConfig::imagenet()
        })
        .unwrap();
        let ratio = slim.graph.total_flops() as f64 / full.graph.total_flops() as f64;
        // Channel cuts on both sides of each conv: ~0.65^2 = 0.42 (stem and
        // head scale linearly, so allow slack).
        assert!(ratio > 0.35 && ratio < 0.55, "ratio {ratio:.2}");
    }

    #[test]
    fn expand_ratio_changes_mid_channels_only() {
        let base = build_resnet(&ResNetConfig::imagenet()).unwrap();
        let fat = build_resnet(&ResNetConfig {
            expand_ratio: 0.35,
            ..ResNetConfig::imagenet()
        })
        .unwrap();
        assert!(fat.graph.total_flops() > base.graph.total_flops());
        // Stage output shapes identical (out channels unchanged).
        for (a, b) in base.stage_outputs.iter().zip(fat.stage_outputs.iter()) {
            assert_eq!(base.graph.node(*a).shape, fat.graph.node(*b).shape);
        }
    }

    #[test]
    fn ofa_family_is_monotone_in_flops_and_accuracy() {
        let fam = ofa_family();
        let flops: Vec<u64> = fam
            .iter()
            .map(|s| s.build_backbone((224, 224), 1).unwrap().graph.total_flops())
            .collect();
        for i in 1..fam.len() {
            assert!(flops[i] < flops[i - 1], "flops not decreasing at {i}");
            assert!(fam[i].top1 < fam[i - 1].top1, "top1 not decreasing at {i}");
        }
        // The family spans a meaningful range (paper: 57% time saving on the
        // accelerator across the family).
        let span = flops[flops.len() - 1] as f64 / flops[0] as f64;
        assert!(span < 0.5, "smallest subnet is {span:.2} of the largest");
    }

    #[test]
    fn executes_at_small_size() {
        use vit_graph::Executor;
        use vit_tensor::Tensor;
        let r = build_resnet(&ResNetConfig::imagenet().with_image(64, 64)).unwrap();
        let out = Executor::new(0)
            .run(
                &r.graph,
                &[Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 3)],
            )
            .unwrap();
        assert_eq!(out.shape(), &[1, 1000]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(build_resnet(&ResNetConfig {
            depths: [0, 4, 6, 3],
            ..ResNetConfig::imagenet()
        })
        .is_err());
        assert!(build_resnet(&ResNetConfig {
            width_mult: 0.1,
            ..ResNetConfig::imagenet()
        })
        .is_err());
        assert!(build_resnet(&ResNetConfig::imagenet().with_image(100, 100)).is_err());
    }
}
