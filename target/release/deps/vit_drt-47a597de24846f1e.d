/root/repo/target/release/deps/vit_drt-47a597de24846f1e.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs Cargo.toml

/root/repo/target/release/deps/libvit_drt-47a597de24846f1e.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/budget.rs:
crates/core/src/engine.rs:
crates/core/src/json.rs:
crates/core/src/lut.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
