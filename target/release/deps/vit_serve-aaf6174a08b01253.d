/root/repo/target/release/deps/vit_serve-aaf6174a08b01253.d: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs Cargo.toml

/root/repo/target/release/deps/libvit_serve-aaf6174a08b01253.rmeta: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/metrics.rs:
crates/serve/src/policy.rs:
crates/serve/src/queue.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
