//! The dynamic real-time inference engine (Figure 8).
//!
//! Per inference the engine receives an image and a resource-utilization
//! target, looks up the accuracy-maximizing execution path that fits the
//! target in its precomputed Pareto LUT, runs that path, and returns the
//! output together with the accuracy estimate from the LUT — no additional
//! training, one set of shared model weights.

use crate::lut::{Lut, LutConfig, LutEntry};
use std::collections::HashMap;
use std::fmt;
use vit_graph::{ExecError, Executor, Graph};
use vit_models::{
    build_segformer, build_swin_upernet, ModelError, SegFormerConfig, SegFormerVariant,
    SwinConfig, SwinVariant,
};
use vit_accel::AccelConfig;
use vit_resilience::{
    segformer_sweep_space, sweep_segformer, sweep_segformer_on_accelerator, sweep_swin,
    AccelResource, ResourceKind, Workload,
};
use vit_tensor::Tensor;

/// The model family an engine serves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineFamily {
    /// SegFormer (the paper's primary case study).
    SegFormer(SegFormerVariant),
    /// Swin + UPerNet.
    Swin(SwinVariant),
}

/// Error from engine construction or inference.
#[derive(Debug)]
pub enum EngineError {
    /// A graph failed to build for a selected configuration.
    Model(ModelError),
    /// Graph execution failed.
    Exec(ExecError),
    /// The engine's LUT is empty.
    EmptyLut,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Model(e) => write!(f, "engine model error: {e}"),
            EngineError::Exec(e) => write!(f, "engine execution error: {e}"),
            EngineError::EmptyLut => write!(f, "engine LUT has no execution paths"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ModelError> for EngineError {
    fn from(e: ModelError) -> Self {
        EngineError::Model(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

/// The result of one dynamic inference.
#[derive(Debug)]
pub struct Inference {
    /// Class-logit map `[batch, classes, h, w]`.
    pub logits: Tensor,
    /// Per-pixel label map `[batch, h, w]`.
    pub label_map: Tensor,
    /// The execution path that ran.
    pub config: LutConfig,
    /// The LUT's normalized-mIoU estimate for that path.
    pub norm_miou_estimate: f64,
    /// The LUT's resource estimate for that path.
    pub resource_estimate: f64,
    /// Whether the path fit the requested budget (false when the budget was
    /// below even the cheapest path, which the engine then runs anyway and
    /// reports the overrun).
    pub met_budget: bool,
}

/// The DRT inference engine.
///
/// # Examples
///
/// ```no_run
/// use vit_drt::DrtEngine;
/// use vit_models::SegFormerVariant;
/// use vit_resilience::{ResourceKind, Workload};
/// use vit_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut engine = DrtEngine::segformer(
///     SegFormerVariant::b0(),
///     Workload::SegFormerAde,
///     (64, 64),
///     ResourceKind::GpuTime,
/// )?;
/// let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
/// let relaxed = engine.max_resource();
/// let out = engine.infer(&image, 0.7 * relaxed)?;
/// println!("ran {:?}, estimated mIoU {:.2}", out.config, out.norm_miou_estimate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DrtEngine {
    family: EngineFamily,
    num_classes: usize,
    image: (usize, usize),
    lut: Lut,
    executor: Executor,
    graph_cache: HashMap<LutConfig, Graph>,
}

impl DrtEngine {
    /// Builds a SegFormer engine: sweeps the configuration space at the
    /// engine's image size, extracts the Pareto front, and stores the LUT.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the sweep produces no buildable paths.
    pub fn segformer(
        variant: SegFormerVariant,
        workload: Workload,
        image: (usize, usize),
        resource: ResourceKind,
    ) -> Result<Self, EngineError> {
        let num_classes = match workload {
            Workload::SegFormerCityscapes => 19,
            _ => 150,
        };
        let space = segformer_sweep_space(&variant, 2, 8);
        let points = sweep_segformer(&variant, workload, image, num_classes, &space, resource);
        let lut = Lut::from_points(
            format!("{} {workload:?} {resource:?}", variant.name),
            &points,
        );
        Self::with_lut(EngineFamily::SegFormer(variant), num_classes, image, lut)
    }

    /// Builds a SegFormer engine whose resource is *accelerator cycles or
    /// energy* on the given hardware configuration — the §VI deployment
    /// where the DRT LUT is keyed by cycles on `accelerator*`
    /// (Figures 12/13).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the sweep produces no buildable paths.
    pub fn segformer_on_accelerator(
        variant: SegFormerVariant,
        workload: Workload,
        image: (usize, usize),
        accel: &AccelConfig,
        resource: AccelResource,
    ) -> Result<Self, EngineError> {
        let num_classes = match workload {
            Workload::SegFormerCityscapes => 19,
            _ => 150,
        };
        let space = segformer_sweep_space(&variant, 2, 8);
        let points = sweep_segformer_on_accelerator(
            &variant, workload, image, num_classes, &space, accel, resource,
        );
        let lut = Lut::from_points(
            format!("{} {workload:?} accel-{resource:?}", variant.name),
            &points,
        );
        Self::with_lut(EngineFamily::SegFormer(variant), num_classes, image, lut)
    }

    /// Builds a Swin engine over an explicit configuration list.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when the sweep produces no buildable paths.
    pub fn swin(
        variant: SwinVariant,
        workload: Workload,
        image: (usize, usize),
        space: &[vit_models::SwinDynamic],
        resource: ResourceKind,
    ) -> Result<Self, EngineError> {
        let points = sweep_swin(&variant, workload, image, 150, space, resource);
        let lut = Lut::from_points(
            format!("{} {workload:?} {resource:?}", variant.name),
            &points,
        );
        Self::with_lut(EngineFamily::Swin(variant), 150, image, lut)
    }

    /// Builds an engine around a precomputed LUT (e.g. deserialized from
    /// JSON).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::EmptyLut`] for an empty LUT.
    pub fn with_lut(
        family: EngineFamily,
        num_classes: usize,
        image: (usize, usize),
        lut: Lut,
    ) -> Result<Self, EngineError> {
        if lut.is_empty() {
            return Err(EngineError::EmptyLut);
        }
        Ok(DrtEngine {
            family,
            num_classes,
            image,
            lut,
            executor: Executor::new(0),
            graph_cache: HashMap::new(),
        })
    }

    /// The engine's LUT.
    pub fn lut(&self) -> &Lut {
        &self.lut
    }

    /// The resource cost of the most expensive (full) execution path —
    /// a convenient reference for choosing budgets.
    pub fn max_resource(&self) -> f64 {
        self.lut
            .entries()
            .last()
            .map_or(0.0, |e| e.resource)
    }

    /// The engine's input image size.
    pub fn image_size(&self) -> (usize, usize) {
        self.image
    }

    fn graph_for(&mut self, config: LutConfig) -> Result<&Graph, EngineError> {
        if !self.graph_cache.contains_key(&config) {
            let g = match (self.family, config) {
                (EngineFamily::SegFormer(variant), c) => {
                    let d = c.as_segformer().expect("segformer engine gets segformer configs");
                    build_segformer(
                        &SegFormerConfig {
                            variant,
                            num_classes: self.num_classes,
                            image: self.image,
                            batch: 1,
                            dynamic: d,
                        },
                    )?
                }
                (EngineFamily::Swin(variant), c) => {
                    let d = c.as_swin().expect("swin engine gets swin configs");
                    build_swin_upernet(
                        &SwinConfig {
                            variant,
                            num_classes: self.num_classes,
                            image: self.image,
                            batch: 1,
                            dynamic: d,
                        },
                    )?
                }
            };
            self.graph_cache.insert(config, g);
        }
        Ok(self.graph_cache.get(&config).expect("just inserted"))
    }

    /// Runs one dynamic inference: picks the best path for `budget`
    /// (in the LUT's resource units), executes it, and returns the outputs
    /// with the precomputed accuracy estimate.
    ///
    /// When the budget is below every path, the cheapest path runs and
    /// [`Inference::met_budget`] is false.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when graph construction or execution fails.
    pub fn infer(&mut self, image: &Tensor, budget: f64) -> Result<Inference, EngineError> {
        let (entry, met): (LutEntry, bool) = match self.lut.lookup(budget) {
            Ok(e) => (e.clone(), true),
            Err(_) => (
                self.lut.entries().first().ok_or(EngineError::EmptyLut)?.clone(),
                false,
            ),
        };
        self.graph_for(entry.config)?; // populate the cache
        let graph = self.graph_cache.get(&entry.config).expect("cached");
        let logits = self.executor.run(graph, std::slice::from_ref(image))?;
        let label_map = logits
            .argmax_channels()
            .expect("segmentation output is NCHW");
        Ok(Inference {
            logits,
            label_map,
            config: entry.config,
            norm_miou_estimate: entry.norm_miou,
            resource_estimate: entry.resource,
            met_budget: met,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> DrtEngine {
        DrtEngine::segformer(
            SegFormerVariant::b0(),
            Workload::SegFormerAde,
            (64, 64),
            ResourceKind::GpuTime,
        )
        .unwrap()
    }

    #[test]
    fn engine_builds_nonempty_lut() {
        let e = small_engine();
        assert!(e.lut().len() >= 3, "only {} LUT rows", e.lut().len());
        assert!(e.max_resource() > 0.0);
    }

    #[test]
    fn tighter_budgets_select_cheaper_less_accurate_paths() {
        let mut e = small_engine();
        let full = e.max_resource();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
        let relaxed = e.infer(&img, full * 2.0).unwrap();
        let tight = e.infer(&img, full * 0.7).unwrap();
        assert!(relaxed.met_budget && tight.met_budget);
        assert!(tight.resource_estimate < relaxed.resource_estimate);
        assert!(tight.norm_miou_estimate <= relaxed.norm_miou_estimate);
        // The relaxed budget runs the full model.
        assert!((relaxed.norm_miou_estimate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_budget_runs_cheapest_and_reports_overrun() {
        let mut e = small_engine();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
        let out = e.infer(&img, 0.0).unwrap();
        assert!(!out.met_budget);
        assert_eq!(
            out.resource_estimate,
            e.lut().entries().first().unwrap().resource
        );
    }

    #[test]
    fn outputs_have_expected_shapes() {
        let mut e = small_engine();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 2);
        let out = e.infer(&img, e.max_resource()).unwrap();
        assert_eq!(out.logits.shape(), &[1, 150, 64, 64]);
        assert_eq!(out.label_map.shape(), &[1, 64, 64]);
    }

    #[test]
    fn graph_cache_reused_across_inferences() {
        let mut e = small_engine();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 3);
        let budget = e.max_resource();
        let a = e.infer(&img, budget).unwrap();
        let b = e.infer(&img, budget).unwrap();
        // Deterministic engine: identical outputs for identical inputs.
        assert_eq!(a.logits, b.logits);
        assert_eq!(e.graph_cache.len(), 1);
    }

    #[test]
    fn accelerator_cycle_budgeted_engine_works() {
        use vit_accel::AccelConfig;
        use vit_resilience::AccelResource;
        let mut e = DrtEngine::segformer_on_accelerator(
            SegFormerVariant::b0(),
            Workload::SegFormerAde,
            (64, 64),
            &AccelConfig::accelerator_star(),
            AccelResource::Cycles,
        )
        .unwrap();
        assert!(e.lut().len() >= 3);
        // Budgets are cycle counts now.
        assert!(e.max_resource() > 1000.0);
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 6);
        let out = e.infer(&img, e.max_resource() * 0.8).unwrap();
        assert!(out.met_budget);
        assert!(out.norm_miou_estimate <= 1.0 + 1e-9);
    }

    #[test]
    fn lut_round_trips_into_engine() {
        let e = small_engine();
        let json = e.lut().to_json();
        let lut = Lut::from_json(&json).unwrap();
        let mut e2 = DrtEngine::with_lut(
            EngineFamily::SegFormer(SegFormerVariant::b0()),
            150,
            (64, 64),
            lut,
        )
        .unwrap();
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 4);
        let out = e2.infer(&img, e2.max_resource()).unwrap();
        assert!(out.met_budget);
    }
}
