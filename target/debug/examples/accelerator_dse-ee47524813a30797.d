/root/repo/target/debug/examples/accelerator_dse-ee47524813a30797.d: crates/core/../../examples/accelerator_dse.rs

/root/repo/target/debug/examples/accelerator_dse-ee47524813a30797: crates/core/../../examples/accelerator_dse.rs

crates/core/../../examples/accelerator_dse.rs:
