//! Pass 4 — accelerator mapping checks.
//!
//! Every MAC-bearing node must map onto a legal tiling of the PE array's
//! `k0 x c0` vector datapath. The pass asks the simulator itself for each
//! node's contractions ([`vit_accel::node_contractions`]), so what it
//! checks is exactly what [`vit_accel::simulate`] would schedule.

use crate::diag::{Code, Diagnostic, Span};
use crate::VerifyOptions;
use vit_accel::{node_contractions, AccelConfig};
use vit_graph::Graph;

/// Runs the accelerator mapping pass for one hardware configuration.
pub fn verify_accel_mapping(
    graph: &Graph,
    accel: &AccelConfig,
    opts: &VerifyOptions,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (k0, c0) = (accel.k0 as u64, accel.c0 as u64);
    for (id, node) in graph.iter() {
        for (ci, w) in node_contractions(graph, node).iter().enumerate() {
            let span = || Span::Node {
                index: id.index(),
                name: node.name.clone(),
            };
            let zero: Vec<&str> = [("pq", w.pq), ("rs", w.rs), ("c", w.c), ("k", w.k)]
                .iter()
                .filter(|(_, v)| *v == 0)
                .map(|(n, _)| *n)
                .collect();
            if !zero.is_empty() {
                diags.push(
                    Diagnostic::new(
                        Code::EmptyTiling,
                        span(),
                        format!(
                            "contraction {ci} has zero dimension(s) {}: pq={} rs={} c={} k={}",
                            zero.join(","),
                            w.pq,
                            w.rs,
                            w.c,
                            w.k
                        ),
                    )
                    .with_help("a zero-size contraction cannot be scheduled on the MAC array"),
                );
                continue;
            }
            // Vector lanes are padded up to the next k0/c0 multiple; the
            // padded fraction is pure waste on every cycle of this node.
            let c_util = w.c as f64 / (w.c.div_ceil(c0) * c0) as f64;
            let k_util = w.k as f64 / (w.k.div_ceil(k0) * k0) as f64;
            let util = c_util * k_util;
            if util < opts.min_mac_utilization {
                diags.push(
                    Diagnostic::new(
                        Code::VectorUnderutilized,
                        span(),
                        format!(
                            "contraction {ci} (c={}, k={}) uses {:.1}% of the {k0}x{c0} vector \
                             datapath (floor {:.1}%)",
                            w.c,
                            w.k,
                            util * 100.0,
                            opts.min_mac_utilization * 100.0
                        ),
                    )
                    .with_help("pad channels to the vector width or choose a narrower datapath"),
                );
            }
        }
    }
    diags
}
