/root/repo/target/release/examples/segmentation_budget_sweep-080bf4e405ebbf77.d: crates/core/../../examples/segmentation_budget_sweep.rs Cargo.toml

/root/repo/target/release/examples/libsegmentation_budget_sweep-080bf4e405ebbf77.rmeta: crates/core/../../examples/segmentation_budget_sweep.rs Cargo.toml

crates/core/../../examples/segmentation_budget_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
