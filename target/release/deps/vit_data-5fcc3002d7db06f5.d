/root/repo/target/release/deps/vit_data-5fcc3002d7db06f5.d: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs Cargo.toml

/root/repo/target/release/deps/libvit_data-5fcc3002d7db06f5.rmeta: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/metrics.rs:
crates/data/src/scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
