//! Minimal JSON reader/writer for the on-disk LUT artifact.
//!
//! The LUT is the only serialized artifact in the workspace, so instead of
//! a general serialization framework the engine carries a small,
//! dependency-free JSON module: a recursive-descent parser producing a
//! [`Json`] tree (with byte offsets on errors) and a pretty writer that
//! matches the established artifact layout (2-space indent, one scalar per
//! line, integers and floats distinguished).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as usize),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A syntax error with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Pretty-prints a value with 2-space indentation.
pub fn write_pretty(value: &Json) -> String {
    let mut out = String::new();
    fmt_value(value, 0, &mut out);
    out
}

fn fmt_value(value: &Json, indent: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64 and always keeps a `.0` on whole
                // numbers, so round-trips are exact.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Json::Str(s) => fmt_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push('\n');
                push_indent(indent + 1, out);
                fmt_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                out.push('\n');
                push_indent(indent + 1, out);
                fmt_string(key, out);
                out.push_str(": ");
                fmt_value(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn fmt_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = r#"{"a": [1, -2.5, 1e3, "x\ny", true, null], "b": {}}"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3].as_str(), Some("x\ny"));
        assert_eq!(a[4], Json::Bool(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_with_offset() {
        for doc in ["{", "[1,]", "{\"a\" 1}", "tru", "\"abc", "1 2"] {
            let err = parse(doc).unwrap_err();
            assert!(err.offset <= doc.len(), "{doc}: {err}");
        }
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\" str".into())),
            (
                "rows".into(),
                Json::Arr(vec![Json::Int(42), Json::Num(0.125), Json::Num(1.0)]),
            ),
        ]);
        let text = write_pretty(&v);
        assert_eq!(parse(&text).unwrap(), v);
        // Whole floats keep their `.0`, integers stay integers.
        assert!(text.contains("1.0") && text.contains("42"));
    }

    #[test]
    fn unicode_escapes_parse() {
        let escaped = "\"A\\u00e9 \\u00e9\"";
        assert_eq!(parse(escaped).unwrap().as_str(), Some("Aé é"));
        let v = parse(r#""Aé é""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
