/root/repo/target/release/deps/vit_graph-97d7572d56e1bc81.d: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs Cargo.toml

/root/repo/target/release/deps/libvit_graph-97d7572d56e1bc81.rmeta: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/op.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
