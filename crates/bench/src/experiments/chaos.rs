//! Chaos experiment: serving under deterministic fault injection.
//!
//! `repro chaos` sweeps a composite fault rate through the discrete-event
//! serving simulator and compares three policies at each point:
//!
//! * **degraded-retry** — the self-healing server: DRT scheduling plus
//!   fault recovery that re-submits a faulted request against its
//!   *remaining* slack, so the LUT picks a cheaper Pareto configuration
//!   for the retry.
//! * **fail-fast** — DRT scheduling, but the first fault fails the
//!   request (no retries).
//! * **static-full** — the brittle baseline: fixed full-model execution
//!   and no recovery.
//!
//! Every degraded completion's configuration is additionally measured for
//! *fidelity* — real pruned-vs-full output agreement on synthetic scenes
//! via [`vit_resilience::segformer_fidelity`] — so the table reports what
//! accuracy the healed requests actually delivered, not just the LUT's
//! estimate. The sweep is a pure function of the seed: arrivals and fault
//! draws replay byte-identically, and `--json` writes `BENCH_chaos.json`
//! for regression tracking.

use crate::experiments::serve::build_core;
use crate::experiments::verify::exit_code;
use crate::loadgen;
use crate::{banner, f, pct, Table};
use vit_drt::json::{write_pretty, Json};
use vit_drt::{EngineCore, LutConfig};
use vit_fault::FaultPlan;
use vit_models::SegFormerVariant;
use vit_resilience::{segformer_fidelity, FidelitySettings};
use vit_serve::{
    simulate_outcomes, Outcome, RecoveryPolicy, SchedulePolicy, ServerMetrics, SimArrival,
    SimConfig,
};

const WORKERS: usize = 4;
const QUEUE_DEPTH: usize = 16;
const SEED: u64 = 1870;
/// Offered load as a multiple of full-model capacity: below saturation, so
/// fault handling (not queueing) dominates the differences between
/// policies.
const LOAD_X: f64 = 0.8;
/// Stalls run this many times their expected service time when injected.
const STALL_FACTOR: f64 = 4.0;

/// Composite fault rates swept (probability that any given attempt
/// faults); the composition is fixed at 40% crash / 30% bit-flip /
/// 30% stall.
const RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.1, 0.2];
const RATES_QUICK: [f64; 2] = [0.0, 0.1];

/// Flags of the `repro chaos` subcommand.
#[derive(Debug, Default, Clone)]
pub struct ChaosArgs {
    /// Write `BENCH_chaos.json` next to the table output.
    pub json: bool,
    /// Shorter arrival trace, fewer fault rates, one fidelity sample —
    /// for CI smoke runs.
    pub quick: bool,
}

fn fault_plan(rate: f64) -> FaultPlan {
    FaultPlan {
        seed: SEED,
        crash_rate: 0.4 * rate,
        bitflip_rate: 0.3 * rate,
        stall_rate: 0.3 * rate,
        stall_factor: STALL_FACTOR,
        // Replay failures are exercised by the unit suites; the sweep
        // keeps the composition to the three hardware-style faults.
        replay_rate: 0.0,
    }
}

/// The three compared (policy, recovery) pairs.
const POLICIES: [&str; 3] = ["degraded-retry", "fail-fast", "static-full"];

fn sim_config(policy: &str, rate: f64) -> SimConfig {
    let (schedule, recovery) = match policy {
        "degraded-retry" => (
            SchedulePolicy::DrtDynamic,
            RecoveryPolicy::DegradedRetry { max_retries: 2 },
        ),
        "fail-fast" => (SchedulePolicy::DrtDynamic, RecoveryPolicy::FailFast),
        "static-full" => (SchedulePolicy::static_full(), RecoveryPolicy::FailFast),
        other => unreachable!("unknown chaos policy {other}"),
    };
    let mut cfg = SimConfig::new(WORKERS, QUEUE_DEPTH, schedule, 1.0).with_recovery(recovery);
    if rate > 0.0 {
        cfg = cfg.with_fault(fault_plan(rate));
    }
    cfg
}

/// The seeded open-loop arrival trace shared by every point of the sweep
/// (same process as `repro serve`, at a fixed sub-saturation load).
fn chaos_arrivals(core: &EngineCore, quick: bool) -> Vec<SimArrival> {
    let full = core.max_resource();
    let capacity_hz = WORKERS as f64 / full;
    let services = if quick { 300.0 } else { 1500.0 };
    let duration = services * full / WORKERS as f64;
    loadgen::poisson_with_bursts(
        LOAD_X * capacity_hz,
        duration,
        2.0 * full,
        duration / 5.0,
        3 * WORKERS,
        SEED,
    )
}

/// One (fault rate, policy) cell of the sweep.
struct Cell {
    policy: &'static str,
    metrics: ServerMetrics,
    /// Configurations run by *degraded* completions (retries > 0).
    degraded_configs: Vec<(LutConfig, usize)>,
    /// Fidelity-weighted mIoU of the degraded completions (measured, not
    /// the LUT estimate); `None` when nothing degraded.
    degraded_fidelity: Option<f64>,
}

struct RatePoint {
    rate: f64,
    cells: Vec<Cell>,
}

fn run_cell(core: &EngineCore, arrivals: &[SimArrival], policy: &'static str, rate: f64) -> Cell {
    let outcomes = simulate_outcomes(core, &sim_config(policy, rate), arrivals);
    let mut degraded_configs: Vec<(LutConfig, usize)> = Vec::new();
    for outcome in &outcomes {
        if let Outcome::Completed(r) = outcome {
            if r.retries > 0 {
                match degraded_configs.iter_mut().find(|(c, _)| *c == r.config) {
                    Some((_, n)) => *n += 1,
                    None => degraded_configs.push((r.config, 1)),
                }
            }
        }
    }
    Cell {
        policy,
        metrics: ServerMetrics::from_outcomes(&outcomes),
        degraded_configs,
        degraded_fidelity: None,
    }
}

/// Measures real pruned-vs-full fidelity for every configuration that a
/// degraded completion ran, then fills each cell's count-weighted mean.
/// Measurements are cached per configuration across the whole sweep.
fn fill_degraded_fidelity(points: &mut [RatePoint], quick: bool) {
    let variant = SegFormerVariant::b0();
    let settings = FidelitySettings {
        samples: if quick { 1 } else { 2 },
        ..FidelitySettings::default()
    };
    let mut cache: Vec<(LutConfig, f64)> = Vec::new();
    for point in points.iter_mut() {
        for cell in &mut point.cells {
            let mut weighted = 0.0;
            let mut total = 0usize;
            for (config, count) in &cell.degraded_configs {
                let fidelity = match cache.iter().find(|(c, _)| c == config) {
                    Some((_, fid)) => *fid,
                    None => {
                        let dynamic = config
                            .as_segformer()
                            .expect("chaos sweep runs a SegFormer core");
                        let fid = segformer_fidelity(&variant, &dynamic, &settings)
                            .expect("fidelity measurement succeeds");
                        cache.push((*config, fid));
                        fid
                    }
                };
                weighted += fidelity * *count as f64;
                total += count;
            }
            if total > 0 {
                cell.degraded_fidelity = Some(weighted / total as f64);
            }
        }
    }
}

/// Invariant violations that fail the run (non-zero exit).
fn violations(points: &[RatePoint]) -> Vec<String> {
    let mut out = Vec::new();
    for point in points {
        for cell in &point.cells {
            let m = &cell.metrics;
            if !m.accounts_for_all_submissions() {
                out.push(format!(
                    "rate {}: {} loses requests (completed {} + shed {} + failed {} != {})",
                    point.rate,
                    cell.policy,
                    m.completed,
                    m.shed(),
                    m.fault_failures,
                    m.submitted
                ));
            }
            if (m.goodput + m.deadline_miss_rate - 1.0).abs() > 1e-9 {
                out.push(format!(
                    "rate {}: {} goodput {} + miss rate {} does not partition the load",
                    point.rate, cell.policy, m.goodput, m.deadline_miss_rate
                ));
            }
        }
        if point.rate == 0.0 {
            for cell in &point.cells {
                if cell.metrics.faults_seen != 0 || cell.metrics.fault_failures != 0 {
                    out.push(format!(
                        "clean point: {} observed {} faults with injection disabled",
                        cell.policy, cell.metrics.faults_seen
                    ));
                }
            }
        }
    }
    let healing_wins = points.iter().filter(|p| p.rate > 0.0).any(|p| {
        let goodput = |name: &str| {
            p.cells
                .iter()
                .find(|c| c.policy == name)
                .map(|c| c.metrics.goodput)
        };
        match (goodput("degraded-retry"), goodput("fail-fast")) {
            (Some(h), Some(b)) => h > b,
            _ => false,
        }
    });
    if !healing_wins {
        out.push(
            "degraded-retry never strictly beat fail-fast on goodput at any injected fault rate"
                .to_string(),
        );
    }
    out
}

/// Determinism gate: the heaviest-chaos degraded-retry point replayed a
/// second time must agree on every counter.
fn determinism_violations(core: &EngineCore, arrivals: &[SimArrival], rate: f64) -> Vec<String> {
    let a = run_cell(core, arrivals, "degraded-retry", rate).metrics;
    let b = run_cell(core, arrivals, "degraded-retry", rate).metrics;
    let mut out = Vec::new();
    if (a.completed, a.fault_failures, a.faults_seen, a.retries)
        != (b.completed, b.fault_failures, b.faults_seen, b.retries)
        || a.failure_histogram != b.failure_histogram
        || a.p99_latency != b.p99_latency
    {
        out.push(format!(
            "chaos sweep is not deterministic at rate {rate}: two replays disagree"
        ));
    }
    out
}

fn cell_json(cell: &Cell) -> Json {
    let m = &cell.metrics;
    Json::Obj(vec![
        ("policy".into(), Json::Str(cell.policy.into())),
        ("submitted".into(), Json::Int(m.submitted as i64)),
        ("completed".into(), Json::Int(m.completed as i64)),
        ("shed".into(), Json::Int(m.shed() as i64)),
        ("fault_failures".into(), Json::Int(m.fault_failures as i64)),
        ("faults_seen".into(), Json::Int(m.faults_seen as i64)),
        ("retries".into(), Json::Int(m.retries as i64)),
        (
            "degraded_completions".into(),
            Json::Int(m.degraded_completions as i64),
        ),
        ("goodput".into(), Json::Num(m.goodput)),
        ("deadline_miss_rate".into(), Json::Num(m.deadline_miss_rate)),
        (
            "mean_delivered_accuracy".into(),
            Json::Num(m.mean_delivered_accuracy),
        ),
        (
            "mean_degraded_accuracy".into(),
            Json::Num(m.mean_degraded_accuracy),
        ),
        (
            "degraded_fidelity_miou".into(),
            cell.degraded_fidelity.map_or(Json::Null, Json::Num),
        ),
        ("p99_latency".into(), Json::Num(m.p99_latency)),
        ("p999_queue_wait".into(), Json::Num(m.p999_queue_wait)),
        (
            "failure_histogram".into(),
            Json::Obj(
                m.failure_histogram
                    .iter()
                    .map(|(reason, n)| (reason.name().to_string(), Json::Int(*n as i64)))
                    .collect(),
            ),
        ),
    ])
}

fn render_json(points: &[RatePoint], quick: bool, violations: &[String]) -> String {
    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("chaos".into())),
        ("quick".into(), Json::Bool(quick)),
        ("seed".into(), Json::Int(SEED as i64)),
        ("workers".into(), Json::Int(WORKERS as i64)),
        ("queue_depth".into(), Json::Int(QUEUE_DEPTH as i64)),
        ("load_x".into(), Json::Num(LOAD_X)),
        ("stall_factor".into(), Json::Num(STALL_FACTOR)),
        (
            "fault_composition".into(),
            Json::Obj(vec![
                ("crash".into(), Json::Num(0.4)),
                ("bitflip".into(), Json::Num(0.3)),
                ("stall".into(), Json::Num(0.3)),
            ]),
        ),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("fault_rate".into(), Json::Num(p.rate)),
                            (
                                "policies".into(),
                                Json::Arr(p.cells.iter().map(cell_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations".into(),
            Json::Arr(violations.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
    ]);
    let mut s = write_pretty(&doc);
    s.push('\n');
    s
}

/// `repro chaos`: the fault-rate sweep. Returns the process exit code
/// (non-zero when an invariant is violated).
pub fn run(args: ChaosArgs) -> i32 {
    banner("Chaos — self-healing degraded-retry serving under injected faults");
    let core = build_core();
    let arrivals = chaos_arrivals(&core, args.quick);
    let rates: &[f64] = if args.quick { &RATES_QUICK } else { &RATES };
    println!(
        "SegFormer-B0 @ 64x64 GPU-time LUT; {WORKERS} workers at {LOAD_X}x capacity, \
         {} seeded arrivals; fault mix 40% crash / 30% bit-flip / 30% {STALL_FACTOR}x \
         stall, seed {SEED}{}",
        arrivals.len(),
        if args.quick { " (quick)" } else { "" },
    );
    println!();

    let mut points: Vec<RatePoint> = rates
        .iter()
        .map(|&rate| RatePoint {
            rate,
            cells: POLICIES
                .iter()
                .map(|policy| run_cell(&core, &arrivals, policy, rate))
                .collect(),
        })
        .collect();
    fill_degraded_fidelity(&mut points, args.quick);

    let mut t = Table::new(&[
        "fault rate",
        "policy",
        "goodput",
        "miss rate",
        "fault fails",
        "retries",
        "degraded",
        "degr fidelity",
        "p99.9 qwait (ms)",
    ]);
    for point in &points {
        for cell in &point.cells {
            let m = &cell.metrics;
            t.row(&[
                pct(point.rate),
                cell.policy.to_string(),
                pct(m.goodput),
                pct(m.deadline_miss_rate),
                format!("{}", m.fault_failures),
                format!("{}", m.retries),
                format!("{}", m.degraded_completions),
                cell.degraded_fidelity
                    .map_or_else(|| "-".to_string(), |fid| f(fid, 3)),
                f(m.p999_queue_wait * 1e3, 3),
            ]);
        }
    }
    t.print();
    println!();

    let mut all_violations = violations(&points);
    let max_rate = rates.iter().copied().fold(0.0, f64::max);
    all_violations.extend(determinism_violations(&core, &arrivals, max_rate));

    if all_violations.is_empty() {
        println!(
            "every point conserves requests, the clean point saw zero faults, the \
             sweep replays deterministically, and degraded-retry beats fail-fast \
             on goodput under injected faults."
        );
    } else {
        for v in &all_violations {
            println!("VIOLATION: {v}");
        }
    }

    if args.json {
        let path = "BENCH_chaos.json";
        std::fs::write(path, render_json(&points, args.quick, &all_violations))
            .expect("write BENCH_chaos.json");
        println!("wrote {path}");
    }
    exit_code(all_violations.len(), 0, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_no_violations_and_heals() {
        let core = build_core();
        let arrivals = chaos_arrivals(&core, true);
        let mut points: Vec<RatePoint> = RATES_QUICK
            .iter()
            .map(|&rate| RatePoint {
                rate,
                cells: POLICIES
                    .iter()
                    .map(|policy| run_cell(&core, &arrivals, policy, rate))
                    .collect(),
            })
            .collect();
        fill_degraded_fidelity(&mut points, true);
        assert_eq!(violations(&points), Vec::<String>::new());
        assert_eq!(
            determinism_violations(&core, &arrivals, 0.1),
            Vec::<String>::new()
        );
        // The faulted point actually healed something, and the healed
        // completions have a real measured fidelity.
        let faulted = &points[1];
        let healing = &faulted.cells[0];
        assert!(healing.metrics.degraded_completions > 0);
        let fid = healing
            .degraded_fidelity
            .expect("degraded configs measured");
        assert!(
            fid > 0.0 && fid <= 1.0 + 1e-9,
            "fidelity {fid} out of range"
        );
    }

    #[test]
    fn json_round_trips_through_the_engine_parser() {
        let core = build_core();
        let arrivals = chaos_arrivals(&core, true);
        let points = vec![RatePoint {
            rate: 0.1,
            cells: vec![run_cell(&core, &arrivals, "degraded-retry", 0.1)],
        }];
        let text = render_json(&points, true, &[]);
        let doc = vit_drt::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("benchmark").and_then(|b| b.as_str()), Some("chaos"));
        let pts = doc.get("points").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(pts.len(), 1);
        let cell = pts[0].get("policies").and_then(|p| p.as_arr()).unwrap()[0].clone();
        let m = &points[0].cells[0].metrics;
        assert_eq!(
            cell.get("submitted").and_then(|s| s.as_usize()),
            Some(m.submitted)
        );
        assert_eq!(
            cell.get("goodput").and_then(|g| g.as_f64()),
            Some(m.goodput)
        );
    }
}
