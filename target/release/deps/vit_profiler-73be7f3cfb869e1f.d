/root/repo/target/release/deps/vit_profiler-73be7f3cfb869e1f.d: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs Cargo.toml

/root/repo/target/release/deps/libvit_profiler-73be7f3cfb869e1f.rmeta: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs Cargo.toml

crates/profiler/src/lib.rs:
crates/profiler/src/flops.rs:
crates/profiler/src/gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
