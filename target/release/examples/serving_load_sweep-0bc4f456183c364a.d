/root/repo/target/release/examples/serving_load_sweep-0bc4f456183c364a.d: crates/bench/../../examples/serving_load_sweep.rs

/root/repo/target/release/examples/serving_load_sweep-0bc4f456183c364a: crates/bench/../../examples/serving_load_sweep.rs

crates/bench/../../examples/serving_load_sweep.rs:
