/root/repo/target/debug/examples/serving_load_sweep-efc88e7c024889e2.d: crates/bench/../../examples/serving_load_sweep.rs

/root/repo/target/debug/examples/serving_load_sweep-efc88e7c024889e2: crates/bench/../../examples/serving_load_sweep.rs

crates/bench/../../examples/serving_load_sweep.rs:
