//! Property tests: arbitrary multi-threaded recording schedules must
//! always produce well-formed traces.
//!
//! Eight real threads hammer one shared sink with randomized nested-span
//! workloads (depths, widths, and extra counter/instant chatter drawn by
//! proptest). Whatever the interleaving, the captured stream must pass
//! [`vit_trace::validate`]: sequence numbers unique, durations
//! non-negative, per-thread spans properly nested.

use proptest::prelude::*;
use std::sync::Arc;
use vit_trace::{now_ns, validate, EventKind, Phase, RingBufferSink, StatsSink, TraceSink};

const THREADS: usize = 8;

/// Records a properly nested span tree of the given shape on the calling
/// thread: each level opens a span, recurses, then records the span
/// closed — exactly how the executors stamp node/phase spans.
fn record_tree(sink: &dyn TraceSink, depth: u8, width: u8, label: u64) {
    let start = sink.timestamp();
    if depth > 0 {
        for child in 0..width {
            record_tree(sink, depth - 1, width, label * 10 + u64::from(child));
        }
    }
    // A little work so sibling spans get distinct clock readings.
    std::hint::black_box((0..32).sum::<u64>());
    sink.record(EventKind::Node {
        name: format!("n{label}"),
        op: "Synthetic".to_string(),
        start_ns: start,
        end_ns: now_ns(),
        flops: u64::from(width) + 1,
        bytes: 4,
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of 8 threads recording nested spans plus
    /// counter/instant chatter into one ring sink validates cleanly, and
    /// every recorded event survives (no drops below capacity).
    #[test]
    fn concurrent_recording_is_always_well_formed(
        depths in proptest::collection::vec(0u8..4, THREADS),
        widths in proptest::collection::vec(1u8..3, THREADS),
        chatter in proptest::collection::vec(0u8..4, THREADS),
    ) {
        let sink = Arc::new(RingBufferSink::new(1 << 16));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let sink = sink.clone();
                let (depth, width, chat) = (depths[t], widths[t], chatter[t]);
                s.spawn(move || {
                    record_tree(sink.as_ref(), depth, width, t as u64 + 1);
                    for c in 0..chat {
                        sink.record(EventKind::Counter {
                            name: format!("chatter.{t}"),
                            value: u64::from(c),
                            at_ns: now_ns(),
                        });
                        sink.record(EventKind::Instant {
                            name: "mark".to_string(),
                            detail: format!("t{t}"),
                            at_ns: now_ns(),
                        });
                    }
                });
            }
        });
        let events = sink.events();
        prop_assert_eq!(sink.dropped(), 0);
        prop_assert!(!events.is_empty());
        prop_assert_eq!(validate(&events), Ok(()));
    }

    /// The aggregating sink agrees with the ring sink on totals under the
    /// same workload shape: same event count, and FLOPs aggregated by the
    /// stats sink equal the sum over the ring's node events.
    #[test]
    fn stats_sink_matches_ring_sink_totals(
        depths in proptest::collection::vec(0u8..3, THREADS),
    ) {
        let ring = Arc::new(RingBufferSink::new(1 << 16));
        let stats = Arc::new(StatsSink::new());
        for sink in [ring.clone() as Arc<dyn TraceSink>, stats.clone()] {
            std::thread::scope(|s| {
                for (t, &depth) in depths.iter().enumerate() {
                    let sink = sink.clone();
                    s.spawn(move || record_tree(sink.as_ref(), depth, 2, t as u64 + 1));
                }
            });
        }
        let ring_events = ring.events();
        prop_assert_eq!(stats.events_recorded(), ring_events.len() as u64);
        let ring_flops: u64 = ring_events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Node { flops, .. } => *flops,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(stats.summary(1).total_flops(), ring_flops);
    }
}

/// Cross-thread spans (sched latency, serving queue wait) may straddle a
/// worker's span stack and must still validate — this is the shape the
/// wavefront executor and the serving workers actually record.
#[test]
fn cross_thread_spans_validate_inside_worker_spans() {
    let sink = RingBufferSink::new(64);
    let submit_ns = sink.timestamp();
    let outer = sink.timestamp();
    std::hint::black_box((0..64).sum::<u64>());
    // A queue-wait span that started (on another thread) before this
    // worker's current node span did, recorded mid-span.
    sink.record(EventKind::Phase {
        phase: Phase::QueueWait,
        detail: String::new(),
        start_ns: submit_ns,
        end_ns: now_ns(),
    });
    sink.record(EventKind::Sched {
        node: "n".to_string(),
        spawn_ns: submit_ns,
        start_ns: now_ns(),
        ready_depth: 1,
    });
    sink.record(EventKind::Node {
        name: "n".to_string(),
        op: "Conv2d".to_string(),
        start_ns: outer,
        end_ns: now_ns(),
        flops: 1,
        bytes: 4,
    });
    assert_eq!(validate(&sink.events()), Ok(()));
}
