/root/repo/target/release/deps/vit_accel-d277bdaf05ab9550.d: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

/root/repo/target/release/deps/vit_accel-d277bdaf05ab9550: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/config.rs:
crates/accel/src/dse.rs:
crates/accel/src/sim.rs:
