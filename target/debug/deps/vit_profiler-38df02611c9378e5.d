/root/repo/target/debug/deps/vit_profiler-38df02611c9378e5.d: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

/root/repo/target/debug/deps/libvit_profiler-38df02611c9378e5.rlib: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

/root/repo/target/debug/deps/libvit_profiler-38df02611c9378e5.rmeta: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

crates/profiler/src/lib.rs:
crates/profiler/src/flops.rs:
crates/profiler/src/gpu.rs:
