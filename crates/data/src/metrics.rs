//! Segmentation accuracy metrics.
//!
//! The paper uses mean intersection-over-union (mIoU): "IoU is defined as
//! the area of overlap between the prediction and the ground truth divided
//! by the area for both ... mIoU is the average of the IoU for every class"
//! (§II). Classes absent from both prediction and ground truth are excluded
//! from the mean, following the mmsegmentation convention.

use vit_tensor::Tensor;

/// Builds the `classes x classes` confusion matrix between a predicted and
/// a ground-truth label map (both `[n, h, w]`, labels stored as `f32`).
///
/// `matrix[gt * classes + pred]` counts pixels.
///
/// # Panics
///
/// Panics when shapes differ or a label is out of `0..classes`.
pub fn confusion_matrix(pred: &Tensor, gt: &Tensor, classes: usize) -> Vec<u64> {
    assert_eq!(
        pred.shape(),
        gt.shape(),
        "prediction/ground-truth shape mismatch"
    );
    let mut m = vec![0u64; classes * classes];
    for (&p, &g) in pred.data().iter().zip(gt.data().iter()) {
        let (p, g) = (p as usize, g as usize);
        assert!(
            p < classes && g < classes,
            "label out of range: pred {p}, gt {g}"
        );
        m[g * classes + p] += 1;
    }
    m
}

/// Mean intersection-over-union between two label maps.
///
/// Classes with zero union (absent from both maps) are excluded from the
/// mean. Returns a value in `[0, 1]`; returns 0.0 when no class is present.
///
/// # Examples
///
/// ```
/// use vit_data::mean_iou;
/// use vit_tensor::Tensor;
///
/// # fn main() -> Result<(), vit_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[1, 2, 2])?;
/// assert_eq!(mean_iou(&a, &a, 2), 1.0);
/// # Ok(())
/// # }
/// ```
pub fn mean_iou(pred: &Tensor, gt: &Tensor, classes: usize) -> f64 {
    let m = confusion_matrix(pred, gt, classes);
    let mut sum = 0.0;
    let mut counted = 0usize;
    for c in 0..classes {
        let tp = m[c * classes + c];
        let mut row = 0u64; // all pixels with gt == c
        let mut col = 0u64; // all pixels with pred == c
        for k in 0..classes {
            row += m[c * classes + k];
            col += m[k * classes + c];
        }
        let union = row + col - tp;
        if union > 0 {
            sum += tp as f64 / union as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

/// Fraction of pixels whose predicted label matches the ground truth.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn pixel_accuracy(pred: &Tensor, gt: &Tensor) -> f64 {
    assert_eq!(
        pred.shape(),
        gt.shape(),
        "prediction/ground-truth shape mismatch"
    );
    if pred.numel() == 0 {
        return 0.0;
    }
    let correct = pred
        .data()
        .iter()
        .zip(gt.data().iter())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / pred.numel() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, h: usize, w: usize) -> Tensor {
        Tensor::from_vec(v, &[1, h, w]).unwrap()
    }

    #[test]
    fn identical_maps_have_miou_one() {
        let a = t(vec![0.0, 1.0, 2.0, 1.0], 2, 2);
        assert_eq!(mean_iou(&a, &a, 3), 1.0);
        assert_eq!(pixel_accuracy(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_maps_have_miou_zero() {
        let a = t(vec![0.0; 4], 2, 2);
        let b = t(vec![1.0; 4], 2, 2);
        assert_eq!(mean_iou(&a, &b, 2), 0.0);
        assert_eq!(pixel_accuracy(&a, &b), 0.0);
    }

    #[test]
    fn half_overlap_hand_computed() {
        // gt:   [0, 0, 1, 1]
        // pred: [0, 1, 1, 1]
        // class 0: tp=1, union = 2 (gt) + 1 (pred) - 1 = 2 -> 0.5
        // class 1: tp=2, union = 2 + 3 - 2 = 3 -> 2/3
        let gt = t(vec![0.0, 0.0, 1.0, 1.0], 1, 4);
        let pred = t(vec![0.0, 1.0, 1.0, 1.0], 1, 4);
        let miou = mean_iou(&pred, &gt, 2);
        assert!((miou - (0.5 + 2.0 / 3.0) / 2.0).abs() < 1e-9);
        assert!((pixel_accuracy(&pred, &gt) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn absent_classes_excluded_from_mean() {
        // Only class 0 present anywhere; classes 1..9 must not dilute mIoU.
        let a = t(vec![0.0; 4], 2, 2);
        assert_eq!(mean_iou(&a, &a, 10), 1.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let gt = t(vec![0.0, 0.0, 1.0], 1, 3);
        let pred = t(vec![0.0, 1.0, 1.0], 1, 3);
        let m = confusion_matrix(&pred, &gt, 2);
        assert_eq!(m, vec![1, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let a = t(vec![0.0; 4], 2, 2);
        let b = t(vec![0.0; 2], 1, 2);
        pixel_accuracy(&a, &b);
    }

    #[test]
    fn miou_is_symmetric_for_binary_maps() {
        let a = t(vec![0.0, 1.0, 0.0, 1.0, 1.0, 0.0], 2, 3);
        let b = t(vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0], 2, 3);
        assert!((mean_iou(&a, &b, 2) - mean_iou(&b, &a, 2)).abs() < 1e-12);
    }
}
