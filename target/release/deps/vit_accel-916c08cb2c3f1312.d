/root/repo/target/release/deps/vit_accel-916c08cb2c3f1312.d: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs Cargo.toml

/root/repo/target/release/deps/libvit_accel-916c08cb2c3f1312.rmeta: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/config.rs:
crates/accel/src/dse.rs:
crates/accel/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
