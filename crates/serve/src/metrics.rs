//! Aggregate serving metrics.

use crate::request::{Outcome, RequestRecord, ShedReason};
use vit_drt::LutConfig;

/// Nearest-rank percentile (`p` in `[0, 100]`) of an unsorted sample.
/// Returns 0.0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Aggregated results of a serving run (threaded server or simulation).
///
/// Latencies are in seconds (wall or virtual, matching the substrate).
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// All requests offered to the server.
    pub submitted: usize,
    /// Requests that executed (possibly late).
    pub completed: usize,
    /// Requests shed because the bounded queue was full.
    pub shed_queue_full: usize,
    /// Requests shed by admission control (slack below cheapest entry).
    pub shed_no_slack: usize,
    /// Requests shed at dispatch after their slack expired in-queue.
    pub shed_late: usize,
    /// Completed requests that finished after their deadline.
    pub deadline_misses: usize,
    /// Median completion latency.
    pub p50_latency: f64,
    /// 95th-percentile completion latency.
    pub p95_latency: f64,
    /// 99th-percentile completion latency.
    pub p99_latency: f64,
    /// Mean submission → dispatch wait of completed requests.
    pub mean_queue_wait: f64,
    /// Median submission → dispatch wait of completed requests.
    pub p50_queue_wait: f64,
    /// 95th-percentile submission → dispatch wait.
    pub p95_queue_wait: f64,
    /// 99th-percentile submission → dispatch wait.
    pub p99_queue_wait: f64,
    /// `deadline_misses + all sheds` over `submitted`: the fraction of
    /// offered requests that did NOT produce an on-time result.
    pub deadline_miss_rate: f64,
    /// All sheds over `submitted`.
    pub shed_rate: f64,
    /// Mean *delivered* accuracy over all submitted requests: the LUT
    /// accuracy estimate for on-time completions, zero for misses and
    /// sheds (a late or absent answer delivers nothing).
    pub mean_delivered_accuracy: f64,
    /// How often each LUT configuration was selected, most-used first.
    pub config_histogram: Vec<(LutConfig, usize)>,
}

impl ServerMetrics {
    /// Aggregates per-request outcomes.
    pub fn from_outcomes(outcomes: &[Outcome]) -> Self {
        let submitted = outcomes.len();
        let records: Vec<&RequestRecord> = outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Completed(r) => Some(r),
                Outcome::Shed(_) => None,
            })
            .collect();
        let shed_count = |reason: ShedReason| {
            outcomes
                .iter()
                .filter(|o| matches!(o, Outcome::Shed(r) if *r == reason))
                .count()
        };
        let shed_queue_full = shed_count(ShedReason::QueueFull);
        let shed_no_slack = shed_count(ShedReason::SlackBelowCheapest);
        let shed_late = shed_count(ShedReason::SlackExhausted);
        let sheds = shed_queue_full + shed_no_slack + shed_late;
        let deadline_misses = records.iter().filter(|r| !r.met_deadline).count();

        let latencies: Vec<f64> = records.iter().map(|r| r.latency).collect();
        let queue_waits: Vec<f64> = records.iter().map(|r| r.queue_wait).collect();
        let mean_queue_wait = if queue_waits.is_empty() {
            0.0
        } else {
            queue_waits.iter().sum::<f64>() / queue_waits.len() as f64
        };
        let delivered: f64 = records.iter().map(|r| r.delivered_accuracy()).sum();

        let mut histogram: Vec<(LutConfig, usize)> = Vec::new();
        for r in &records {
            match histogram.iter_mut().find(|(c, _)| *c == r.config) {
                Some((_, n)) => *n += 1,
                None => histogram.push((r.config, 1)),
            }
        }
        histogram.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

        let frac = |n: usize| {
            if submitted == 0 {
                0.0
            } else {
                n as f64 / submitted as f64
            }
        };
        ServerMetrics {
            submitted,
            completed: records.len(),
            shed_queue_full,
            shed_no_slack,
            shed_late,
            deadline_misses,
            p50_latency: percentile(&latencies, 50.0),
            p95_latency: percentile(&latencies, 95.0),
            p99_latency: percentile(&latencies, 99.0),
            mean_queue_wait,
            p50_queue_wait: percentile(&queue_waits, 50.0),
            p95_queue_wait: percentile(&queue_waits, 95.0),
            p99_queue_wait: percentile(&queue_waits, 99.0),
            deadline_miss_rate: frac(deadline_misses + sheds),
            shed_rate: frac(sheds),
            mean_delivered_accuracy: if submitted == 0 {
                0.0
            } else {
                delivered / submitted as f64
            },
            config_histogram: histogram,
        }
    }

    /// Total requests shed for any reason.
    pub fn shed(&self) -> usize {
        self.shed_queue_full + self.shed_no_slack + self.shed_late
    }

    /// `completed + shed() == submitted` — no request vanished.
    pub fn accounts_for_all_submissions(&self) -> bool {
        self.completed + self.shed() == self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> LutConfig {
        LutConfig::Swin {
            depths: [2, 2, 6, 2],
            bottleneck_in_channels: 512,
        }
    }

    fn record(latency: f64, met: bool, accuracy: f64) -> Outcome {
        Outcome::Completed(RequestRecord {
            latency,
            queue_wait: latency / 2.0,
            met_deadline: met,
            accuracy,
            config: config(),
        })
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn aggregation_counts_everything() {
        let outcomes = vec![
            record(0.010, true, 0.9),
            record(0.020, true, 1.0),
            record(0.500, false, 1.0), // late: delivers 0
            Outcome::Shed(ShedReason::QueueFull),
            Outcome::Shed(ShedReason::SlackBelowCheapest),
        ];
        let m = ServerMetrics::from_outcomes(&outcomes);
        assert_eq!(m.submitted, 5);
        assert_eq!(m.completed, 3);
        assert_eq!(m.shed(), 2);
        assert!(m.accounts_for_all_submissions());
        assert_eq!(m.deadline_misses, 1);
        // 1 miss + 2 sheds out of 5 offered.
        assert!((m.deadline_miss_rate - 0.6).abs() < 1e-12);
        assert!((m.shed_rate - 0.4).abs() < 1e-12);
        // (0.9 + 1.0 + 0 + 0 + 0) / 5
        assert!((m.mean_delivered_accuracy - 0.38).abs() < 1e-12);
        assert_eq!(m.config_histogram, vec![(config(), 3)]);
        assert_eq!(m.p99_latency, 0.5);
        // queue_wait is latency/2 in the fixture, so the percentiles track.
        assert_eq!(m.p50_queue_wait, 0.010);
        assert_eq!(m.p95_queue_wait, 0.250);
        assert_eq!(m.p99_queue_wait, 0.250);
        assert!((m.mean_queue_wait - (0.005 + 0.010 + 0.250) / 3.0).abs() < 1e-12);
    }
}
