//! # vit-trace — zero-cost-when-disabled observability
//!
//! A std-only tracing layer for the DRT engine stack. Every layer of the
//! repro (tensor buffer pool, wavefront executor, engine, server) records
//! typed [`TraceEvent`]s into a pluggable [`TraceSink`]:
//!
//! - [`EventKind::Node`] — one graph-node execution span: node name, op
//!   kind, start/end nanoseconds, analytical FLOPs and first-order DRAM
//!   bytes (both matching `vit-profiler`'s static model, so traced totals
//!   cross-check against static counts exactly).
//! - [`EventKind::Phase`] — engine/server phases: LUT selection, graph
//!   build, weight materialization, whole-graph runs, serve queue wait and
//!   execution.
//! - [`EventKind::Sched`] — wavefront scheduler observations: spawn→start
//!   latency and ready-set depth per node.
//! - [`EventKind::Counter`] / [`EventKind::Instant`] — buffer-pool
//!   hit/miss/zeroing deltas, graph-cache hits/misses, admission and shed
//!   markers.
//!
//! ## The zero-cost contract
//!
//! Recorders gate *all* tracing work — clock reads, string clones, event
//! construction — on [`TraceSink::enabled`]. [`NullSink`] (the default)
//! answers a constant `false`, so untraced hot paths pay exactly one
//! predictable virtual call per would-be event and allocate nothing.
//! `repro bench --trace` measures this: the NullSink A/A median delta must
//! stay under 2%.
//!
//! ## Determinism
//!
//! Events carry sink-assigned logical sequence numbers ([`TraceEvent::seq`])
//! rather than relying on wall-clock ordering, and recording never changes
//! what the executor computes — differential tests pin bit-identical
//! inference outputs with tracing on and off at 1 and 8 threads.
//!
//! ## Consuming traces
//!
//! Three sinks ship in the crate: [`NullSink`] (disabled), a bounded
//! [`RingBufferSink`] that keeps the most recent events for export, and an
//! aggregating [`StatsSink`] with O(distinct keys) memory for always-on
//! metrics. [`chrome_trace_json`] serializes events as a Perfetto-loadable
//! chrome://tracing document; [`FlameSummary`] renders a per-op-kind
//! flame table. [`validate`] checks a stream's well-formedness (unique
//! seqs, non-negative durations, stack-like span nesting per thread).

#![warn(missing_docs)]

mod event;
mod export;
mod sink;

pub use event::{validate, EventKind, Phase, RecoveryAction, TraceEvent, TraceFormatError};
pub use export::{chrome_trace_json, Agg, AggRow, FlameSummary};
pub use sink::{now_ns, null_sink, thread_ord, NullSink, RingBufferSink, StatsSink, TraceSink};
