/root/repo/target/release/deps/new_ops-819ec190fbcd512a.d: crates/graph/tests/new_ops.rs

/root/repo/target/release/deps/new_ops-819ec190fbcd512a: crates/graph/tests/new_ops.rs

crates/graph/tests/new_ops.rs:
