//! The dense [`Tensor`] type: a row-major `f32` array with a dynamic shape.

use crate::error::{invalid_argument, invalid_shape, shape_mismatch, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense, row-major, dynamically-shaped `f32` tensor.
///
/// This is the single numeric container used by every kernel in the
/// reproduction. Activations use the NCHW layout convention
/// (`[batch, channels, height, width]`); sequence data uses
/// `[batch, tokens, features]`; weights use whatever layout their consuming
/// kernel documents.
///
/// # Examples
///
/// ```
/// use vit_tensor::Tensor;
///
/// # fn main() -> Result<(), vit_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A full dump would be enormous; show shape plus a small data prefix.
        let prefix: Vec<f32> = self.data.iter().copied().take(8).collect();
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("len", &self.data.len())
            .field("data_prefix", &prefix)
            .finish()
    }
}

fn numel_of(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use vit_tensor::Tensor;
    /// let t = Tensor::zeros(&[2, 3]);
    /// assert_eq!(t.numel(), 6);
    /// assert!(t.data().iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel_of(shape)],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel_of(shape)],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] when `data.len()` does
    /// not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if data.len() != numel_of(shape) {
            return Err(shape_mismatch(
                "from_vec",
                format!(
                    "buffer of {} elements for shape {:?}",
                    numel_of(shape),
                    shape
                ),
                format!("{} elements", data.len()),
            ));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor with values drawn uniformly from `[lo, hi)` using a
    /// deterministic seed.
    ///
    /// All synthetic weights in the reproduction are produced through this
    /// constructor so that every experiment is bit-reproducible.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..numel_of(shape))
            .map(|_| rng.gen_range(lo..hi))
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor with a Kaiming-style fan-in scaled uniform
    /// initialization, the default for synthetic convolution and linear
    /// weights.
    ///
    /// `fan_in` is the number of input connections per output element.
    pub fn rand_kaiming(shape: &[usize], fan_in: usize, seed: u64) -> Self {
        let bound = if fan_in == 0 {
            0.0
        } else {
            (6.0 / fan_in as f32).sqrt()
        };
        Self::rand_uniform(shape, -bound, bound, seed)
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the backing buffer in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row-major linear offset of a multidimensional index.
    ///
    /// # Panics
    ///
    /// Panics when `idx.len() != self.rank()` or any coordinate is out of
    /// bounds (debug-friendly; hot kernels index the raw buffer directly).
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&x, &d)) in idx.iter().zip(self.shape.iter()).enumerate() {
            debug_assert!(x < d, "index {x} out of bounds for dim {i} of size {d}");
            off = off * d + x;
        }
        off
    }

    /// Value at a multidimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the value at a multidimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] when the element counts
    /// differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        if numel_of(shape) != self.numel() {
            return Err(shape_mismatch(
                "reshape",
                format!("shape with {} elements", self.numel()),
                format!("{:?} ({} elements)", shape, numel_of(shape)),
            ));
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::InvalidShape`] for tensors that are not
    /// rank 2.
    pub fn transpose2(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(invalid_shape(
                "transpose2",
                format!("expected rank 2, got {:?}", self.shape),
            ));
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Permutes the dimensions of the tensor.
    ///
    /// `perm` must be a permutation of `0..rank`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::InvalidArgument`] when `perm` is not a
    /// valid permutation.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(invalid_argument(
                "permute",
                format!("perm length {} != rank {}", perm.len(), self.rank()),
            ));
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(invalid_argument(
                    "permute",
                    format!("{perm:?} is not a permutation"),
                ));
            }
            seen[p] = true;
        }
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut out = Tensor::zeros(&new_shape);
        // Strides of the source tensor.
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.shape[i + 1];
        }
        let mut idx = vec![0usize; self.rank()];
        for out_off in 0..out.numel() {
            // Decompose out_off into the permuted index, then map back.
            let mut rem = out_off;
            for (i, &d) in new_shape.iter().enumerate().rev() {
                idx[i] = rem % d;
                rem /= d;
            }
            let mut src_off = 0;
            for (i, &p) in perm.iter().enumerate() {
                src_off += idx[i] * strides[p];
            }
            out.data[out_off] = self.data[src_off];
        }
        Ok(out)
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(shape_mismatch(
                "add",
                format!("{:?}", self.shape),
                format!("{:?}", other.shape),
            ));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Element-wise multiplication by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Maximum absolute value (0.0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Index of the maximum element along the channel axis of an NCHW tensor,
    /// producing an `[n, h, w]` tensor of class indices stored as `f32`.
    ///
    /// This is the final step of a semantic-segmentation head: converting
    /// per-class logits into a label map.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::InvalidShape`] when the tensor is not
    /// rank 4.
    pub fn argmax_channels(&self) -> Result<Tensor> {
        if self.rank() != 4 {
            return Err(invalid_shape(
                "argmax_channels",
                format!("expected NCHW rank-4 tensor, got {:?}", self.shape),
            ));
        }
        let (n, c, h, w) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        let mut out = Tensor::zeros(&[n, h, w]);
        for b in 0..n {
            for y in 0..h {
                for x in 0..w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_c = 0usize;
                    for ch in 0..c {
                        let v = self.data[((b * c + ch) * h + y) * w + x];
                        if v > best {
                            best = v;
                            best_c = ch;
                        }
                    }
                    out.data[(b * h + y) * w + x] = best_c as f32;
                }
            }
        }
        Ok(out)
    }

    /// Concatenates tensors along the leading (batch) axis.
    ///
    /// Every part must have the same rank and identical trailing dimensions;
    /// the result's leading dimension is the sum of the parts' leading
    /// dimensions. Data is copied in order, so stacking N `[1, C, H, W]`
    /// images yields the exact `[N, C, H, W]` buffer a batch-N kernel
    /// expects.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::InvalidArgument`] for an empty slice and
    /// [`crate::TensorError::ShapeMismatch`] when trailing dimensions differ.
    pub fn stack_batch(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or_else(|| {
            invalid_argument("stack_batch", "cannot stack an empty slice of tensors")
        })?;
        if first.rank() == 0 {
            return Err(invalid_shape(
                "stack_batch",
                "rank-0 tensors have no batch axis",
            ));
        }
        let trailing = &first.shape[1..];
        let mut batch = 0usize;
        for p in parts {
            if p.rank() != first.rank() || &p.shape[1..] != trailing {
                return Err(shape_mismatch(
                    "stack_batch",
                    format!("trailing dims {trailing:?}"),
                    format!("{:?}", p.shape),
                ));
            }
            batch += p.shape[0];
        }
        let mut shape = first.shape.clone();
        shape[0] = batch;
        let mut data = Vec::with_capacity(numel_of(&shape));
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor { shape, data })
    }

    /// Splits the leading (batch) axis into per-sample tensors of leading
    /// dimension 1.
    ///
    /// The inverse of [`Tensor::stack_batch`] over single-sample parts: each
    /// returned tensor is a contiguous copy of one batch entry with shape
    /// `[1, ...trailing]`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::InvalidShape`] for rank-0 tensors.
    pub fn split_batch(&self) -> Result<Vec<Tensor>> {
        if self.rank() == 0 {
            return Err(invalid_shape(
                "split_batch",
                "rank-0 tensors have no batch axis",
            ));
        }
        let batch = self.shape[0];
        let stride: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = 1;
        Ok((0..batch)
            .map(|b| Tensor {
                shape: shape.clone(),
                data: self.data[b * stride..(b + 1) * stride].to_vec(),
            })
            .collect())
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert_eq!(t.rank(), 3);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[3, 4]);
        t.set(&[2, 1], 7.5);
        assert_eq!(t.at(&[2, 1]), 7.5);
        assert_eq!(t.data()[2 * 4 + 1], 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose2_correct() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose2().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), 4.0);
        assert_eq!(tt.at(&[2, 0]), 3.0);
    }

    #[test]
    fn permute_matches_transpose_for_2d() {
        let t = Tensor::rand_uniform(&[4, 7], -1.0, 1.0, 3);
        let a = t.transpose2().unwrap();
        let b = t.permute(&[1, 0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn permute_nchw_to_nhwc_round_trip() {
        let t = Tensor::rand_uniform(&[2, 3, 4, 5], -1.0, 1.0, 11);
        let nhwc = t.permute(&[0, 2, 3, 1]).unwrap();
        assert_eq!(nhwc.shape(), &[2, 4, 5, 3]);
        let back = nhwc.permute(&[0, 3, 1, 2]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn permute_rejects_bad_perm() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
        assert!(t.permute(&[0, 2]).is_err());
    }

    #[test]
    fn add_requires_same_shape() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        let c = a.add(&b).unwrap();
        assert!(c.data().iter().all(|&v| v == 2.0));
        assert!(a.add(&Tensor::ones(&[4])).is_err());
    }

    #[test]
    fn rand_is_deterministic() {
        let a = Tensor::rand_uniform(&[16], -1.0, 1.0, 42);
        let b = Tensor::rand_uniform(&[16], -1.0, 1.0, 42);
        let c = Tensor::rand_uniform(&[16], -1.0, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kaiming_bound_scales_with_fan_in() {
        let small_fan = Tensor::rand_kaiming(&[64], 4, 1);
        let big_fan = Tensor::rand_kaiming(&[64], 4096, 1);
        assert!(small_fan.abs_max() > big_fan.abs_max());
    }

    #[test]
    fn argmax_channels_picks_largest_logit() {
        // 1 batch, 3 classes, 1x2 image.
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.0, 0.3, 0.2], &[1, 3, 1, 2]).unwrap();
        // pixel (0,0): logits [0.1, 0.8, 0.3] -> class 1
        // pixel (0,1): logits [0.9, 0.0, 0.2] -> class 0
        let m = t.argmax_channels().unwrap();
        assert_eq!(m.shape(), &[1, 1, 2]);
        assert_eq!(m.at(&[0, 0, 0]), 1.0);
        assert_eq!(m.at(&[0, 0, 1]), 0.0);
    }

    #[test]
    fn stack_batch_concatenates_leading_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[1, 2, 2]).unwrap();
        let s = Tensor::stack_batch(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        // Round trip: splitting recovers the originals bit-for-bit.
        let parts = s.split_batch().unwrap();
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn stack_batch_sums_multi_sample_parts() {
        let a = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, 1);
        let b = Tensor::rand_uniform(&[3, 3], -1.0, 1.0, 2);
        let s = Tensor::stack_batch(&[a, b]).unwrap();
        assert_eq!(s.shape(), &[5, 3]);
    }

    #[test]
    fn stack_batch_rejects_mismatched_and_empty() {
        let a = Tensor::zeros(&[1, 2, 2]);
        let b = Tensor::zeros(&[1, 3, 2]);
        assert!(Tensor::stack_batch(&[a, b]).is_err());
        assert!(Tensor::stack_batch(&[]).is_err());
    }

    #[test]
    fn split_batch_yields_leading_one_samples() {
        let t = Tensor::rand_uniform(&[4, 2, 3], -1.0, 1.0, 9);
        let parts = t.split_batch().unwrap();
        assert_eq!(parts.len(), 4);
        for (b, p) in parts.iter().enumerate() {
            assert_eq!(p.shape(), &[1, 2, 3]);
            assert_eq!(p.data(), &t.data()[b * 6..(b + 1) * 6]);
        }
    }

    #[test]
    fn debug_is_nonempty_and_shows_shape() {
        let t = Tensor::zeros(&[2, 2]);
        let s = format!("{t:?}");
        assert!(s.contains("shape"));
        assert!(s.contains('2'));
    }
}
