/root/repo/target/release/deps/parking_lot-9db7e3b90217d35b.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-9db7e3b90217d35b.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
