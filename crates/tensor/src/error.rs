//! Error types for tensor operations.

use std::fmt;

/// Error produced by fallible tensor operations.
///
/// Every public kernel in this crate validates its arguments and returns
/// `Result<_, TensorError>` rather than panicking, so that the graph
/// interpreter in `vit-graph` can surface shape bugs with full context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Operation that was attempted.
        op: &'static str,
        /// Human-readable description of the expectation that failed.
        expected: String,
        /// The shape (or shapes) actually provided.
        got: String,
    },
    /// A shape argument was structurally invalid (e.g. wrong rank, zero dim).
    InvalidShape {
        /// Operation that was attempted.
        op: &'static str,
        /// What was wrong.
        msg: String,
    },
    /// A numeric argument was out of its valid range.
    InvalidArgument {
        /// Operation that was attempted.
        op: &'static str,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, expected, got } => {
                write!(f, "{op}: shape mismatch: expected {expected}, got {got}")
            }
            TensorError::InvalidShape { op, msg } => write!(f, "{op}: invalid shape: {msg}"),
            TensorError::InvalidArgument { op, msg } => write!(f, "{op}: invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

pub(crate) fn shape_mismatch(
    op: &'static str,
    expected: impl Into<String>,
    got: impl Into<String>,
) -> TensorError {
    TensorError::ShapeMismatch {
        op,
        expected: expected.into(),
        got: got.into(),
    }
}

pub(crate) fn invalid_shape(op: &'static str, msg: impl Into<String>) -> TensorError {
    TensorError::InvalidShape {
        op,
        msg: msg.into(),
    }
}

pub(crate) fn invalid_argument(op: &'static str, msg: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument {
        op,
        msg: msg.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = shape_mismatch("matmul", "[2, 3]", "[4, 5]");
        let s = err.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
