/root/repo/target/release/examples/quickstart-d0a4b9d0323956af.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d0a4b9d0323956af: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
