/root/repo/target/debug/deps/proptests-40510bc6dec6c8cb.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-40510bc6dec6c8cb: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
