//! The differential chaos corpus: armed fault injection against the real
//! engine, proving the detection layer's core guarantee — an injected
//! corruption is either caught by an output guard (the run errors) or had
//! no effect at all (the output is bit-identical to a clean run). No
//! corrupted tensor is ever returned to a caller.

use std::sync::Arc;
use vit_drt::{DrtEngine, EngineCore, EngineError};
use vit_fault::{FaultCtx, FaultError, FaultKind, FaultPlan, GuardConfig};
use vit_graph::{ExecBackend, ExecOptions, ExecScratch, RunContext};
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};
use vit_tensor::Tensor;

fn shared_core() -> Arc<EngineCore> {
    let engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    engine.core().clone()
}

fn image(seed: u64) -> Tensor {
    Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, seed)
}

/// A plan that injects exactly one fault kind on every draw.
fn only(kind: FaultKind, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none(seed);
    match kind {
        FaultKind::Crash => plan.crash_rate = 1.0,
        FaultKind::BitFlip => plan.bitflip_rate = 1.0,
        FaultKind::Stall => {
            plan.stall_rate = 1.0;
            plan.stall_factor = 1.25;
        }
        FaultKind::PlanReplay => plan.replay_rate = 1.0,
        _ => unreachable!("test covers the four known kinds"),
    }
    plan
}

fn ctx_with(backend: ExecBackend, fault: FaultCtx) -> RunContext {
    RunContext::default()
        .with_exec(ExecOptions::threaded(1).with_backend(backend))
        .with_fault(fault)
}

/// Every armed bit-flip run either trips a guard (`ExecError::Fault` with
/// `GuardTripped`) or returns logits bit-identical to the clean run — on
/// both the interpreting and the plan-replay backend, across a corpus of
/// runs. This is the acceptance criterion for the detection layer.
#[test]
fn injected_bitflips_never_escape_the_guards() {
    let core = shared_core();
    let mut scratch = ExecScratch::new();
    let img = image(11);
    let entry = core.lut().entries().last().unwrap().clone();

    for backend in [ExecBackend::Interpret, ExecBackend::Plan] {
        let clean = core
            .run(
                &mut scratch,
                &img,
                entry.clone(),
                true,
                &ctx_with(backend, FaultCtx::new().with_guard(GuardConfig::default())),
            )
            .expect("clean run succeeds");

        let mut caught = 0;
        for run in 0..8u64 {
            let plan = only(FaultKind::BitFlip, 0xC0FFEE ^ run);
            let fctx = FaultCtx::new()
                .with_guard(GuardConfig::default())
                .armed(plan, run, 0);
            match core.run(
                &mut scratch,
                &img,
                entry.clone(),
                true,
                &ctx_with(backend, fctx),
            ) {
                Err(e) => {
                    let fault = e.as_fault().expect("chaos failure is typed");
                    assert!(
                        matches!(fault, FaultError::GuardTripped { .. }),
                        "bit-flip must surface as a guard trip, got {fault}"
                    );
                    caught += 1;
                }
                Ok(inf) => {
                    // The flip "missed" (no detectably corruptible element
                    // at the drawn site): the output must be exactly the
                    // clean result, never a silently corrupted one.
                    assert_eq!(
                        inf.logits.data(),
                        clean.logits.data(),
                        "an undetected run must be bit-identical to clean ({backend:?})"
                    );
                }
            }
        }
        assert!(
            caught > 0,
            "corpus must catch at least one injected flip on {backend:?}"
        );
    }
}

/// Injected crashes kill the run before any output exists, and the error
/// classifies as a crash fault.
#[test]
fn injected_crashes_are_typed_failures() {
    let core = shared_core();
    let mut scratch = ExecScratch::new();
    let entry = core.lut().entries().first().unwrap().clone();
    let fctx =
        FaultCtx::new()
            .with_guard(GuardConfig::default())
            .armed(only(FaultKind::Crash, 7), 3, 0);
    let err = core
        .run(
            &mut scratch,
            &image(5),
            entry,
            true,
            &ctx_with(ExecBackend::Interpret, fctx),
        )
        .unwrap_err();
    assert!(matches!(
        err.as_fault(),
        Some(FaultError::InjectedCrash { run: 3 })
    ));
    assert_eq!(err.to_string(), "engine fault: injected crash killed run 3");
}

/// Replay failures only exist on the plan backend: the same armed context
/// fails a plan-backed run but leaves an interpreted run untouched — the
/// mechanism behind the server's plan → interpret fallback.
#[test]
fn replay_failure_is_plan_backend_only() {
    let core = shared_core();
    let mut scratch = ExecScratch::new();
    let entry = core.lut().entries().first().unwrap().clone();
    let img = image(9);
    let plan = only(FaultKind::PlanReplay, 21);
    let arm = || {
        FaultCtx::new()
            .with_guard(GuardConfig::default())
            .armed(plan, 4, 0)
    };
    let err = core
        .run(
            &mut scratch,
            &img,
            entry.clone(),
            true,
            &ctx_with(ExecBackend::Plan, arm()),
        )
        .unwrap_err();
    assert!(matches!(
        err.as_fault(),
        Some(FaultError::InjectedReplayFailure { run: 4 })
    ));
    // Same fault context, interpreting backend: the fault cannot fire.
    core.run(
        &mut scratch,
        &img,
        entry,
        true,
        &ctx_with(ExecBackend::Interpret, arm()),
    )
    .expect("interpreter is immune to replay faults");
}

/// An injected stall slows the run but never changes its output.
#[test]
fn stalls_preserve_outputs() {
    let core = shared_core();
    let mut scratch = ExecScratch::new();
    let entry = core.lut().entries().first().unwrap().clone();
    let img = image(13);
    let clean = core
        .run(
            &mut scratch,
            &img,
            entry.clone(),
            true,
            &ctx_with(ExecBackend::Interpret, FaultCtx::default()),
        )
        .unwrap();
    let fctx =
        FaultCtx::new()
            .with_guard(GuardConfig::default())
            .armed(only(FaultKind::Stall, 17), 0, 0);
    let stalled = core
        .run(
            &mut scratch,
            &img,
            entry,
            true,
            &ctx_with(ExecBackend::Interpret, fctx),
        )
        .expect("a stall is a slowdown, not a failure");
    assert_eq!(stalled.logits.data(), clean.logits.data());
    assert_eq!(stalled.label_map.data(), clean.label_map.data());
}

/// The threaded server self-heals: with crash injection and degraded
/// retry, the completion/failure/retry counters match exactly what the
/// deterministic fault plan prescribes — replayed here directly from the
/// plan's own draws, independent of thread interleaving.
#[test]
fn threaded_server_matches_the_plan_prescribed_outcomes() {
    use std::time::{Duration, Instant};
    use vit_serve::{Calibration, InferenceRequest, RecoveryPolicy, Server, ServerConfig};

    const SPU: f64 = 1e7; // minutes of synthetic slack: deadlines never bind
    const N: u64 = 24;
    const MAX_RETRIES: u32 = 2;
    let mut plan = FaultPlan::none(0xFA07);
    plan.crash_rate = 0.5; // crash-only: every drawn fault is a typed crash

    // Replay the plan's draws to derive the exact expected counters: a
    // request completes at its first clean attempt, or fails after
    // MAX_RETRIES re-attempts.
    let (mut exp_completed, mut exp_failed) = (0usize, 0usize);
    let (mut exp_faults, mut exp_retries, mut exp_degraded) = (0usize, 0usize, 0usize);
    for seq in 0..N {
        let mut attempt = 0u32;
        loop {
            if plan.decide(seq, attempt).is_none() {
                exp_completed += 1;
                exp_retries += attempt as usize;
                if attempt > 0 {
                    exp_degraded += 1;
                }
                break;
            }
            exp_faults += 1;
            if attempt >= MAX_RETRIES {
                exp_failed += 1;
                exp_retries += attempt as usize;
                break;
            }
            attempt += 1;
        }
    }
    assert!(
        exp_faults > 0 && exp_completed > 0,
        "seed exercises both paths"
    );

    let core = shared_core();
    let srv = Server::start(
        Arc::clone(&core),
        Calibration::from_secs_per_unit(SPU),
        ServerConfig::builder()
            .workers(2)
            .fault(plan)
            .recovery(RecoveryPolicy::DegradedRetry {
                max_retries: MAX_RETRIES,
            })
            // High enough that persistent crashes never open every
            // breaker and start rejecting submissions mid-test.
            .breaker_threshold(usize::MAX)
            .build()
            .expect("chaos config validates"),
    );
    for _ in 0..N {
        let admission = srv
            .submit(InferenceRequest::new(
                image(3),
                Instant::now() + Duration::from_secs_f64(20.0 * SPU),
                ResourceKind::GpuTime,
            ))
            .expect("healthy server accepts");
        assert!(admission.is_admitted());
    }
    let m = srv.shutdown();
    assert!(m.accounts_for_all_submissions());
    assert_eq!(m.submitted, N as usize);
    assert_eq!(m.completed, exp_completed);
    assert_eq!(m.fault_failures, exp_failed);
    assert_eq!(m.faults_seen, exp_faults);
    assert_eq!(m.retries, exp_retries);
    assert_eq!(m.degraded_completions, exp_degraded);
    if exp_failed > 0 {
        assert_eq!(
            m.failure_histogram,
            vec![(vit_serve::FailureReason::Crash, exp_failed)]
        );
    }
}

/// Persistent faults open a worker's circuit breaker (observable as typed
/// recovery events in the trace), and a fully-unhealthy server rejects
/// new submissions as an error, not a shed.
#[test]
fn persistent_faults_open_the_circuit_breaker() {
    use std::time::{Duration, Instant};
    use vit_serve::{
        Calibration, FailureReason, InferenceRequest, RecoveryPolicy, Server, ServerConfig,
        SubmitError,
    };
    use vit_trace::{EventKind, RecoveryAction, RingBufferSink, TraceSink};

    const SPU: f64 = 1e7;
    let mut plan = FaultPlan::none(0xB0B0);
    plan.crash_rate = 1.0; // every attempt crashes

    let core = shared_core();
    let sink = Arc::new(RingBufferSink::new(1 << 14));
    let srv = Server::start_with(
        Arc::clone(&core),
        Calibration::from_secs_per_unit(SPU),
        ServerConfig::builder()
            .workers(1)
            .fault(plan)
            .recovery(RecoveryPolicy::FailFast)
            .breaker_threshold(2)
            .build()
            .expect("chaos config validates"),
        RunContext::default()
            .with_exec(ExecOptions::threaded(1))
            .with_sink(sink.clone() as Arc<dyn TraceSink>),
    );
    let mut accepted = 0usize;
    let mut unhealthy = 0usize;
    for _ in 0..8 {
        match srv.submit(InferenceRequest::new(
            image(3),
            Instant::now() + Duration::from_secs_f64(20.0 * SPU),
            ResourceKind::GpuTime,
        )) {
            Ok(admission) => {
                assert!(
                    admission.is_admitted(),
                    "nothing sheds with minutes of slack"
                );
                accepted += 1;
            }
            Err(SubmitError::AllWorkersUnhealthy { workers }) => {
                assert_eq!(workers, 1);
                unhealthy += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        // Give the lone worker a chance to fail and trip its breaker.
        std::thread::sleep(Duration::from_millis(20));
    }
    let m = srv.shutdown();
    // Unhealthy rejections are errors, not outcomes; everything accepted
    // dispatched and failed fast as a typed crash.
    assert_eq!(m.submitted, accepted);
    assert!(m.accounts_for_all_submissions());
    assert_eq!(m.completed, 0);
    assert_eq!(m.fault_failures, accepted);
    if accepted > 0 {
        assert_eq!(m.failure_histogram, vec![(FailureReason::Crash, accepted)]);
        assert_eq!(m.retries, 0, "fail fast never retries");
    }
    let events = sink.events();
    let action_count = |a: RecoveryAction| {
        events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Fault { action, .. } if *action == a))
            .count()
    };
    assert_eq!(action_count(RecoveryAction::Detected), m.faults_seen);
    if accepted >= 2 {
        assert!(
            action_count(RecoveryAction::CircuitOpen) >= 1,
            "two consecutive failures must open the breaker"
        );
        assert!(unhealthy > 0, "an all-open server rejects new work");
    }
}

/// The chaos corpus is deterministic: the same armed context produces the
/// same outcome (and the same error text) twice.
#[test]
fn armed_runs_are_reproducible() {
    let core = shared_core();
    let mut scratch = ExecScratch::new();
    let entry = core.lut().entries().last().unwrap().clone();
    let img = image(23);
    let outcome = |scratch: &mut ExecScratch| {
        let fctx = FaultCtx::new().with_guard(GuardConfig::default()).armed(
            only(FaultKind::BitFlip, 0xDEAD),
            6,
            1,
        );
        core.run(
            scratch,
            &img,
            entry.clone(),
            true,
            &ctx_with(ExecBackend::Interpret, fctx),
        )
        .map(|inf| inf.logits.data().to_vec())
        .map_err(|e: EngineError| e.to_string())
    };
    assert_eq!(outcome(&mut scratch), outcome(&mut scratch));
}
