/root/repo/target/debug/deps/vit_graph-7f62bf6ace9fd2c3.d: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

/root/repo/target/debug/deps/vit_graph-7f62bf6ace9fd2c3: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

crates/graph/src/lib.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/op.rs:
