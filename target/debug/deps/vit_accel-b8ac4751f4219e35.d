/root/repo/target/debug/deps/vit_accel-b8ac4751f4219e35.d: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/vit_accel-b8ac4751f4219e35: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/config.rs:
crates/accel/src/dse.rs:
crates/accel/src/sim.rs:
