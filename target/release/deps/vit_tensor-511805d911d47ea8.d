/root/repo/target/release/deps/vit_tensor-511805d911d47ea8.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/release/deps/libvit_tensor-511805d911d47ea8.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/resize.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
