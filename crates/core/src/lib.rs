//! # vit-drt
//!
//! The dynamic real-time (DRT) inference engine of the reproduction
//! (paper §IV, Figure 8): given an image and a per-inference resource
//! budget, pick the accuracy-maximizing execution path of a pretrained
//! model that fits the budget — one set of shared weights, no retraining —
//! run it, and report the output with a precomputed accuracy estimate.
//!
//! * [`Lut`] — the Pareto look-up table of execution paths (serializable).
//! * [`DrtEngine`] — the runtime engine with a graph cache and executor.
//! * [`BudgetTrace`] — synthetic time-varying budget streams.
//! * [`baselines`] — trained-model switching and input-dependent early exit.
//!
//! # Examples
//!
//! ```no_run
//! use vit_drt::{BudgetTrace, DrtEngine, TracePattern};
//! use vit_models::SegFormerVariant;
//! use vit_resilience::{ResourceKind, Workload};
//! use vit_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = DrtEngine::segformer(
//!     SegFormerVariant::b0(), Workload::SegFormerAde, (64, 64),
//!     ResourceKind::GpuTime)?;
//! let full = engine.max_resource();
//! let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
//! for budget in BudgetTrace::new(
//!     TracePattern::Sinusoid { min: 0.6, max: 1.0, period: 8 }, 0).take(8) {
//!     let out = engine.infer(&image, budget * full)?;
//!     println!("budget {budget:.2} -> est. mIoU {:.3}", out.norm_miou_estimate);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod budget;
pub mod engine;
pub mod json;
pub mod lut;

pub use baselines::{EarlyExitBaseline, StaticModel, TrainedFamily};
pub use budget::{BudgetTrace, TracePattern};
pub use engine::{DrtEngine, EngineCore, EngineError, EngineFamily, Inference};
pub use json::JsonParseError;
pub use lut::{BudgetTooSmall, Lut, LutConfig, LutEntry, LutError};
pub use vit_graph::{ExecOptions, RunContext};

/// The types almost every consumer of the engine needs, in one import:
///
/// ```
/// use vit_drt::prelude::*;
/// ```
pub mod prelude {
    pub use crate::budget::{BudgetTrace, TracePattern};
    pub use crate::engine::{DrtEngine, EngineCore, EngineError, EngineFamily, Inference};
    pub use crate::lut::{Lut, LutConfig, LutEntry};
    pub use vit_graph::{ExecOptions, RunContext};
    pub use vit_trace::{NullSink, RingBufferSink, StatsSink, TraceSink};
}
