//! One test per lint code: each constructs a minimally-broken graph or
//! LUT (through the unchecked escape hatches where the public builders
//! make the breakage unconstructible) and asserts that exactly the
//! expected diagnostic fires.

use std::sync::OnceLock;
use vit_accel::AccelConfig;
use vit_drt::{DrtEngine, EngineFamily, Lut};
use vit_graph::{Graph, LayerRole, NodeId, Op};
use vit_profiler::Profile;
use vit_resilience::{ResourceKind, Workload};
use vit_serve::SchedulePolicy;
use vit_verify::{
    verify_accel_mapping, verify_costs, verify_graph, verify_lut, Code, Diagnostic, LutContext,
    Severity, VerifyOptions,
};

fn has(diags: &[Diagnostic], code: Code) -> bool {
    diags.iter().any(|d| d.code == code)
}

/// A small well-formed graph: input -> conv -> relu.
fn small_graph() -> Graph {
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 4, 8, 8]).expect("input");
    let c = g
        .add(
            "conv",
            Op::Conv2d {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                pad: (1, 1),
                groups: 1,
                bias: true,
            },
            LayerRole::Other,
            &[x],
        )
        .expect("conv");
    let r = g
        .add("relu", Op::Relu, LayerRole::Other, &[c])
        .expect("relu");
    g.set_output(r);
    g
}

/// The real SegFormer-B0 GPU-time LUT, built once and shared: the LUT
/// lint tests perturb copies of real rows rather than fabricating them.
fn b0_lut() -> &'static (Lut, LutContext) {
    static CELL: OnceLock<(Lut, LutContext)> = OnceLock::new();
    CELL.get_or_init(|| {
        let engine = DrtEngine::segformer(
            vit_models::SegFormerVariant::b0(),
            Workload::SegFormerAde,
            (64, 64),
            ResourceKind::GpuTime,
        )
        .expect("b0 engine builds");
        let ctx = LutContext::bare(
            EngineFamily::SegFormer(vit_models::SegFormerVariant::b0()),
            150,
            (64, 64),
        );
        (engine.lut().clone(), ctx)
    })
}

#[test]
fn v001_shape_mismatch_fires_on_edited_shape() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    nodes[1].shape = vec![1, 8, 9, 9]; // conv really produces [1, 8, 8, 8]
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    let diags = verify_graph(&broken);
    assert!(has(&diags, Code::ShapeMismatch), "{diags:?}");
    assert!(verify_graph(&g).is_empty(), "pristine graph must be clean");
}

#[test]
fn v002_bad_topology_fires_on_forward_edge() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    nodes[1].inputs = vec![NodeId::from_index(2)]; // conv consumes the later relu
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    assert!(has(&verify_graph(&broken), Code::BadTopology));
}

#[test]
fn v003_infer_failure_fires_on_incompatible_input() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    // A rank-1 input cannot feed a 2-D convolution.
    nodes[0].op = Op::Input { shape: vec![5] };
    nodes[0].shape = vec![5];
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    assert!(has(&verify_graph(&broken), Code::InferFailure));
}

#[test]
fn v004_duplicate_name_fires() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    nodes[2].name = "conv".to_string(); // now collides with node 1
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    assert!(has(&verify_graph(&broken), Code::DuplicateName));
}

#[test]
fn v005_missing_output_fires_and_is_a_warning() {
    let g = small_graph();
    let broken = Graph::from_raw_parts("test", g.nodes().to_vec(), g.input_ids().to_vec(), None);
    let diags = verify_graph(&broken);
    let d = diags
        .iter()
        .find(|d| d.code == Code::MissingOutput)
        .expect("V005 fires");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn v006_role_mismatch_fires_on_convless_fuse_group() {
    // A FuseConv group whose only member is a (parameterized) BatchNorm:
    // the paper's fuse-convolution aggregation would count zero conv FLOPs.
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 4, 8, 8]).expect("input");
    let bn = g
        .add("fuse.bn", Op::BatchNorm, LayerRole::FuseConv, &[x])
        .expect("bn");
    g.set_output(bn);
    assert!(has(&verify_graph(&g), Code::RoleMismatch));
}

#[test]
fn v006_role_mismatch_fires_on_attention_in_decoder() {
    let mut g = Graph::new("test");
    let q = g.input("q", &[1, 16, 32]).expect("q");
    let s = g
        .add(
            "decoder.sdpa",
            Op::Sdpa { heads: 4 },
            LayerRole::DecoderLinear { stage: 0 },
            &[q, q, q],
        )
        .expect("sdpa");
    g.set_output(s);
    assert!(has(&verify_graph(&g), Code::RoleMismatch));
}

#[test]
fn v010_dead_node_fires_on_unreachable_branch() {
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 4, 8, 8]).expect("input");
    let live = g
        .add("live", Op::Relu, LayerRole::Other, &[x])
        .expect("live");
    g.add("dead", Op::Gelu, LayerRole::Other, &[x])
        .expect("dead");
    g.set_output(live);
    let diags = verify_graph(&g);
    let d = diags
        .iter()
        .find(|d| d.code == Code::DeadNode)
        .expect("V010 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("unreachable") || !d.message.is_empty());
}

#[test]
fn v020_cost_mismatch_fires_on_edited_profile() {
    let g = small_graph();
    let mut profile = Profile::flops_only(&g);
    assert!(
        verify_costs(&g, &profile).is_empty(),
        "fresh profile is clean"
    );
    profile.layers[1].flops += 1;
    assert!(has(&verify_costs(&g, &profile), Code::CostMismatch));
}

#[test]
fn v021_pareto_nonmonotone_fires_on_swapped_rows() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    entries.swap(0, 1);
    let broken = Lut::from_entries_unchecked("swapped", entries);
    let diags = verify_lut(&broken, ctx, &VerifyOptions::default());
    assert!(has(&diags, Code::ParetoNonMonotone));
}

#[test]
fn v021_pareto_nonmonotone_fires_on_dominated_row() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    // Row 1 now costs more than row 0 but is no more accurate: dominated.
    entries[1].norm_miou = entries[0].norm_miou;
    let broken = Lut::from_entries_unchecked("dominated", entries);
    assert!(has(
        &verify_lut(&broken, ctx, &VerifyOptions::default()),
        Code::ParetoNonMonotone
    ));
}

#[test]
fn v022_non_finite_fires_on_nan_resource() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    entries[0].resource = f64::NAN;
    let broken = Lut::from_entries_unchecked("nan", entries);
    assert!(has(
        &verify_lut(&broken, ctx, &VerifyOptions::default()),
        Code::NonFinite
    ));
}

#[test]
fn v023_empty_lut_fires() {
    let (_, ctx) = b0_lut();
    let empty = Lut::from_entries_unchecked("empty", Vec::new());
    assert!(has(
        &verify_lut(&empty, ctx, &VerifyOptions::default()),
        Code::EmptyLut
    ));
}

#[test]
fn v024_budget_gap_fires_and_is_a_warning() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    let last = entries.len() - 1;
    entries[last].resource *= 100.0; // still sorted, but a 100x jump
    let broken = Lut::from_entries_unchecked("gapped", entries);
    let diags = verify_lut(&broken, ctx, &VerifyOptions::default());
    let d = diags
        .iter()
        .find(|d| d.code == Code::BudgetGap)
        .expect("V024 fires");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn v025_config_invalid_fires_on_wrong_family() {
    let (lut, _) = b0_lut();
    // SegFormer configs checked against a Swin deployment: every row fails.
    let swin_ctx = LutContext::bare(
        EngineFamily::Swin(vit_models::SwinVariant::tiny()),
        150,
        (64, 64),
    );
    let diags = verify_lut(lut, &swin_ctx, &VerifyOptions::default());
    assert!(has(&diags, Code::ConfigInvalid));
}

#[test]
fn v026_policy_infeasible_fires_on_low_floor_and_bad_static_index() {
    let (lut, ctx) = b0_lut();
    let mut ctx = ctx.clone();
    ctx.budget_floor = Some(lut.entries()[0].resource * 0.5);
    ctx.policies = vec![SchedulePolicy::Static { entry_index: 9999 }];
    let diags = verify_lut(lut, &ctx, &VerifyOptions::default());
    let hits = diags
        .iter()
        .filter(|d| d.code == Code::PolicyInfeasible)
        .count();
    assert!(hits >= 2, "both the floor and the index fire: {diags:?}");
}

#[test]
fn v027_norm_out_of_range_fires() {
    let (lut, ctx) = b0_lut();
    let mut entries = lut.entries().to_vec();
    entries[0].norm_miou = 1.5;
    let broken = Lut::from_entries_unchecked("oob", entries);
    assert!(has(
        &verify_lut(&broken, ctx, &VerifyOptions::default()),
        Code::NormOutOfRange
    ));
}

#[test]
fn v030_empty_tiling_fires_on_zero_channel_conv() {
    let g = small_graph();
    let mut nodes = g.nodes().to_vec();
    if let Op::Conv2d { out_channels, .. } = &mut nodes[1].op {
        *out_channels = 0;
    }
    nodes[1].shape = vec![1, 0, 8, 8];
    let broken = Graph::from_raw_parts("test", nodes, g.input_ids().to_vec(), g.output());
    let diags = verify_accel_mapping(
        &broken,
        &AccelConfig::accelerator_a(),
        &VerifyOptions::default(),
    );
    assert!(has(&diags, Code::EmptyTiling));
}

#[test]
fn v031_vector_underutilized_fires_on_degenerate_conv() {
    // c=1 against c0=32 and k=33 against a k0=32 datapath: combined lane
    // utilization (1/32) * (33/64) ~ 1.6%, below the 2% floor.
    let mut g = Graph::new("test");
    let x = g.input("in", &[1, 1, 8, 8]).expect("input");
    let c = g
        .add(
            "conv",
            Op::Conv2d {
                out_channels: 33,
                kernel: (1, 1),
                stride: (1, 1),
                pad: (0, 0),
                groups: 1,
                bias: false,
            },
            LayerRole::Other,
            &[x],
        )
        .expect("conv");
    g.set_output(c);
    let accel = AccelConfig::accelerator_a();
    assert_eq!(
        (accel.k0, accel.c0),
        (32, 32),
        "test assumes the 32x32 datapath"
    );
    let diags = verify_accel_mapping(&g, &accel, &VerifyOptions::default());
    let d = diags
        .iter()
        .find(|d| d.code == Code::VectorUnderutilized)
        .expect("V031 fires");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn every_code_documents_its_invariant() {
    for code in Code::ALL {
        assert!(!code.invariant().is_empty(), "{code} lacks an invariant");
    }
}
