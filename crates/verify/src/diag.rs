//! The diagnostics framework: typed lint codes, severities, spans, and a
//! [`Report`] that renders rustc-style human output or machine-readable
//! JSON.

use std::fmt;

/// Every lint the verifier can emit, each with a stable code, a fixed
/// severity, and a one-line invariant. Codes are grouped by pass:
/// `V00x` graph well-formedness, `V01x` liveness, `V02x` cost/LUT
/// soundness, `V03x` accelerator mapping, `V04x` plan equivalence,
/// `V05x` exec safety (parallel write-disjointness, reclamation
/// soundness, FP-determinism hazards, unsafe/indexing audit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// `V001` — a node's stored shape disagrees with re-running shape
    /// inference over its inputs.
    ShapeMismatch,
    /// `V002` — a structural edge invariant is broken: an input edge points
    /// at the node itself or a later node, an input/output id is out of
    /// range, or the graph input list names a non-input node.
    BadTopology,
    /// `V003` — shape inference fails outright for a node's operator and
    /// stored input shapes (wrong arity or incompatible shapes).
    InferFailure,
    /// `V004` — two nodes share a name, breaking weight sharing across
    /// dynamic execution paths.
    DuplicateName,
    /// `V005` — the graph has no output marked; nothing downstream can
    /// consume it.
    MissingOutput,
    /// `V006` — a decoder-role layer group is inconsistent with its
    /// operator classes (e.g. a `FuseConv` group with no convolution).
    RoleMismatch,
    /// `V010` — a node is unreachable from the graph output (and is not an
    /// input or an auxiliary head output): dead weight in every execution
    /// path.
    DeadNode,
    /// `V020` — per-node cost re-derivation disagrees with the profiler's
    /// summaries (totals, per-class partition, or encoder/decoder split).
    CostMismatch,
    /// `V021` — the Pareto front is not strictly monotone: a more expensive
    /// row is not strictly more accurate (or rows are unsorted).
    ParetoNonMonotone,
    /// `V022` — a LUT row carries a NaN or infinite number.
    NonFinite,
    /// `V023` — the LUT has no rows; the engine cannot serve from it.
    EmptyLut,
    /// `V024` — consecutive LUT rows leave a large relative budget gap, so
    /// budgets in the gap waste accuracy headroom.
    BudgetGap,
    /// `V025` — a `LutConfig` does not materialize into a well-formed graph
    /// for the engine's model family.
    ConfigInvalid,
    /// `V026` — a serve policy is infeasible against this LUT: a static
    /// policy indexes past the table, or the configured budget floor is
    /// below the cheapest execution path.
    PolicyInfeasible,
    /// `V027` — a normalized resource/accuracy value lies outside `(0, 1]`.
    NormOutOfRange,
    /// `V030` — a node maps to an empty accelerator tiling (a contraction
    /// with a zero dimension), which the simulator cannot schedule.
    EmptyTiling,
    /// `V031` — a contraction pads the vector lanes so heavily that MAC
    /// utilization falls below the configured floor.
    VectorUnderutilized,
    /// `V040` — a compiled plan's cost totals (FLOPs, parameters, DRAM
    /// bytes) disagree with the graph it was lowered from.
    PlanCostMismatch,
    /// `V041` — plan coverage is broken: a non-input graph node is covered
    /// by no plan record (neither as a record nor fused into one), covered
    /// twice, or a record names a node the graph does not have.
    PlanCoverage,
    /// `V042` — the plan's arena layout is unsound: two simultaneously
    /// live buffer ranges overlap, or a range exceeds the arena.
    PlanArenaOverlap,
    /// `V043` — a plan record's shapes or buffer wiring disagree with the
    /// graph: an output shape differs from the node's stored shape, a
    /// range's length differs from its shape's element count, or an input
    /// range is not the producing record's output range.
    PlanShapeMismatch,
    /// `V050` — a record's parallel chunk decomposition writes the same
    /// arena element from two chunks (write-write race under any pool
    /// with more than one worker).
    ChunkOverlap,
    /// `V051` — a record's chunk decomposition does not cover its whole
    /// output range, or a chunk escapes it: some elements are never
    /// written (stale reads downstream) or clobber a neighbor.
    ChunkGap,
    /// `V052` — a record's output range overlaps one of its own input
    /// ranges: the kernel would read elements it is concurrently
    /// overwriting (read-write race even single-threaded).
    ExecAlias,
    /// `V053` — the plan's recorded liveness frees a range before its
    /// last reader, frees the plan output, or frees a range no earlier
    /// record owns: reclamation could re-issue live memory.
    PrematureFree,
    /// `V054` — the wavefront scheduler's in-degree counter for a node
    /// disagrees with the graph's edges: the node can dispatch before an
    /// input is ready (read-before-write under some interleaving).
    SchedIndegree,
    /// `V055` — the wavefront scheduler's consumer counter for a node
    /// disagrees with the graph's reader count (+1 for the output): a
    /// buffer can be recycled while a reader is pending, or never
    /// recycled at all.
    SchedConsumers,
    /// `V056` — a record's decomposition declares FP reassociation, but
    /// its op maps to no kernel class with a registered tolerance bound
    /// (`vit_tensor::ops::reference::tolerance`): the record has left the
    /// bit-identity tier with no differential oracle to land on.
    FpReassociation,
    /// `V057` — an `unsafe` block in a `vit-tensor`/`vit-plan` hot path
    /// carries no `// SAFETY:` justification.
    UndocumentedUnsafe,
    /// `V058` — unchecked indexing (`get_unchecked`/`unwrap_unchecked`)
    /// in a hot path: out-of-bounds becomes UB instead of a panic.
    UncheckedIndex,
    /// `V059` — the debug shadow-access replay observed a violation the
    /// static exec-safety verdict did not predict (or vice versa): the
    /// analyzer and the runtime disagree about the plan's discipline.
    ShadowDivergence,
}

impl Code {
    /// All codes, in code order (for documentation and exhaustive tests).
    pub const ALL: [Code; 31] = [
        Code::ShapeMismatch,
        Code::BadTopology,
        Code::InferFailure,
        Code::DuplicateName,
        Code::MissingOutput,
        Code::RoleMismatch,
        Code::DeadNode,
        Code::CostMismatch,
        Code::ParetoNonMonotone,
        Code::NonFinite,
        Code::EmptyLut,
        Code::BudgetGap,
        Code::ConfigInvalid,
        Code::PolicyInfeasible,
        Code::NormOutOfRange,
        Code::EmptyTiling,
        Code::VectorUnderutilized,
        Code::PlanCostMismatch,
        Code::PlanCoverage,
        Code::PlanArenaOverlap,
        Code::PlanShapeMismatch,
        Code::ChunkOverlap,
        Code::ChunkGap,
        Code::ExecAlias,
        Code::PrematureFree,
        Code::SchedIndegree,
        Code::SchedConsumers,
        Code::FpReassociation,
        Code::UndocumentedUnsafe,
        Code::UncheckedIndex,
        Code::ShadowDivergence,
    ];

    /// The stable diagnostic code, e.g. `V001`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::ShapeMismatch => "V001",
            Code::BadTopology => "V002",
            Code::InferFailure => "V003",
            Code::DuplicateName => "V004",
            Code::MissingOutput => "V005",
            Code::RoleMismatch => "V006",
            Code::DeadNode => "V010",
            Code::CostMismatch => "V020",
            Code::ParetoNonMonotone => "V021",
            Code::NonFinite => "V022",
            Code::EmptyLut => "V023",
            Code::BudgetGap => "V024",
            Code::ConfigInvalid => "V025",
            Code::PolicyInfeasible => "V026",
            Code::NormOutOfRange => "V027",
            Code::EmptyTiling => "V030",
            Code::VectorUnderutilized => "V031",
            Code::PlanCostMismatch => "V040",
            Code::PlanCoverage => "V041",
            Code::PlanArenaOverlap => "V042",
            Code::PlanShapeMismatch => "V043",
            Code::ChunkOverlap => "V050",
            Code::ChunkGap => "V051",
            Code::ExecAlias => "V052",
            Code::PrematureFree => "V053",
            Code::SchedIndegree => "V054",
            Code::SchedConsumers => "V055",
            Code::FpReassociation => "V056",
            Code::UndocumentedUnsafe => "V057",
            Code::UncheckedIndex => "V058",
            Code::ShadowDivergence => "V059",
        }
    }

    /// The severity this lint always carries.
    pub fn severity(&self) -> Severity {
        match self {
            Code::MissingOutput
            | Code::RoleMismatch
            | Code::DeadNode
            | Code::BudgetGap
            | Code::NormOutOfRange
            | Code::VectorUnderutilized
            | Code::FpReassociation
            | Code::UndocumentedUnsafe
            | Code::UncheckedIndex => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line statement of the invariant the lint protects.
    pub fn invariant(&self) -> &'static str {
        match self {
            Code::ShapeMismatch => "stored node shapes equal re-inferred shapes",
            Code::BadTopology => "edges are topological and all ids are in range",
            Code::InferFailure => "every node's operator accepts its input shapes",
            Code::DuplicateName => "node names are unique within a graph",
            Code::MissingOutput => "a model graph marks its output",
            Code::RoleMismatch => "decoder-role layer groups match their operator classes",
            Code::DeadNode => "every node is reachable from an output",
            Code::CostMismatch => "graph cost totals equal profiler summaries exactly",
            Code::ParetoNonMonotone => "LUT rows are strictly (cost up => accuracy up)",
            Code::NonFinite => "LUT rows hold finite numbers only",
            Code::EmptyLut => "a LUT offers at least one execution path",
            Code::BudgetGap => "consecutive LUT budgets leave no large coverage gap",
            Code::ConfigInvalid => "every LUT config materializes a well-formed graph",
            Code::PolicyInfeasible => "serve policies are satisfiable against the LUT",
            Code::NormOutOfRange => "normalized resource/accuracy lie in (0, 1]",
            Code::EmptyTiling => "every MAC contraction has nonzero dimensions",
            Code::VectorUnderutilized => {
                "vector-lane padding keeps MAC utilization above the floor"
            }
            Code::PlanCostMismatch => "plan cost totals equal graph cost totals exactly",
            Code::PlanCoverage => "every non-input graph node is covered by exactly one record",
            Code::PlanArenaOverlap => "simultaneously live arena ranges never overlap",
            Code::PlanShapeMismatch => "record shapes and buffer wiring match the graph",
            Code::ChunkOverlap => "parallel chunks of one record never write the same element",
            Code::ChunkGap => "chunk decompositions partition the output range exactly",
            Code::ExecAlias => "a record's output range never overlaps its inputs",
            Code::PrematureFree => "a range is freed only after its last reader",
            Code::SchedIndegree => "scheduler in-degrees equal the graph's input counts",
            Code::SchedConsumers => "scheduler consumer counts equal reader counts plus output",
            Code::FpReassociation => {
                "every reassociating decomposition maps to a registered tolerance class"
            }
            Code::UndocumentedUnsafe => "every hot-path unsafe block carries a SAFETY comment",
            Code::UncheckedIndex => "hot paths use checked indexing only",
            Code::ShadowDivergence => "shadow replay agrees with the static exec-safety verdict",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but servable; fails `--deny-warnings` runs only.
    Warning,
    /// A broken invariant; the artifact must not be served.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where in the analyzed artifact a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The artifact as a whole.
    Global,
    /// A graph node, by topological index and name.
    Node {
        /// Topological node index.
        index: usize,
        /// Node name.
        name: String,
    },
    /// A LUT row, by index (cheapest first).
    Entry {
        /// Row index.
        index: usize,
    },
    /// A serve policy, by its debug rendering.
    Policy {
        /// The policy the diagnostic is about.
        policy: String,
    },
    /// A source location in the workspace (unsafe/indexing audit lints).
    Source {
        /// Workspace-relative file path.
        file: String,
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Global => f.write_str("(whole artifact)"),
            Span::Node { index, name } => write!(f, "node {index} `{name}`"),
            Span::Entry { index } => write!(f, "LUT entry {index}"),
            Span::Policy { policy } => write!(f, "policy {policy}"),
            Span::Source { file, line } => write!(f, "{file}:{line}"),
        }
    }
}

/// One finding: a lint code bound to a span, with a message and an
/// optional help line.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: Code,
    /// Its severity (always `code.severity()`).
    pub severity: Severity,
    /// Where it points.
    pub span: Span,
    /// What is wrong, concretely.
    pub message: String,
    /// How to fix it, when the pass knows.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic for `code` at `span`.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        write!(f, "  --> {}", self.span)?;
        if let Some(h) = &self.help {
            write!(f, "\n  = help: {h}")?;
        }
        Ok(())
    }
}

/// The outcome of verifying one artifact: every diagnostic from every
/// pass that ran over it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// What was analyzed, e.g. `segformer-b0 64x64` or a LUT description.
    pub target: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `target`.
    pub fn new(target: impl Into<String>) -> Self {
        Report {
            target: target.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Appends a pass's findings.
    pub fn extend(&mut self, diags: Vec<Diagnostic>) {
        self.diagnostics.extend(diags);
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any finding carries the given code.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Whether the artifact passed: no errors, and no warnings either when
    /// `deny_warnings` is set.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Renders the report in rustc style, one block per diagnostic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n    in: {}\n", self.target));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            self.target,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Renders the report as a JSON object (machine-readable sibling of
    /// [`Report::render`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"target\": {}, ", json_str(&self.target)));
        out.push_str(&format!(
            "\"errors\": {}, \"warnings\": {}, ",
            self.errors(),
            self.warnings()
        ));
        out.push_str("\"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"code\": \"{}\", \"severity\": \"{}\", \"span\": {}, \"message\": {}",
                d.code,
                d.severity,
                span_json(&d.span),
                json_str(&d.message)
            ));
            if let Some(h) = &d.help {
                out.push_str(&format!(", \"help\": {}", json_str(h)));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn span_json(span: &Span) -> String {
    match span {
        Span::Global => "{\"kind\": \"global\"}".to_string(),
        Span::Node { index, name } => format!(
            "{{\"kind\": \"node\", \"index\": {index}, \"name\": {}}}",
            json_str(name)
        ),
        Span::Entry { index } => format!("{{\"kind\": \"entry\", \"index\": {index}}}"),
        Span::Policy { policy } => {
            format!("{{\"kind\": \"policy\", \"policy\": {}}}", json_str(policy))
        }
        Span::Source { file, line } => format!(
            "{{\"kind\": \"source\", \"file\": {}, \"line\": {line}}}",
            json_str(file)
        ),
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with('V'));
            assert!(!c.invariant().is_empty());
        }
        assert_eq!(seen.len(), Code::ALL.len());
    }

    #[test]
    fn report_counts_and_deny_warnings() {
        let mut r = Report::new("t");
        assert!(r.is_clean(true));
        r.extend(vec![Diagnostic::new(
            Code::DeadNode,
            Span::Node {
                index: 3,
                name: "x".into(),
            },
            "unreachable",
        )]);
        assert!(r.is_clean(false));
        assert!(!r.is_clean(true));
        r.extend(vec![Diagnostic::new(Code::EmptyLut, Span::Global, "empty")]);
        assert_eq!((r.errors(), r.warnings()), (1, 1));
        assert!(!r.is_clean(false));
        assert!(r.has(Code::DeadNode) && r.has(Code::EmptyLut));
        assert!(!r.has(Code::ShapeMismatch));
    }

    #[test]
    fn render_mentions_code_span_and_help() {
        let d = Diagnostic::new(
            Code::ShapeMismatch,
            Span::Node {
                index: 5,
                name: "encoder.block0".into(),
            },
            "stored [1, 2] vs inferred [1, 3]",
        )
        .with_help("rebuild the graph through vit_models");
        let mut r = Report::new("segformer-b0");
        r.extend(vec![d]);
        let s = r.render();
        assert!(s.contains("error[V001]"));
        assert!(s.contains("node 5 `encoder.block0`"));
        assert!(s.contains("help: rebuild"));
        assert!(s.contains("1 error(s), 0 warning(s)"));
    }

    #[test]
    fn json_escapes_and_structure() {
        let d = Diagnostic::new(Code::EmptyLut, Span::Global, "has \"quotes\"\nand newline");
        let mut r = Report::new("lut");
        r.extend(vec![d]);
        let j = r.to_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"code\": \"V023\""));
        assert!(j.contains("\"kind\": \"global\""));
    }
}
