/root/repo/target/release/deps/proptests-2a68475fe9b9ca19.d: crates/graph/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-2a68475fe9b9ca19.rmeta: crates/graph/tests/proptests.rs Cargo.toml

crates/graph/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
