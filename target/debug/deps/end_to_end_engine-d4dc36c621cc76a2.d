/root/repo/target/debug/deps/end_to_end_engine-d4dc36c621cc76a2.d: crates/core/../../tests/end_to_end_engine.rs

/root/repo/target/debug/deps/end_to_end_engine-d4dc36c621cc76a2: crates/core/../../tests/end_to_end_engine.rs

crates/core/../../tests/end_to_end_engine.rs:
