/root/repo/target/debug/deps/lut_proptests-e2e1162c4a06958e.d: crates/core/tests/lut_proptests.rs

/root/repo/target/debug/deps/lut_proptests-e2e1162c4a06958e: crates/core/tests/lut_proptests.rs

crates/core/tests/lut_proptests.rs:
