//! Pareto-front extraction over (resource, accuracy) trade-off points.

use crate::sweep::TradeoffPoint;

/// Returns the Pareto-optimal subset of `points` — the execution paths for
/// which no other path has both lower resource use and higher accuracy —
/// sorted by increasing resource.
///
/// Ties are resolved in favor of lower resource; duplicate dominated points
/// are dropped.
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut sorted: Vec<&TradeoffPoint> = points.iter().collect();
    // Sort by resource ascending, accuracy descending for equal resources.
    sorted.sort_by(|a, b| {
        a.norm_resource
            .partial_cmp(&b.norm_resource)
            .expect("finite resources")
            .then(
                b.norm_miou
                    .partial_cmp(&a.norm_miou)
                    .expect("finite accuracies"),
            )
    });
    let mut front: Vec<TradeoffPoint> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for p in sorted {
        if p.norm_miou > best {
            best = p.norm_miou;
            front.push(p.clone());
        }
    }
    front
}

/// True when `a` dominates `b` (no worse in both dimensions, strictly
/// better in at least one).
pub fn dominates(a: &TradeoffPoint, b: &TradeoffPoint) -> bool {
    (a.norm_resource <= b.norm_resource && a.norm_miou >= b.norm_miou)
        && (a.norm_resource < b.norm_resource || a.norm_miou > b.norm_miou)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::DynConfig;
    use vit_models::{SegFormerDynamic, SegFormerVariant};

    fn pt(r: f64, a: f64) -> TradeoffPoint {
        TradeoffPoint {
            label: String::new(),
            config: DynConfig::SegFormer(SegFormerDynamic::full(&SegFormerVariant::b2())),
            resource: r,
            norm_resource: r,
            norm_miou: a,
        }
    }

    #[test]
    fn front_drops_dominated_points() {
        let pts = vec![pt(1.0, 1.0), pt(0.8, 0.9), pt(0.9, 0.85), pt(0.7, 0.7)];
        let front = pareto_front(&pts);
        let coords: Vec<(f64, f64)> = front
            .iter()
            .map(|p| (p.norm_resource, p.norm_miou))
            .collect();
        // (0.9, 0.85) is dominated by (0.8, 0.9).
        assert_eq!(coords, vec![(0.7, 0.7), (0.8, 0.9), (1.0, 1.0)]);
    }

    #[test]
    fn front_is_sorted_and_monotone() {
        let pts: Vec<TradeoffPoint> = (0..50)
            .map(|i| {
                let r = (i % 10) as f64 / 10.0 + 0.05;
                let a = ((i * 7) % 13) as f64 / 13.0;
                pt(r, a)
            })
            .collect();
        let front = pareto_front(&pts);
        for w in front.windows(2) {
            assert!(w[0].norm_resource < w[1].norm_resource);
            assert!(w[0].norm_miou < w[1].norm_miou);
        }
        // No front point dominated by any input point.
        for f in &front {
            for p in &pts {
                assert!(
                    !dominates(p, f)
                        || (p.norm_resource == f.norm_resource && p.norm_miou == f.norm_miou)
                );
            }
        }
    }

    #[test]
    fn single_point_is_its_own_front() {
        let pts = vec![pt(0.5, 0.5)];
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn dominates_is_strict() {
        assert!(dominates(&pt(0.5, 0.9), &pt(0.6, 0.8)));
        assert!(!dominates(&pt(0.5, 0.9), &pt(0.5, 0.9)));
        assert!(!dominates(&pt(0.5, 0.7), &pt(0.6, 0.8)));
    }
}
