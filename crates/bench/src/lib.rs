//! # vit-bench
//!
//! The reproduction harness: one experiment per table/figure of the paper,
//! each printing the paper's published rows or series next to the values
//! this reproduction measures. Run them through the `repro` binary:
//!
//! ```text
//! repro table1      # Table I  — model summary
//! repro fig6        # Figure 6 — SegFormer trade-off curves
//! repro all         # everything
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod loadgen;

use std::fmt::Display;

/// A simple fixed-width table printer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<D: Display>(&mut self, cells: &[D]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate().take(cols) {
                s.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a ratio as a percentage string.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new(&["a", "longer-header"]);
        t.row(&["1", "2"]);
        t.row(&["something-long", "x"]);
        t.print();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.625), "62.5%");
    }
}
