/root/repo/target/debug/deps/serde-501322f7e33e36c4.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-501322f7e33e36c4.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-501322f7e33e36c4.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
