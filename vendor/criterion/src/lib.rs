//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's benchmark definitions (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `Bencher::iter`)
//! compiling and runnable without crates.io. Instead of criterion's
//! statistical machinery it reports min/median/mean wall time over the
//! configured sample count — enough to compare hot paths locally.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver; collects and prints timings.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints the result.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        sample_size: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "  {name}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// Runs the closure under timing; passed to benchmark definitions.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample (plus one untimed warm-up run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std_black_box(routine()); // warm-up (e.g. populate caches)
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group as a function running its targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = trivial
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
