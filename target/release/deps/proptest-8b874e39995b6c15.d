/root/repo/target/release/deps/proptest-8b874e39995b6c15.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-8b874e39995b6c15: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
