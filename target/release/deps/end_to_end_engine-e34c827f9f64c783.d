/root/repo/target/release/deps/end_to_end_engine-e34c827f9f64c783.d: crates/core/../../tests/end_to_end_engine.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end_engine-e34c827f9f64c783.rmeta: crates/core/../../tests/end_to_end_engine.rs Cargo.toml

crates/core/../../tests/end_to_end_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
