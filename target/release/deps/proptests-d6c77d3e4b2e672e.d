/root/repo/target/release/deps/proptests-d6c77d3e4b2e672e.d: crates/serve/tests/proptests.rs

/root/repo/target/release/deps/proptests-d6c77d3e4b2e672e: crates/serve/tests/proptests.rs

crates/serve/tests/proptests.rs:
