//! Numeric kernels operating on [`crate::Tensor`].

mod activation;
mod attention;
mod conv;
mod fused;
mod matmul;
mod norm;
mod pack;
mod pool;
pub mod reference;
mod resize;

pub use activation::{gelu, relu, softmax_last_dim};
pub use attention::{multi_head_attention, AttentionWeights};
pub use conv::{conv2d, conv2d_ctx, depthwise_conv2d, Conv2dParams};
pub use fused::{Epilogue, PackedConv2d, PackedLinear};
pub use matmul::{bmm, bmm_ctx, linear, linear_ctx, matmul, matmul_ctx};
pub use norm::{batch_norm_inference, layer_norm};
pub use pack::{PackedB, KC, MR, NR};
pub use pool::{adaptive_avg_pool2d, global_avg_pool, max_pool2d};
pub use resize::{bilinear_resize, concat_channels};
