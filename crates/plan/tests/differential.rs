//! Differential tests: replaying a compiled plan must be *bit-identical*
//! to the sequential graph interpreter on randomized graphs at every
//! thread count. Equality is exact (`Tensor: PartialEq` compares raw f32
//! bits) — plan lowering may repack weights and fuse epilogues, but every
//! output element must come from the same floating-point operation
//! sequence.
//!
//! The golden pins at the bottom freeze the plan geometry (record count,
//! fusion count, arena size) for the two serving models, so an
//! unintentional change to fusion legality or the liveness allocator
//! shows up as a diff here before it shows up as a perf regression.

use proptest::prelude::*;
use vit_graph::{ExecOptions, Executor, Graph, LayerRole, Op, RunContext, WeightGen};
use vit_models::{
    build_segformer, build_swin_upernet, SegFormerConfig, SegFormerVariant, SwinConfig, SwinVariant,
};
use vit_plan::ExecPlan;
use vit_tensor::Tensor;

const THREADS: [usize; 3] = [1, 2, 8];

/// Compiles the graph and asserts plan replay matches the sequential
/// interpreter exactly, at every thread count. Also holds the exec-safety
/// agreement: the static verdict (vit-verify pass 6) and the dynamic
/// shadow-access replay must both be clean on every compiled plan, at
/// every sampled thread count — neither witness may see a hazard the
/// other misses.
fn assert_plan_bit_identical(g: &Graph, input: Tensor, seed: u64) {
    let inputs = std::slice::from_ref(&input);
    let seq = Executor::new(seed)
        .run_opts(g, inputs, &ExecOptions::sequential())
        .unwrap();
    let plan = ExecPlan::compile(g, WeightGen::new(seed)).unwrap();
    let static_diags = vit_verify::verify_plan_exec(&plan);
    assert!(
        static_diags.is_empty(),
        "exec-safety pass flagged a compiled plan for `{}`: {static_diags:?}",
        g.model
    );
    for threads in THREADS {
        let violations = plan.shadow_replay(threads);
        assert!(
            violations.is_empty(),
            "shadow replay for `{}` at {} threads disagrees with the clean \
             static verdict: {violations:?}",
            g.model,
            threads
        );
        let ctx = RunContext::default().with_exec(ExecOptions::threaded(threads));
        let replayed = plan.execute(inputs, &ctx).unwrap();
        assert_eq!(
            replayed, seq,
            "plan for `{}` diverged from the interpreter at {} threads",
            g.model, threads
        );
    }
}

/// A convolutional stack with residual adds and mixed activations; the
/// diamonds keep activations multi-consumer, so fusion legality (sole
/// consumer only) is exercised both ways.
fn conv_residual_graph(
    cin: usize,
    cout: usize,
    k: usize,
    depth: usize,
    hw: usize,
) -> (Graph, Vec<usize>) {
    let mut g = Graph::new("conv-residual");
    let shape = vec![1, cin, hw, hw];
    let x = g.input("in", &shape).unwrap();
    let mut prev = g
        .add(
            "stem",
            Op::Conv2d {
                out_channels: cout,
                kernel: (k, k),
                stride: (1, 1),
                pad: (k / 2, k / 2),
                groups: 1,
                bias: true,
            },
            LayerRole::Backbone,
            &[x],
        )
        .unwrap();
    for i in 0..depth {
        let c = g
            .add(
                &format!("conv{i}"),
                Op::Conv2d {
                    out_channels: cout,
                    kernel: (k, k),
                    stride: (1, 1),
                    pad: (k / 2, k / 2),
                    groups: 1,
                    bias: i % 2 == 0,
                },
                LayerRole::Backbone,
                &[prev],
            )
            .unwrap();
        // This activation's producer is a conv and it is the conv's sole
        // consumer, so the plan fuses it into the conv's epilogue.
        let act = g
            .add(
                &format!("act{i}"),
                if i % 2 == 0 { Op::Relu } else { Op::Gelu },
                LayerRole::Backbone,
                &[c],
            )
            .unwrap();
        prev = g
            .add(
                &format!("res{i}"),
                Op::Add,
                LayerRole::Backbone,
                &[prev, act],
            )
            .unwrap();
    }
    g.set_output(prev);
    (g, shape)
}

/// A transformer-ish tail: flatten -> linear -> layernorm ->
/// self-attention -> linear head. Sdpa and LayerNorm replay through the
/// plan's fallback records.
fn attention_graph(cin: usize, hw: usize, heads: usize, head_dim: usize) -> (Graph, Vec<usize>) {
    let dim = heads * head_dim;
    let mut g = Graph::new("attention");
    let shape = vec![1, cin, hw, hw];
    let x = g.input("in", &shape).unwrap();
    let f = g
        .add("flat", Op::FlattenHw, LayerRole::Backbone, &[x])
        .unwrap();
    let e = g
        .add(
            "embed",
            Op::Linear {
                out_features: dim,
                bias: true,
            },
            LayerRole::Backbone,
            &[f],
        )
        .unwrap();
    let n = g
        .add("ln", Op::LayerNorm, LayerRole::Backbone, &[e])
        .unwrap();
    let a = g
        .add("sdpa", Op::Sdpa { heads }, LayerRole::Backbone, &[n, n, n])
        .unwrap();
    let r = g.add("res", Op::Add, LayerRole::Backbone, &[e, a]).unwrap();
    let h = g
        .add(
            "head",
            Op::Linear {
                out_features: 4,
                bias: true,
            },
            LayerRole::Head,
            &[r],
        )
        .unwrap();
    g.set_output(h);
    (g, shape)
}

/// Two pruned branches concatenated: depthwise + pointwise convs,
/// pooling, and `SliceChannels` — the dynamic-pruning ops. The fork at
/// the input and the concat join stress the arena's liveness accounting.
fn branchy_graph(cin: usize, hw: usize, keep: usize) -> (Graph, Vec<usize>) {
    let mut g = Graph::new("branchy");
    let shape = vec![1, cin, hw, hw];
    let x = g.input("in", &shape).unwrap();
    let dw = g
        .add(
            "dw",
            Op::Conv2d {
                out_channels: cin,
                kernel: (3, 3),
                stride: (1, 1),
                pad: (1, 1),
                groups: cin,
                bias: true,
            },
            LayerRole::Backbone,
            &[x],
        )
        .unwrap();
    let sliced = g
        .add(
            "slice",
            Op::SliceChannels { keep },
            LayerRole::Backbone,
            &[dw],
        )
        .unwrap();
    let pooled = g
        .add(
            "pool",
            Op::MaxPool {
                window: 2,
                stride: 2,
                pad: 0,
            },
            LayerRole::Backbone,
            &[x],
        )
        .unwrap();
    let up = g
        .add(
            "up",
            Op::Resize {
                out_h: hw,
                out_w: hw,
            },
            LayerRole::Backbone,
            &[pooled],
        )
        .unwrap();
    let cat = g
        .add("cat", Op::Concat, LayerRole::Head, &[sliced, up])
        .unwrap();
    let head = g
        .add(
            "head",
            Op::Conv2d {
                out_channels: 3,
                kernel: (1, 1),
                stride: (1, 1),
                pad: (0, 0),
                groups: 1,
                bias: true,
            },
            LayerRole::Head,
            &[cat],
        )
        .unwrap();
    g.set_output(head);
    (g, shape)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_residual_plan_is_bit_identical(
        (cin, cout, k, depth, hw) in (1usize..4, 1usize..6, 0usize..3, 1usize..4, 3usize..9),
        seed in any::<u64>(),
    ) {
        let k = 2 * k + 1; // odd kernels so same-padding preserves dims
        let (g, shape) = conv_residual_graph(cin, cout, k, depth, hw);
        assert_plan_bit_identical(&g, Tensor::rand_uniform(&shape, -1.0, 1.0, seed), seed);
    }

    #[test]
    fn attention_plan_is_bit_identical(
        (cin, hw, heads, head_dim) in (1usize..4, 2usize..6, 1usize..4, 1usize..5),
        seed in any::<u64>(),
    ) {
        let (g, shape) = attention_graph(cin, hw, heads, head_dim);
        assert_plan_bit_identical(&g, Tensor::rand_uniform(&shape, -1.0, 1.0, seed), seed);
    }

    #[test]
    fn branchy_plan_is_bit_identical(
        (cin, hw) in (2usize..6).prop_flat_map(|c| (Just(c), 2usize..5)),
        keep_frac in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let hw = hw * 2; // MaxPool(2) needs even dims
        let keep = (cin * keep_frac / 2).max(1);
        let (g, shape) = branchy_graph(cin, hw, keep);
        assert_plan_bit_identical(&g, Tensor::rand_uniform(&shape, -1.0, 1.0, seed), seed);
    }
}

/// Golden pins: the plan geometry of the two serving models at the bench
/// geometry (full dynamic config, 64x64 input). These numbers changing is
/// not necessarily a bug — but it must be a *decision*, because record
/// count, fusion count, and arena size are the levers plan performance
/// stands on.
#[test]
fn segformer_b0_plan_geometry_is_pinned() {
    let g = build_segformer(&SegFormerConfig {
        image: (64, 64),
        ..SegFormerConfig::ade20k(SegFormerVariant::b0())
    })
    .unwrap();
    let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
    assert_eq!(plan.graph_nodes(), g.len());
    assert_eq!(plan.records().len(), 187);
    assert_eq!(plan.fused_nodes(), 0);
    assert_eq!(plan.arena_len(), 1_257_472);
    assert_eq!(plan.total_flops(), g.total_flops());
    assert_eq!(plan.total_params(), g.total_params());
    assert_eq!(reassociating_records(&plan), 64);
}

/// Records whose contract routes them to the tolerance tier — the
/// GEMM-backed packed-weight kernels (multi-input-channel convs and
/// linears). The count is part of the pinned geometry: a record silently
/// moving between tiers changes which differential holds it.
fn reassociating_records(plan: &ExecPlan) -> usize {
    plan.records()
        .iter()
        .filter(|r| r.contract.reassociates())
        .count()
}

#[test]
fn swin_tiny_plan_geometry_is_pinned() {
    let g = build_swin_upernet(&SwinConfig {
        image: (64, 64),
        ..SwinConfig::ade20k(SwinVariant::tiny())
    })
    .unwrap();
    let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
    assert_eq!(plan.graph_nodes(), g.len());
    assert_eq!(plan.records().len(), 278);
    assert_eq!(plan.fused_nodes(), 12);
    assert_eq!(plan.arena_len(), 1_291_648);
    assert_eq!(plan.total_flops(), g.total_flops());
    assert_eq!(plan.total_params(), g.total_params());
    assert_eq!(reassociating_records(&plan), 89);
}
