/root/repo/target/debug/deps/vit_bench-9499e6a3afd5a273.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/serve.rs crates/bench/src/loadgen.rs

/root/repo/target/debug/deps/libvit_bench-9499e6a3afd5a273.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/serve.rs crates/bench/src/loadgen.rs

/root/repo/target/debug/deps/libvit_bench-9499e6a3afd5a273.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/serve.rs crates/bench/src/loadgen.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/accelerator.rs:
crates/bench/src/experiments/characterization.rs:
crates/bench/src/experiments/engine.rs:
crates/bench/src/experiments/headline.rs:
crates/bench/src/experiments/resilience.rs:
crates/bench/src/experiments/serve.rs:
crates/bench/src/loadgen.rs:
