/root/repo/target/debug/deps/vit_drt-89846d96d1e317c1.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

/root/repo/target/debug/deps/libvit_drt-89846d96d1e317c1.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

/root/repo/target/debug/deps/libvit_drt-89846d96d1e317c1.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/budget.rs:
crates/core/src/engine.rs:
crates/core/src/json.rs:
crates/core/src/lut.rs:
