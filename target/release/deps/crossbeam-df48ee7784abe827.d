/root/repo/target/release/deps/crossbeam-df48ee7784abe827.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-df48ee7784abe827: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
