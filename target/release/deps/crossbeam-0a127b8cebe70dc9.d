/root/repo/target/release/deps/crossbeam-0a127b8cebe70dc9.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-0a127b8cebe70dc9.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
