//! Reference (oracle) kernels and the per-op-class tolerance registry.
//!
//! The production GEMM/conv kernels (`ops/pack.rs` and `ops/conv.rs`)
//! are cache-blocked and register-tiled. Blocking is
//! *allowed* to reorder floating-point accumulation relative to a naive
//! triple loop, so those kernels are held to a **tolerance contract**
//! against the oracles in this module instead of a bit-identity contract:
//!
//! * **exact tier** — claims between two runs of the *same* kernel
//!   (sequential vs threaded, interpreter vs compiled plan). These remain
//!   bit-identity claims: blocking geometry depends only on shapes and
//!   compile-time constants, never on the thread count.
//! * **tolerance tier** — claims between a production kernel and the
//!   reference oracle here. Each kernel class registers a
//!   [`Tolerance`] bound via [`tolerance`]; the differential suites
//!   assert `max_ulp`/relative error within that bound, and golden pins
//!   in `crates/tensor/tests/kernel_tiers.rs` freeze the *measured*
//!   error so a kernel change that widens it fails loudly.
//!
//! The oracles are the pre-blocking naive loops with two deliberate
//! semantic fixes, both of which make the oracle *stricter* about IEEE
//! edge cases:
//!
//! * the historical `matmul` zero-skip (`if av == 0.0 { continue; }`) is
//!   gone: skipping suppresses NaN/Inf propagation from the other operand
//!   (`0.0 * inf = NaN`, but a skipped term contributes nothing), which
//!   can hide exactly the corruptions the fault-detection output guards
//!   exist to catch;
//! * a missing bias no longer contributes a literal `+ 0.0`: the no-bias
//!   path stores the raw accumulator, so each output element is exactly
//!   the sequential dot-product chain the packed kernels' register
//!   accumulators compute — the exact-tier bitwise claims are provable
//!   term-for-term instead of holding only up to an extra identity add.

use crate::error::Result;
use crate::ops::conv::{conv_geometry, ConvGeom};
use crate::ops::fused::Epilogue;
use crate::ops::Conv2dParams;
use crate::tensor::Tensor;

/// The kernel classes the tolerance tier registers bounds for. A plan
/// record whose [`ExecContract`] declares FP reassociation must map to
/// one of these classes or `vit-verify`'s V056 lint fires: reassociation
/// outside the tolerance tier has no oracle and no bound.
///
/// [`ExecContract`]: https://docs.rs/vit-plan
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Packed-panel matrix multiplication: `matmul`, `bmm`, `linear`
    /// (and the plan-time `PackedLinear`).
    Gemm,
    /// im2col + packed GEMM convolution (the `PackedConv2d` GEMM path;
    /// the direct single-input-channel path is exact-tier).
    Conv,
}

/// The error bound one kernel class is held to against its oracle.
///
/// A comparison passes when **either** bound holds per element: ULP
/// distance covers the normal range, the relative bound covers the
/// near-zero range where a fixed ULP count is vacuously tight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum units-in-the-last-place distance per element.
    pub max_ulp: u32,
    /// Maximum relative error per element.
    pub max_rel: f32,
}

/// The registered per-op-class tolerance bound.
///
/// These are *contractual headroom* for blocked kernels, not measured
/// error: the current kernels keep each output element's accumulation
/// k-sequential (blocking reorders loops, not per-element adds), so the
/// measured distance is 0 ULP on finite inputs and the golden pins in
/// `kernel_tiers.rs` hold it there. The bound is what a future kernel
/// (k-split SIMD reductions, FMA contraction) may legally spend.
pub fn tolerance(class: KernelClass) -> Tolerance {
    match class {
        KernelClass::Gemm => Tolerance {
            max_ulp: 4,
            max_rel: 1e-6,
        },
        KernelClass::Conv => Tolerance {
            max_ulp: 8,
            max_rel: 1e-6,
        },
    }
}

/// ULP distance between two `f32`s: the absolute difference of their
/// lexicographic encodings (sign-magnitude mapped to a monotone integer
/// line), so adjacent floats differ by 1 and `-0.0`/`+0.0` — numerically
/// equal — are distance 0.
///
/// Two NaNs are distance 0 (both kernels agree the value is invalid); a
/// NaN against a non-NaN is `u32::MAX` (never within any tolerance).
pub fn ulp_diff(a: f32, b: f32) -> u32 {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => return 0,
        (false, false) => {}
        _ => return u32::MAX,
    }
    let lex = |x: f32| {
        let bits = x.to_bits() as i32;
        // Map sign-magnitude to a monotone line: negative floats flip to
        // descending-below-zero, so ordering matches numeric ordering.
        (if bits < 0 { i32::MIN - bits } else { bits }) as i64
    };
    let d = (lex(a) - lex(b)).unsigned_abs();
    u32::try_from(d).unwrap_or(u32::MAX)
}

/// The maximum [`ulp_diff`] over two equal-length slices.
///
/// # Panics
///
/// Panics when the slices' lengths differ — a shape mismatch is a test
/// bug, not a numeric difference.
pub fn max_ulp(a: &[f32], b: &[f32]) -> u32 {
    assert_eq!(a.len(), b.len(), "max_ulp over mismatched lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulp_diff(x, y))
        .max()
        .unwrap_or(0)
}

/// Whether every element pair is within `tol` (ULP **or** relative
/// bound; see [`Tolerance`]).
pub fn within_tolerance(a: &[f32], b: &[f32], tol: Tolerance) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(&x, &y)| {
            ulp_diff(x, y) <= tol.max_ulp || {
                let denom = x.abs().max(y.abs());
                denom.is_finite() && denom > 0.0 && (x - y).abs() / denom <= tol.max_rel
            }
        })
}

/// Computes output rows of one `[m, k] x [k, n]` product into `od`, the
/// contiguous slice for rows `[row0, row0 + od.len() / n)` — the naive
/// i-k-j oracle loop. No zero-skip: a `0.0` in `a` still multiplies its
/// `b` row, so NaN/Inf corruption in either operand propagates.
pub(crate) fn matmul_rows(ad: &[f32], bd: &[f32], od: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = od.len() / n.max(1);
    for row in 0..rows {
        let i = row0 + row;
        for kk in 0..k {
            let av = ad[i * k + kk];
            let brow = &bd[kk * n..(kk + 1) * n];
            let orow = &mut od[row * n..(row + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

/// Computes output rows `[row0, row0 + od.len() / out_features)` of a
/// linear layer into `od` — one sequential dot product per output
/// element, `ep` applied at the final store. A missing bias contributes
/// nothing (not `+ 0.0`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn linear_rows(
    xd: &[f32],
    wd: &[f32],
    bd: Option<&[f32]>,
    od: &mut [f32],
    row0: usize,
    in_features: usize,
    out_features: usize,
    ep: Epilogue,
) {
    for (row, orow) in od.chunks_mut(out_features.max(1)).enumerate() {
        let r = row0 + row;
        let xrow = &xd[r * in_features..(r + 1) * in_features];
        for (o, orow_o) in orow.iter_mut().enumerate() {
            let wrow = &wd[o * in_features..(o + 1) * in_features];
            let mut acc = 0.0;
            for (xi, wi) in xrow.iter().zip(wrow.iter()) {
                acc += xi * wi;
            }
            let v = match bd {
                Some(bd) => acc + bd[o],
                None => acc,
            };
            *orow_o = ep.apply(v);
        }
    }
}

/// Computes output channel-planes `[row0, row0 + rows)` of the flattened
/// `(batch, out_channel)` axis into `od` — the naive oracle loop: one
/// sequentially-accumulated dot product per output element in
/// `(ci, ry, sx)` order, out-of-bounds taps skipped (never materialized
/// as zeros), `ep` applied at the final store.
pub(crate) fn conv2d_rows(
    xd: &[f32],
    wd: &[f32],
    bd: Option<&[f32]>,
    od: &mut [f32],
    row0: usize,
    g: ConvGeom,
    ep: Epilogue,
) {
    let plane = g.oh * g.ow;
    if plane == 0 {
        return;
    }
    let rows = od.len() / plane;
    for row in 0..rows {
        let (b, ko) = ((row0 + row) / g.k, (row0 + row) % g.k);
        let c_start = (ko / g.k_per_g) * g.c_per_g;
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                let mut acc = 0.0f32;
                for ci in 0..g.c_per_g {
                    let cin = c_start + ci;
                    for ry in 0..g.r {
                        let iy = oy * g.p.stride_h + ry;
                        if iy < g.p.pad_h || iy >= g.h + g.p.pad_h {
                            continue;
                        }
                        let iy = iy - g.p.pad_h;
                        let wrow = (ko * g.c_per_g + ci) * g.r + ry;
                        for sx in 0..g.s {
                            let ix = ox * g.p.stride_w + sx;
                            if ix < g.p.pad_w || ix >= g.w + g.p.pad_w {
                                continue;
                            }
                            let ix = ix - g.p.pad_w;
                            acc +=
                                xd[((b * g.c + cin) * g.h + iy) * g.w + ix] * wd[wrow * g.s + sx];
                        }
                    }
                }
                let v = match bd {
                    Some(bd) => acc + bd[ko],
                    None => acc,
                };
                od[row * plane + oy * g.ow + ox] = ep.apply(v);
            }
        }
    }
}

/// Reference `[m, k] x [k, n]` matrix product (sequential naive loop).
///
/// # Errors
///
/// Returns the same validation errors as [`crate::ops::matmul`].
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, n) = crate::ops::matmul::validate_matmul(a, b)?;
    let mut out = Tensor::zeros(&[m, n]);
    matmul_rows(a.data(), b.data(), out.data_mut(), 0, k, n);
    Ok(out)
}

/// Reference batched matrix product (sequential naive loop).
///
/// # Errors
///
/// Returns the same validation errors as [`crate::ops::bmm`].
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (batch, m, k, n) = crate::ops::matmul::validate_bmm(a, b)?;
    let mut out = Tensor::zeros(&[batch, m, n]);
    let (per_a, per_b, per_o) = (m * k, k * n, m * n);
    for bi in 0..batch {
        matmul_rows(
            &a.data()[bi * per_a..(bi + 1) * per_a],
            &b.data()[bi * per_b..(bi + 1) * per_b],
            &mut out.data_mut()[bi * per_o..(bi + 1) * per_o],
            0,
            k,
            n,
        );
    }
    Ok(out)
}

/// Reference linear layer (sequential naive dot products).
///
/// # Errors
///
/// Returns the same validation errors as [`crate::ops::linear`].
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    let (out_shape, in_features, out_features) =
        crate::ops::matmul::validate_linear(input, weight, bias)?;
    let mut out = Tensor::zeros(&out_shape);
    linear_rows(
        input.data(),
        weight.data(),
        bias.map(Tensor::data),
        out.data_mut(),
        0,
        in_features,
        out_features,
        Epilogue::None,
    );
    Ok(out)
}

/// Reference 2-D convolution (sequential naive accumulation).
///
/// # Errors
///
/// Returns the same validation errors as [`crate::ops::conv2d`].
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Result<Tensor> {
    let (geom, n) = conv_geometry(input, weight, bias, p)?;
    let mut out = Tensor::zeros(&[n, geom.k, geom.oh, geom.ow]);
    conv2d_rows(
        input.data(),
        weight.data(),
        bias.map(Tensor::data),
        out.data_mut(),
        0,
        geom,
        Epilogue::None,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_diff_orders_the_float_line() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(-0.0, 0.0), 0);
        assert_eq!(ulp_diff(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(-1.0, f32::from_bits((-1.0f32).to_bits() + 1)), 1);
        assert_eq!(ulp_diff(f32::NAN, f32::NAN), 0);
        assert_eq!(ulp_diff(f32::NAN, 1.0), u32::MAX);
        // Symmetric.
        assert_eq!(ulp_diff(2.5, -3.75), ulp_diff(-3.75, 2.5));
    }

    #[test]
    fn within_tolerance_accepts_either_bound() {
        let tol = Tolerance {
            max_ulp: 2,
            max_rel: 1e-6,
        };
        let a = [1.0f32, 1e20];
        let next = f32::from_bits(1.0f32.to_bits() + 1);
        // 1 ULP passes via the ULP bound; a 1e-7 relative error at 1e20 is
        // astronomically many ULPs but passes via the relative bound.
        let b = [next, 1e20 * (1.0 + 1e-7)];
        assert!(within_tolerance(&a, &b, tol));
        assert!(!within_tolerance(&a, &[next, 2e20], tol));
        assert!(!within_tolerance(&a, &[1.0], tol));
    }

    #[test]
    fn registry_covers_every_class() {
        for class in [KernelClass::Gemm, KernelClass::Conv] {
            let t = tolerance(class);
            assert!(t.max_ulp > 0 && t.max_rel > 0.0);
        }
    }

    #[test]
    fn reference_matmul_propagates_nan_through_zero_rows() {
        // The historical zero-skip hid this: 0.0 * inf must be NaN, not a
        // skipped term. See the corruption regression in kernel_tiers.rs.
        let a = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::INFINITY, 1.0, 1.0, 1.0], &[2, 2]).unwrap();
        let y = matmul(&a, &b).unwrap();
        assert!(y.data()[0].is_nan(), "0 * inf row must surface as NaN");
        assert_eq!(y.data()[1], 0.0);
    }

    #[test]
    fn reference_linear_propagates_inf_times_zero() {
        // The dot-product chain must evaluate every term: 0.0 * inf is
        // NaN and poisons the whole accumulation, with no bias add to
        // launder it.
        let x = Tensor::from_vec(vec![0.0, 2.0], &[1, 2]).unwrap();
        let w = Tensor::from_vec(vec![f32::INFINITY, 1.0], &[1, 2]).unwrap();
        let y = linear(&x, &w, None).unwrap();
        assert!(
            y.data()[0].is_nan(),
            "0 * inf term must poison the dot product"
        );
    }
}
