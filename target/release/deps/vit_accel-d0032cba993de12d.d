/root/repo/target/release/deps/vit_accel-d0032cba993de12d.d: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

/root/repo/target/release/deps/libvit_accel-d0032cba993de12d.rlib: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

/root/repo/target/release/deps/libvit_accel-d0032cba993de12d.rmeta: crates/accel/src/lib.rs crates/accel/src/config.rs crates/accel/src/dse.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/config.rs:
crates/accel/src/dse.rs:
crates/accel/src/sim.rs:
