//! §V/§VI accelerator experiments: Figures 9-16 and Table IV.

use crate::{banner, f, pct, Table};
use vit_accel::{design_space, simulate, AccelConfig, SimOptions};
use vit_graph::Graph;
use vit_models::{
    build_segformer, build_swin_upernet, ofa_family, SegFormerConfig, SegFormerVariant, SwinConfig,
    SwinVariant,
};
use vit_profiler::GpuModel;
use vit_resilience::{table2_ade, AccuracyModel, Workload};

fn segformer_b2() -> Graph {
    build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).expect("builds")
}

/// Figure 9 / Listing 1: the accelerator organization and a sample mapping.
pub fn fig9() {
    banner("Figure 9 / Listing 1 — accelerator organization");
    for (name, cfg) in [
        ("accelerator_A", AccelConfig::accelerator_a()),
        ("accelerator*", AccelConfig::accelerator_star()),
    ] {
        println!(
            "{name}: {}x{} PEs, K0={} vector MACs/PE, C0={} lanes/MAC \
             ({} parallel MACs), WM={} kB/PE, AM={} kB/PE, {:.2} GHz, \
             PE array {:.2} mm^2",
            cfg.pe_rows,
            cfg.pe_cols,
            cfg.k0,
            cfg.c0,
            cfg.parallel_macs(),
            cfg.weight_mem_kb,
            cfg.act_mem_kb,
            cfg.clock_ghz,
            cfg.pe_array_area_mm2()
        );
    }
    println!();
    println!("dataflow: output-stationary local-weight-stationary (OS-LWS);");
    println!("loop nest (Listing 1): K2/P2/Q2 temporal @ array -> P2S/Q2S/K2S/C2S");
    println!("spatial across PEs -> P1/Q1/K1 temporal @ PE -> R/S/C1 output-");
    println!("stationary accumulation -> Q0 local weight reuse -> K0 x C0 parallel.");
    println!();
    // Sample mapping: the Conv2DFuse layer.
    let g = segformer_b2();
    let r = simulate(&g, &AccelConfig::accelerator_a(), &SimOptions::default());
    let fuse = r
        .layers
        .iter()
        .find(|l| l.name == "decoder.conv_fuse")
        .expect("fuse exists");
    println!(
        "sample mapping — Conv2DFuse (1x1, 3072 -> 768, 128x128): {} MACs, \
         {} cycles, utilization {:.1}%, {} weight pass(es)",
        fuse.macs,
        fuse.cycles,
        fuse.utilization * 100.0,
        fuse.weight_passes
    );
}

/// Figure 10: execution time and energy distribution on `accelerator_A`.
pub fn fig10() {
    banner("Figure 10 — SegFormer-B2 time/energy distribution on accelerator_A");
    let g = segformer_b2();
    let r = simulate(&g, &AccelConfig::accelerator_a(), &SimOptions::default());
    let total_c = r.total_cycles() as f64;
    let total_e = r.total_energy_j();
    let mut t = Table::new(&["component", "cycle share", "energy share"]);
    for prefix in [
        "encoder.stage0",
        "encoder.stage1",
        "encoder.stage2",
        "encoder.stage3",
        "decoder.linear",
        "decoder.conv_fuse",
        "decoder.conv_pred",
        "decoder.upsample",
    ] {
        let (c, e) = r.by_prefix(prefix);
        t.row(&[
            prefix.to_string(),
            pct(c as f64 / total_c),
            pct(e / total_e),
        ]);
    }
    t.print();
    println!();
    println!(
        "total: {} cycles = {:.2} ms @ {:.2} GHz (paper: 4,415,208 cycles = 3.5 ms); \
         distribution now tracks the FLOPs distribution, as the paper observes.",
        r.total_cycles(),
        r.total_time_s() * 1e3,
        r.config.clock_ghz
    );
}

/// Figure 11: energy per FLOP per layer; the low-input-channel outliers.
pub fn fig11() {
    banner("Figure 11 — energy per FLOP on accelerator_A (outliers)");
    let g = segformer_b2();
    let r = simulate(&g, &AccelConfig::accelerator_a(), &SimOptions::default());
    let mut with_macs: Vec<_> = r.layers.iter().filter(|l| l.macs > 0).collect();
    with_macs.sort_by(|a, b| {
        b.energy_per_mac()
            .partial_cmp(&a.energy_per_mac())
            .expect("finite")
    });
    let median = with_macs[with_macs.len() / 2].energy_per_mac();
    let mut t = Table::new(&["layer", "energy/MAC (x median)", "utilization"]);
    for l in with_macs.iter().take(8) {
        t.row(&[
            l.name.clone(),
            f(l.energy_per_mac() / median, 1),
            f(l.utilization, 3),
        ]);
    }
    t.print();
    let outlier_energy: f64 = with_macs
        .iter()
        .filter(|l| l.name.contains("patch_embed.conv") || l.name.contains("dwconv"))
        .map(|l| l.energy_j)
        .sum();
    println!();
    println!(
        "patch-embed + depthwise convolutions = {} of total energy \
         (paper: these C0-underutilized layers are 17%).",
        pct(outlier_energy / r.total_energy_j())
    );
}

/// Figures 12/13: accuracy vs cycles / energy for dynamic configs on
/// accelerators with different weight-memory sizes.
pub fn fig12_13() {
    banner(
        "Figures 12/13 — dynamic configs A-G on accelerators with WM in {1024, 512, 256, 128} kB",
    );
    let v = SegFormerVariant::b2();
    let model = AccuracyModel::for_workload(Workload::SegFormerAde);
    let opts = SimOptions::default();
    let mut t = Table::new(&[
        "point",
        "norm mIoU",
        "cycles WM=1024",
        "cycles WM=512",
        "cycles WM=256",
        "cycles WM=128",
        "energy (norm to Conv2DFuse, WM=128)",
    ]);
    let fuse_energy = {
        let g = segformer_b2();
        let r = simulate(&g, &AccelConfig::accelerator_star(), &opts);
        r.by_prefix("decoder.conv_fuse").1
    };
    for p in table2_ade() {
        let cfg = SegFormerConfig::ade20k(v).with_dynamic(p.to_segformer_dynamic(&v));
        let g = build_segformer(&cfg).expect("builds");
        let miou = model.norm_miou_segformer(&p.to_segformer_dynamic(&v), &v);
        let mut cycles = Vec::new();
        let mut energy128 = 0.0;
        for wm in [1024usize, 512, 256, 128] {
            let acc = AccelConfig {
                weight_mem_kb: wm,
                ..AccelConfig::accelerator_a()
            };
            let r = simulate(&g, &acc, &opts);
            cycles.push(r.total_cycles());
            if wm == 128 {
                energy128 = r.total_energy_j();
            }
        }
        t.row(&[
            p.label.to_string(),
            f(miou, 2),
            cycles[0].to_string(),
            cycles[1].to_string(),
            cycles[2].to_string(),
            cycles[3].to_string(),
            f(energy128 / fuse_energy, 2),
        ]);
    }
    t.print();
    println!();
    println!(
        "the optimal architecture is the same across model complexities, and \
         energy barely depends on WM (the MAC count is fixed per configuration) \
         — the paper's Figures 12/13 conclusions."
    );
}

/// Figure 14: total energy across vectorization and memory parameterizations.
pub fn fig14() {
    banner("Figure 14 — energy across K0/C0/WM/AM design points (SegFormer-B2)");
    let g = segformer_b2();
    let points = design_space(
        &g,
        &[(32, 32), (32, 16), (16, 16), (16, 8), (8, 8)],
        &[128, 1024],
        &[64],
        &SimOptions::default(),
    );
    let min_e = points
        .iter()
        .map(|p| p.energy_j)
        .fold(f64::INFINITY, f64::min);
    let mut t = Table::new(&[
        "K0",
        "C0",
        "PEs",
        "WM kB",
        "AM kB",
        "norm energy",
        "cycles",
        "area mm^2",
    ]);
    for p in &points {
        t.row(&[
            p.config.k0.to_string(),
            p.config.c0.to_string(),
            p.config.num_pes().to_string(),
            p.config.weight_mem_kb.to_string(),
            p.config.act_mem_kb.to_string(),
            f(p.energy_j / min_e, 3),
            p.cycles.to_string(),
            f(p.area_mm2, 2),
        ]);
    }
    t.print();
    println!();
    println!("paper: K0 = C0 = 32 accelerators have the lowest total energy.");
}

/// Figure 15: Swin-Tiny execution on `accelerator*`.
pub fn fig15() {
    banner("Figure 15 — Swin-Tiny on accelerator* (WM=128 kB)");
    let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).expect("builds");
    let r = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
    let total = r.total_cycles() as f64;
    let mut t = Table::new(&["component", "cycle share"]);
    for prefix in [
        "encoder.",
        "decoder.ppm",
        "decoder.lateral",
        "decoder.fpn_convs",
        "decoder.fpn_bottleneck",
        "decoder.conv_seg",
    ] {
        let (c, _) = r.by_prefix(prefix);
        t.row(&[prefix.to_string(), pct(c as f64 / total)]);
    }
    t.print();
    let conv_cycles: u64 = r
        .layers
        .iter()
        .filter(|l| l.class == vit_graph::OpClass::Conv)
        .map(|l| l.cycles)
        .sum();
    println!();
    println!(
        "total: {} cycles = {:.1} ms (paper: 15,482,594 cycles = 12.4 ms); \
         convolutions take {} of accelerator time (paper: 89%).",
        r.total_cycles(),
        r.total_time_s() * 1e3,
        pct(conv_cycles as f64 / total)
    );
    let gpu_ms = GpuModel::titan_v().total_time(&g) * 1e3;
    println!(
        "speedup vs GPU model: {:.1}x (paper: 17x vs 215 ms).",
        gpu_ms / (r.total_time_s() * 1e3)
    );
}

/// Table IV + Figure 16: OFA ResNet-50 on three accelerator
/// parameterizations.
pub fn table4_fig16() {
    banner("Table IV — OFA accelerator parameterizations");
    let mut t = Table::new(&[
        "accelerator",
        "WM kB",
        "AM kB",
        "PE area mm^2 (ours)",
        "PE area mm^2 (paper)",
        "norm energy (ours)",
        "norm energy (paper)",
    ]);
    let full = ofa_family()[0]
        .build_backbone((480, 640), 1)
        .expect("builds");
    let opts = SimOptions::default();
    let energies: Vec<f64> = [
        AccelConfig::ofa1(),
        AccelConfig::ofa2(),
        AccelConfig::ofa3(),
    ]
    .iter()
    .map(|c| simulate(&full.graph, c, &opts).total_energy_j())
    .collect();
    let min_e = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    // Paper Table IV normalizes to an unstated base; compare shapes via
    // ratios to the minimum (paper: 16.5 / 14.3 / 14.6).
    let paper = [16.5, 14.3, 14.6];
    let paper_min = 14.3;
    for (i, (name, cfg)) in [
        ("OFA1", AccelConfig::ofa1()),
        ("OFA2", AccelConfig::ofa2()),
        ("OFA3", AccelConfig::ofa3()),
    ]
    .into_iter()
    .enumerate()
    {
        t.row(&[
            name.to_string(),
            cfg.weight_mem_kb.to_string(),
            cfg.act_mem_kb.to_string(),
            f(cfg.pe_array_area_mm2(), 2),
            f([8.33, 2.26, 1.66][i], 2),
            f(energies[i] / min_e, 2),
            f(paper[i] / paper_min, 2),
        ]);
    }
    t.print();

    banner("Figure 16 — OFA ResNet-50 accuracy vs cycles on the three accelerators");
    let mut t2 = Table::new(&[
        "subnet",
        "top-1 (anchor)",
        "cycles OFA1",
        "cycles OFA2",
        "cycles OFA3",
    ]);
    for subnet in ofa_family() {
        let g = subnet.build_backbone((480, 640), 1).expect("builds").graph;
        let cycles: Vec<u64> = [
            AccelConfig::ofa1(),
            AccelConfig::ofa2(),
            AccelConfig::ofa3(),
        ]
        .iter()
        .map(|c| simulate(&g, c, &opts).total_cycles())
        .collect();
        t2.row(&[
            subnet.label.to_string(),
            f(subnet.top1, 1),
            cycles[0].to_string(),
            cycles[1].to_string(),
            cycles[2].to_string(),
        ]);
    }
    t2.print();
    let fam = ofa_family();
    let biggest = simulate(
        &fam[0].build_backbone((480, 640), 1).expect("builds").graph,
        &AccelConfig::ofa2(),
        &opts,
    )
    .total_cycles();
    let smallest = simulate(
        &fam[fam.len() - 1]
            .build_backbone((480, 640), 1)
            .expect("builds")
            .graph,
        &AccelConfig::ofa2(),
        &opts,
    )
    .total_cycles();
    println!();
    println!(
        "on accelerator_OFA2 the smallest subnet saves {} of execution time \
         with a {:.1}-point top-1 drop (paper: 57% saving with <5% drop).",
        pct(1.0 - smallest as f64 / biggest as f64),
        fam[0].top1 - fam[fam.len() - 1].top1
    );
}
