/root/repo/target/release/deps/proptests-4fcb467a6f9ec773.d: crates/models/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-4fcb467a6f9ec773.rmeta: crates/models/tests/proptests.rs Cargo.toml

crates/models/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
