/root/repo/target/debug/deps/vit_serve-d422996ccc09b063.d: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

/root/repo/target/debug/deps/vit_serve-d422996ccc09b063: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

crates/serve/src/lib.rs:
crates/serve/src/metrics.rs:
crates/serve/src/policy.rs:
crates/serve/src/queue.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/sim.rs:
