/root/repo/target/release/deps/repro-eb24711a417d86ee.d: crates/bench/src/main.rs

/root/repo/target/release/deps/repro-eb24711a417d86ee: crates/bench/src/main.rs

crates/bench/src/main.rs:
