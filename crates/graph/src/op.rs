//! Operator definitions: every layer kind a vision-transformer graph can
//! contain, with shape inference and analytical FLOPs/parameter counts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Structural classification of a layer, used to aggregate per-layer costs
/// into the classes the paper's figures report (convolutions, matrix
/// multiplications, attention, normalization, element-wise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Standard, grouped, and depthwise 2-D convolutions.
    Conv,
    /// Linear / fully-connected layers and their matrix multiplications.
    Matmul,
    /// Attention score/context matrix multiplications plus softmax.
    Attention,
    /// LayerNorm / BatchNorm.
    Norm,
    /// Element-wise activations and additions.
    Elementwise,
    /// Pooling, resizing, reshaping, concatenation and other data movement.
    Memory,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Conv => "conv",
            OpClass::Matmul => "matmul",
            OpClass::Attention => "attention",
            OpClass::Norm => "norm",
            OpClass::Elementwise => "elementwise",
            OpClass::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// Functional role of a layer within the application pipeline, matching the
/// named layers of the paper (Figure 2): e.g. `Conv2DFuse`, the decoder
/// linears, the FPN convolutions, the ResNet backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerRole {
    /// Overlap patch embedding convolutions in the encoder.
    PatchEmbed {
        /// Encoder stage index.
        stage: usize,
    },
    /// A transformer block in an encoder stage.
    EncoderBlock {
        /// Encoder stage index.
        stage: usize,
        /// Block index within the stage.
        block: usize,
    },
    /// A decoder linear projecting an encoder-stage output
    /// (`DecodeLinear0..3` in SegFormer).
    DecoderLinear {
        /// Encoder stage whose output this linear consumes.
        stage: usize,
    },
    /// The large fusion convolution in the decoder (`Conv2DFuse` in
    /// SegFormer, `fpn_bottleneck_Conv2D` in Swin/UPerNet).
    FuseConv,
    /// The final prediction convolution (`Conv2DPred`).
    PredConv,
    /// UPerNet lateral/FPN convolution at a pyramid level.
    FpnConv {
        /// Pyramid level.
        level: usize,
    },
    /// UPerNet pyramid-pooling-module branch.
    PpmBranch {
        /// Pooling output size of the branch.
        scale: usize,
    },
    /// CNN backbone layer (ResNet-50 in DETR / Deformable DETR / OFA).
    Backbone,
    /// Transformer encoder layer in a detection model.
    DetTransformerEncoder,
    /// Transformer decoder layer in a detection model.
    DetTransformerDecoder,
    /// Task-specific head (classification or detection FFN).
    Head,
    /// Anything else (reshapes, glue).
    Other,
}

impl LayerRole {
    /// Whether the role belongs to the model's decoder (the paper's
    /// encoder/decoder FLOPs split counts everything after the encoder
    /// stages as decoder).
    pub fn is_decoder(&self) -> bool {
        matches!(
            self,
            LayerRole::DecoderLinear { .. }
                | LayerRole::FuseConv
                | LayerRole::PredConv
                | LayerRole::FpnConv { .. }
                | LayerRole::PpmBranch { .. }
        )
    }
}

/// A layer operator with all static hyper-parameters.
///
/// Input channel/feature counts are inferred from input shapes, so a node's
/// operator never has to be rewritten when upstream layers are pruned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Graph input with a fixed shape.
    Input {
        /// The shape of this input.
        shape: Vec<usize>,
    },
    /// 2-D convolution over NCHW.
    Conv2d {
        /// Output channels.
        out_channels: usize,
        /// Kernel height and width.
        kernel: (usize, usize),
        /// Stride in each direction.
        stride: (usize, usize),
        /// Padding in each direction.
        pad: (usize, usize),
        /// Group count (`in_channels` for depthwise).
        groups: usize,
        /// Whether a bias vector is added.
        bias: bool,
    },
    /// Fully-connected layer over the last dimension.
    Linear {
        /// Output features.
        out_features: usize,
        /// Whether a bias vector is added.
        bias: bool,
    },
    /// Layer normalization over the last dimension.
    LayerNorm,
    /// Inference-form batch normalization over NCHW channels.
    BatchNorm,
    /// ReLU activation.
    Relu,
    /// GELU activation.
    Gelu,
    /// Scaled-dot-product attention over `[q, k, v]` inputs
    /// (`[b, n, d]`, `[b, m, d]`, `[b, m, d]`).
    Sdpa {
        /// Number of attention heads.
        heads: usize,
    },
    /// Multi-scale deformable attention (Deformable DETR): inputs are
    /// `[query, value]` with `query = [b, n, dim]` and `value = [b, m, dim]`
    /// the flattened multi-scale feature maps. The op owns its value/output
    /// projections and the sampling-offset/weight projections.
    DeformAttn {
        /// Number of attention heads.
        heads: usize,
        /// Number of feature-map levels sampled.
        levels: usize,
        /// Sampling points per head per level.
        points: usize,
        /// Embedding dimension.
        dim: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Square window size.
        window: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Adaptive average pooling to a fixed output size.
    AdaptiveAvgPool {
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
    },
    /// Bilinear resize to a fixed output size.
    Resize {
        /// Output height.
        out_h: usize,
        /// Output width.
        out_w: usize,
    },
    /// Channel concatenation of all inputs.
    Concat,
    /// Element-wise addition of two inputs.
    Add,
    /// `[n, c, h, w]` -> `[n, h*w, c]`.
    FlattenHw,
    /// `[n, h*w, c]` -> `[n, c, h, w]`.
    UnflattenHw {
        /// Spatial height.
        h: usize,
        /// Spatial width.
        w: usize,
    },
    /// Partition NCHW into non-overlapping windows:
    /// `[n, c, h, w]` -> `[n * (h/win) * (w/win), win*win, c]`.
    WindowPartition {
        /// Window side length.
        window: usize,
    },
    /// Inverse of [`Op::WindowPartition`].
    WindowMerge {
        /// Window side length.
        window: usize,
        /// Original height.
        h: usize,
        /// Original width.
        w: usize,
    },
    /// Cyclic spatial shift (for shifted-window attention).
    CyclicShift {
        /// Vertical shift.
        dy: isize,
        /// Horizontal shift.
        dx: isize,
    },
    /// Global average pooling: `[n, c, h, w]` -> `[n, c]`.
    GlobalAvgPool,
    /// Per-pixel argmax over channels: `[n, c, h, w]` -> `[n, h, w]`.
    ArgmaxChannels,
    /// Identity (used to bypass a layer in a dynamic execution path).
    Identity,
    /// Keeps the first `keep` channels: dim 1 of an NCHW tensor or the last
    /// dim of a `[b, n, c]` sequence. Used to cut a layer's input channels
    /// in a dynamic execution path.
    SliceChannels {
        /// Number of leading channels to keep.
        keep: usize,
    },
    /// Space-to-depth rearrangement: `[n, c, h, w]` ->
    /// `[n, c*b*b, h/b, w/b]`. Used for convolution-free patch embedding
    /// (ViT) and Swin patch merging.
    SpaceToDepth {
        /// Block side length.
        block: usize,
    },
    /// Concatenates rank-3 `[b, n, c]` sequences along the token dimension
    /// (multi-scale feature flattening in Deformable DETR).
    ConcatTokens,
}

/// Error from graph construction or shape inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError {
    /// Node name where the problem was detected.
    pub node: String,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph error at `{}`: {}", self.node, self.msg)
    }
}

impl std::error::Error for GraphError {}

fn err(node: &str, msg: impl Into<String>) -> GraphError {
    GraphError {
        node: node.to_string(),
        msg: msg.into(),
    }
}

impl Op {
    /// The variant name (e.g. `"Conv2d"`), used as the op-kind label of
    /// trace events and flame summaries.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::Input { .. } => "Input",
            Op::Conv2d { .. } => "Conv2d",
            Op::Linear { .. } => "Linear",
            Op::Sdpa { .. } => "Sdpa",
            Op::DeformAttn { .. } => "DeformAttn",
            Op::LayerNorm => "LayerNorm",
            Op::BatchNorm => "BatchNorm",
            Op::Relu => "Relu",
            Op::Gelu => "Gelu",
            Op::MaxPool { .. } => "MaxPool",
            Op::AdaptiveAvgPool { .. } => "AdaptiveAvgPool",
            Op::Resize { .. } => "Resize",
            Op::Concat => "Concat",
            Op::Add => "Add",
            Op::FlattenHw => "FlattenHw",
            Op::UnflattenHw { .. } => "UnflattenHw",
            Op::WindowPartition { .. } => "WindowPartition",
            Op::WindowMerge { .. } => "WindowMerge",
            Op::CyclicShift { .. } => "CyclicShift",
            Op::GlobalAvgPool => "GlobalAvgPool",
            Op::ArgmaxChannels => "ArgmaxChannels",
            Op::Identity => "Identity",
            Op::SliceChannels { .. } => "SliceChannels",
            Op::SpaceToDepth { .. } => "SpaceToDepth",
            Op::ConcatTokens => "ConcatTokens",
        }
    }

    /// The structural class of this operator.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Conv2d { .. } => OpClass::Conv,
            Op::Linear { .. } => OpClass::Matmul,
            Op::Sdpa { .. } | Op::DeformAttn { .. } => OpClass::Attention,
            Op::LayerNorm | Op::BatchNorm => OpClass::Norm,
            Op::Relu | Op::Gelu | Op::Add => OpClass::Elementwise,
            _ => OpClass::Memory,
        }
    }

    /// Number of inputs this operator requires; `None` means variadic
    /// (at least one).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::Input { .. } => Some(0),
            Op::Sdpa { .. } => Some(3),
            Op::DeformAttn { .. } => Some(2),
            Op::Add => Some(2),
            Op::Concat | Op::ConcatTokens => None,
            _ => Some(1),
        }
    }

    /// Infers the output shape given input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when input shapes are incompatible with this
    /// operator's parameters.
    pub fn infer_shape(&self, name: &str, inputs: &[&[usize]]) -> Result<Vec<usize>, GraphError> {
        if let Some(a) = self.arity() {
            if inputs.len() != a {
                return Err(err(
                    name,
                    format!("{self:?} expects {a} inputs, got {}", inputs.len()),
                ));
            }
        } else if inputs.is_empty() {
            return Err(err(name, "concat needs at least one input"));
        }
        let nchw = |s: &[usize]| -> Result<(usize, usize, usize, usize), GraphError> {
            if s.len() != 4 {
                return Err(err(name, format!("expected NCHW input, got {s:?}")));
            }
            Ok((s[0], s[1], s[2], s[3]))
        };
        match self {
            Op::Input { shape } => Ok(shape.clone()),
            Op::Conv2d {
                out_channels,
                kernel,
                stride,
                pad,
                groups,
                ..
            } => {
                let (n, c, h, w) = nchw(inputs[0])?;
                if *groups == 0 || c % groups != 0 || out_channels % groups != 0 {
                    return Err(err(
                        name,
                        format!(
                            "channels in={c} out={out_channels} not divisible by groups {groups}"
                        ),
                    ));
                }
                if h + 2 * pad.0 < kernel.0 || w + 2 * pad.1 < kernel.1 {
                    return Err(err(
                        name,
                        format!("kernel {kernel:?} larger than padded input {h}x{w}"),
                    ));
                }
                let oh = (h + 2 * pad.0 - kernel.0) / stride.0 + 1;
                let ow = (w + 2 * pad.1 - kernel.1) / stride.1 + 1;
                Ok(vec![n, *out_channels, oh, ow])
            }
            Op::Linear { out_features, .. } => {
                let s = inputs[0];
                if s.is_empty() {
                    return Err(err(name, "linear input must have at least one dim"));
                }
                let mut out = s.to_vec();
                *out.last_mut().expect("nonempty") = *out_features;
                Ok(out)
            }
            Op::LayerNorm | Op::Relu | Op::Gelu | Op::Identity => Ok(inputs[0].to_vec()),
            Op::BatchNorm => {
                nchw(inputs[0])?;
                Ok(inputs[0].to_vec())
            }
            Op::Sdpa { heads } => {
                let q = inputs[0];
                let k = inputs[1];
                let v = inputs[2];
                if q.len() != 3 || k.len() != 3 || v.len() != 3 {
                    return Err(err(
                        name,
                        format!("sdpa expects rank-3 inputs, got {q:?} {k:?} {v:?}"),
                    ));
                }
                if q[0] != k[0] || q[0] != v[0] || q[2] != k[2] || k[1] != v[1] {
                    return Err(err(
                        name,
                        format!("inconsistent sdpa inputs q={q:?} k={k:?} v={v:?}"),
                    ));
                }
                if *heads == 0 || !q[2].is_multiple_of(*heads) {
                    return Err(err(
                        name,
                        format!("dim {} not divisible by heads {heads}", q[2]),
                    ));
                }
                // Output embeds the value dimension per token.
                Ok(vec![q[0], q[1], v[2]])
            }
            Op::DeformAttn { heads, dim, .. } => {
                let q = inputs[0];
                let v = inputs[1];
                if q.len() != 3 || v.len() != 3 {
                    return Err(err(
                        name,
                        format!("deform-attn expects rank-3 inputs, got {q:?} {v:?}"),
                    ));
                }
                if q[0] != v[0] || q[2] != *dim || v[2] != *dim {
                    return Err(err(
                        name,
                        format!("inconsistent deform-attn inputs q={q:?} v={v:?} dim={dim}"),
                    ));
                }
                if *heads == 0 || dim % heads != 0 {
                    return Err(err(
                        name,
                        format!("dim {dim} not divisible by heads {heads}"),
                    ));
                }
                Ok(q.to_vec())
            }
            Op::MaxPool {
                window,
                stride,
                pad,
            } => {
                let (n, c, h, w) = nchw(inputs[0])?;
                if *window == 0 || *stride == 0 {
                    return Err(err(name, "window and stride must be nonzero"));
                }
                let oh = (h + 2 * pad - window) / stride + 1;
                let ow = (w + 2 * pad - window) / stride + 1;
                Ok(vec![n, c, oh, ow])
            }
            Op::AdaptiveAvgPool { out_h, out_w } | Op::Resize { out_h, out_w } => {
                let (n, c, _, _) = nchw(inputs[0])?;
                if *out_h == 0 || *out_w == 0 {
                    return Err(err(name, "output size must be nonzero"));
                }
                Ok(vec![n, c, *out_h, *out_w])
            }
            Op::Concat => {
                let (n, _, h, w) = nchw(inputs[0])?;
                let mut total_c = 0;
                for s in inputs {
                    let (n2, c2, h2, w2) = nchw(s)?;
                    if n2 != n || h2 != h || w2 != w {
                        return Err(err(name, format!("concat shape mismatch: {s:?}")));
                    }
                    total_c += c2;
                }
                Ok(vec![n, total_c, h, w])
            }
            Op::Add => {
                if inputs[0] != inputs[1] {
                    return Err(err(
                        name,
                        format!("add shape mismatch: {:?} vs {:?}", inputs[0], inputs[1]),
                    ));
                }
                Ok(inputs[0].to_vec())
            }
            Op::FlattenHw => {
                let (n, c, h, w) = nchw(inputs[0])?;
                Ok(vec![n, h * w, c])
            }
            Op::UnflattenHw { h, w } => {
                let s = inputs[0];
                if s.len() != 3 || s[1] != h * w {
                    return Err(err(name, format!("cannot unflatten {s:?} to h={h} w={w}")));
                }
                Ok(vec![s[0], s[2], *h, *w])
            }
            Op::WindowPartition { window } => {
                // Inputs whose spatial size is not a window multiple are
                // implicitly zero-padded (as Swin does before windowing).
                let (n, c, h, w) = nchw(inputs[0])?;
                if *window == 0 {
                    return Err(err(name, "window must be nonzero"));
                }
                let (nh, nw) = (h.div_ceil(*window), w.div_ceil(*window));
                Ok(vec![n * nh * nw, window * window, c])
            }
            Op::WindowMerge { window, h, w } => {
                // Padded pixels introduced by the matching partition are
                // cropped away.
                let s = inputs[0];
                if s.len() != 3 || s[1] != window * window {
                    return Err(err(name, format!("cannot merge windows from {s:?}")));
                }
                if *window == 0 {
                    return Err(err(
                        name,
                        format!("bad merge target {h}x{w} window {window}"),
                    ));
                }
                let windows = h.div_ceil(*window) * w.div_ceil(*window);
                if !s[0].is_multiple_of(windows) {
                    return Err(err(
                        name,
                        format!("batch {} not divisible by window count {windows}", s[0]),
                    ));
                }
                Ok(vec![s[0] / windows, s[2], *h, *w])
            }
            Op::CyclicShift { .. } => {
                nchw(inputs[0])?;
                Ok(inputs[0].to_vec())
            }
            Op::GlobalAvgPool => {
                let (n, c, _, _) = nchw(inputs[0])?;
                Ok(vec![n, c])
            }
            Op::ArgmaxChannels => {
                let (n, _, h, w) = nchw(inputs[0])?;
                Ok(vec![n, h, w])
            }
            Op::SliceChannels { keep } => {
                let s = inputs[0];
                let mut out = s.to_vec();
                match s.len() {
                    4 => {
                        if *keep == 0 || *keep > s[1] {
                            return Err(err(
                                name,
                                format!("cannot keep {keep} of {} channels", s[1]),
                            ));
                        }
                        out[1] = *keep;
                    }
                    3 => {
                        if *keep == 0 || *keep > s[2] {
                            return Err(err(
                                name,
                                format!("cannot keep {keep} of {} features", s[2]),
                            ));
                        }
                        out[2] = *keep;
                    }
                    _ => return Err(err(name, format!("slice expects rank 3 or 4, got {s:?}"))),
                }
                Ok(out)
            }
            Op::SpaceToDepth { block } => {
                let (n, c, h, w) = nchw(inputs[0])?;
                if *block == 0 || h % block != 0 || w % block != 0 {
                    return Err(err(
                        name,
                        format!("spatial {h}x{w} not divisible by block {block}"),
                    ));
                }
                Ok(vec![n, c * block * block, h / block, w / block])
            }
            Op::ConcatTokens => {
                let first = inputs[0];
                if first.len() != 3 {
                    return Err(err(name, format!("expected rank-3 inputs, got {first:?}")));
                }
                let (b, c) = (first[0], first[2]);
                let mut tokens = 0;
                for s in inputs {
                    if s.len() != 3 || s[0] != b || s[2] != c {
                        return Err(err(name, format!("token concat shape mismatch: {s:?}")));
                    }
                    tokens += s[1];
                }
                Ok(vec![b, tokens, c])
            }
        }
    }

    /// Floating-point operations performed by this operator.
    ///
    /// Counted in the MAC convention (one multiply-accumulate = one FLOP),
    /// which is what mmsegmentation/mmdetection report and what the paper's
    /// GFLOPs figures use (SegFormer-B2 at 512x512 = 62.6 "GFLOPs", of which
    /// `Conv2DFuse` = 3072*768*128*128 = 38.7G = 62%).
    pub fn flops(&self, inputs: &[&[usize]], output: &[usize]) -> u64 {
        let numel = |s: &[usize]| s.iter().product::<usize>() as u64;
        match self {
            Op::Conv2d {
                out_channels: _,
                kernel,
                groups,
                bias,
                ..
            } => {
                let c = inputs[0][1] as u64;
                let out = numel(output);
                let macs = out * (c / *groups as u64) * kernel.0 as u64 * kernel.1 as u64;
                macs + if *bias { out } else { 0 }
            }
            Op::Linear { out_features, bias } => {
                let in_features = *inputs[0].last().unwrap_or(&0) as u64;
                let rows = numel(inputs[0]) / in_features.max(1);
                let macs = rows * in_features * *out_features as u64;
                macs + if *bias {
                    rows * *out_features as u64
                } else {
                    0
                }
            }
            Op::Sdpa { .. } => {
                let (b, n, d) = (
                    inputs[0][0] as u64,
                    inputs[0][1] as u64,
                    inputs[0][2] as u64,
                );
                let m = inputs[1][1] as u64;
                let dv = inputs[2][2] as u64;
                // scores (b*n*m*d MACs) + softmax (~5 flops/element) + context.
                b * n * m * d + 5 * b * n * m + b * n * m * dv
            }
            Op::DeformAttn {
                heads: _,
                levels,
                points,
                dim,
            } => {
                let (b, n, d) = (inputs[0][0] as u64, inputs[0][1] as u64, *dim as u64);
                debug_assert_eq!(d, inputs[0][2] as u64);
                let m = inputs[1][1] as u64;
                let (l, p) = (*levels as u64, *points as u64);
                // value projection + output projection over all value tokens
                // and query tokens, offset/weight projections per query, and
                // the sampled weighted aggregation.
                let value_proj = b * m * d * d;
                let out_proj = b * n * d * d;
                let offsets = b * n * d * (l * p * 3); // 2 offsets + 1 weight
                let aggregate = b * n * l * p * d;
                value_proj + out_proj + offsets + aggregate
            }
            Op::LayerNorm => 8 * numel(inputs[0]),
            Op::BatchNorm => 2 * numel(inputs[0]),
            Op::Relu => numel(inputs[0]),
            Op::Gelu => 10 * numel(inputs[0]),
            Op::Add => numel(output),
            Op::MaxPool { window, .. } => numel(output) * (*window as u64).pow(2),
            Op::AdaptiveAvgPool { .. } | Op::GlobalAvgPool => numel(inputs[0]),
            Op::Resize { .. } => 8 * numel(output),
            Op::ArgmaxChannels => numel(inputs[0]),
            // Pure data movement.
            Op::Input { .. }
            | Op::Concat
            | Op::FlattenHw
            | Op::UnflattenHw { .. }
            | Op::WindowPartition { .. }
            | Op::WindowMerge { .. }
            | Op::CyclicShift { .. }
            | Op::Identity
            | Op::SliceChannels { .. }
            | Op::SpaceToDepth { .. }
            | Op::ConcatTokens => 0,
        }
    }

    /// Number of learned parameters held by this operator.
    pub fn params(&self, inputs: &[&[usize]]) -> u64 {
        match self {
            Op::Conv2d {
                out_channels,
                kernel,
                groups,
                bias,
                ..
            } => {
                let c = inputs[0][1] as u64;
                let w =
                    *out_channels as u64 * (c / *groups as u64) * kernel.0 as u64 * kernel.1 as u64;
                w + if *bias { *out_channels as u64 } else { 0 }
            }
            Op::Linear { out_features, bias } => {
                let in_features = *inputs[0].last().unwrap_or(&0) as u64;
                in_features * *out_features as u64 + if *bias { *out_features as u64 } else { 0 }
            }
            Op::DeformAttn {
                levels,
                points,
                dim,
                ..
            } => {
                let d = *dim as u64;
                let (l, p) = (*levels as u64, *points as u64);
                // value proj + output proj + offset/weight projections.
                d * d * 2 + d * l * p * 3
            }
            Op::LayerNorm => 2 * *inputs[0].last().unwrap_or(&0) as u64,
            Op::BatchNorm => 2 * inputs[0][1] as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference_matches_formula() {
        let op = Op::Conv2d {
            out_channels: 64,
            kernel: (7, 7),
            stride: (4, 4),
            pad: (3, 3),
            groups: 1,
            bias: true,
        };
        let s = op.infer_shape("t", &[&[1, 3, 512, 512]]).unwrap();
        assert_eq!(s, vec![1, 64, 128, 128]);
    }

    #[test]
    fn conv_flops_formula() {
        // 1x1 conv, 3072 -> 768 on 128x128: the paper's Conv2DFuse.
        let op = Op::Conv2d {
            out_channels: 768,
            kernel: (1, 1),
            stride: (1, 1),
            pad: (0, 0),
            groups: 1,
            bias: true,
        };
        let input = [1usize, 3072, 128, 128];
        let out = op.infer_shape("fuse", &[&input]).unwrap();
        let flops = op.flops(&[&input], &out);
        // 128*128*768*3072 MACs + bias
        let expect = 128u64 * 128 * 768 * 3072 + 128 * 128 * 768;
        assert_eq!(flops, expect);
        // ~38.7 GMACs: 62% of SegFormer-B2's 62.6 "GFLOPs" at the ADE image
        // size comes from this single layer, exactly as the paper reports.
        assert!(flops > 38_000_000_000 && flops < 40_000_000_000);
    }

    #[test]
    fn depthwise_conv_flops_scale_with_groups() {
        let dense = Op::Conv2d {
            out_channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            pad: (1, 1),
            groups: 1,
            bias: false,
        };
        let dw = Op::Conv2d {
            out_channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            pad: (1, 1),
            groups: 64,
            bias: false,
        };
        let input = [1usize, 64, 32, 32];
        let out = dense.infer_shape("d", &[&input]).unwrap();
        assert_eq!(dense.flops(&[&input], &out), 64 * dw.flops(&[&input], &out));
    }

    #[test]
    fn sdpa_shape_and_flops() {
        let op = Op::Sdpa { heads: 8 };
        let q = [2usize, 100, 64];
        let k = [2usize, 25, 64];
        let v = [2usize, 25, 64];
        let s = op.infer_shape("attn", &[&q, &k, &v]).unwrap();
        assert_eq!(s, vec![2, 100, 64]);
        let flops = op.flops(&[&q, &k, &v], &s);
        let expect = 2 * 100 * 25 * 64 + 5 * 2 * 100 * 25 + 2 * 100 * 25 * 64;
        assert_eq!(flops, expect as u64);
    }

    #[test]
    fn sdpa_rejects_head_mismatch() {
        let op = Op::Sdpa { heads: 7 };
        let q = [1usize, 10, 64];
        assert!(op.infer_shape("attn", &[&q, &q, &q]).is_err());
    }

    #[test]
    fn window_partition_merge_round_trip_shapes() {
        let part = Op::WindowPartition { window: 7 };
        let s = part.infer_shape("p", &[&[1, 96, 56, 56]]).unwrap();
        assert_eq!(s, vec![64, 49, 96]);
        let merge = Op::WindowMerge {
            window: 7,
            h: 56,
            w: 56,
        };
        let back = merge.infer_shape("m", &[&s]).unwrap();
        assert_eq!(back, vec![1, 96, 56, 56]);
    }

    #[test]
    fn flatten_unflatten_round_trip() {
        let f = Op::FlattenHw;
        let s = f.infer_shape("f", &[&[2, 32, 16, 16]]).unwrap();
        assert_eq!(s, vec![2, 256, 32]);
        let u = Op::UnflattenHw { h: 16, w: 16 };
        assert_eq!(u.infer_shape("u", &[&s]).unwrap(), vec![2, 32, 16, 16]);
    }

    #[test]
    fn concat_sums_channels() {
        let op = Op::Concat;
        let a = [1usize, 768, 128, 128];
        let shapes: Vec<&[usize]> = vec![&a, &a, &a, &a];
        assert_eq!(
            op.infer_shape("c", &shapes).unwrap(),
            vec![1, 3072, 128, 128]
        );
    }

    #[test]
    fn linear_params_count() {
        let op = Op::Linear {
            out_features: 256,
            bias: true,
        };
        assert_eq!(op.params(&[&[1, 10, 64]]), 64 * 256 + 256);
    }

    #[test]
    fn identity_is_free() {
        let op = Op::Identity;
        let s = [1usize, 4, 8, 8];
        assert_eq!(op.flops(&[&s], &s), 0);
        assert_eq!(op.params(&[&s]), 0);
    }

    #[test]
    fn role_decoder_classification() {
        assert!(LayerRole::FuseConv.is_decoder());
        assert!(LayerRole::FpnConv { level: 1 }.is_decoder());
        assert!(!LayerRole::EncoderBlock { stage: 0, block: 0 }.is_decoder());
        assert!(!LayerRole::Backbone.is_decoder());
    }
}
