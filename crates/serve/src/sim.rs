//! Deterministic discrete-event simulation of the serving loop.
//!
//! Shares the scheduling semantics of the threaded [`crate::Server`] —
//! EDF dispatch, admission control at arrival and at dispatch, a bounded
//! queue — but advances a *virtual* clock, so a load sweep is exactly
//! reproducible under a fixed seed and independent of the host machine.
//! Service times are the LUT's resource estimates scaled by a fixed
//! seconds-per-unit rate; inference outputs are not materialized (the
//! metrics only need the selected configuration and its accuracy
//! estimate), which keeps sweeping hundreds of operating points cheap.

use crate::metrics::ServerMetrics;
use crate::policy::{admissible, budget_for, RecoveryPolicy, SchedulePolicy};
use crate::request::{FailureReason, FailureRecord, Outcome, RequestRecord, ShedReason};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vit_drt::EngineCore;
use vit_fault::{FaultKind, FaultPlan};

/// One request arrival in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimArrival {
    /// Arrival (submission) time in virtual seconds.
    pub time: f64,
    /// Relative deadline: the request must finish by `time + slack`.
    pub slack: f64,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Parallel workers.
    pub workers: usize,
    /// EDF queue capacity; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
    /// Virtual seconds one LUT resource unit takes to execute.
    pub secs_per_unit: f64,
    /// Deterministic fault injection plan (`None` = clean runs). Draws are
    /// keyed by the request's admission sequence number and attempt, so a
    /// simulated chaos run is exactly reproducible.
    pub fault: Option<FaultPlan>,
    /// What a worker does when an attempt faults.
    pub recovery: RecoveryPolicy,
    /// Watchdog allowance as a multiple of the selected entry's expected
    /// service time. Unlike the threaded server (which can only observe an
    /// overrun after the fact), the simulator models the real abort: a
    /// stalled attempt is killed at the allowance and handed to recovery.
    pub watchdog_grace: f64,
}

impl SimConfig {
    /// A clean (fault-free) simulation configuration with the default
    /// recovery policy and watchdog grace — the common case; chaos runs
    /// layer [`SimConfig::with_fault`] on top.
    pub fn new(
        workers: usize,
        queue_depth: usize,
        policy: SchedulePolicy,
        secs_per_unit: f64,
    ) -> Self {
        SimConfig {
            workers,
            queue_depth,
            policy,
            secs_per_unit,
            fault: None,
            recovery: RecoveryPolicy::default(),
            watchdog_grace: 4.0,
        }
    }

    /// Arms fault injection.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }
}

/// Fraction of the expected service time a crashed attempt burns before
/// dying (a crash is detected mid-flight, not at the end of service).
const CRASH_BURN: f64 = 0.5;
/// Fraction of the expected service time a failed plan replay burns
/// before the executor reports it (replay validation fails fast).
const REPLAY_BURN: f64 = 0.05;

/// Totally ordered f64 for use as a heap key (virtual times are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    arrival: f64,
    deadline: f64,
}

/// Runs the simulation over `arrivals` (any order; sorted internally by
/// arrival time, stably) and returns aggregate metrics in virtual seconds.
///
/// # Panics
///
/// Panics when `config.workers` or `config.queue_depth` is zero, or when
/// `config.secs_per_unit` is not positive.
pub fn simulate(core: &EngineCore, config: SimConfig, arrivals: &[SimArrival]) -> ServerMetrics {
    ServerMetrics::from_outcomes(&simulate_outcomes(core, config, arrivals))
}

/// Like [`simulate`], but returns the raw per-request [`Outcome`]s instead
/// of aggregating them — callers that need distributions the aggregate
/// metrics do not carry (e.g. which configurations the *degraded*
/// completions ran, for fidelity measurement) post-process these.
///
/// # Panics
///
/// Same contract as [`simulate`].
pub fn simulate_outcomes(
    core: &EngineCore,
    config: SimConfig,
    arrivals: &[SimArrival],
) -> Vec<Outcome> {
    assert!(config.workers > 0, "simulation needs at least one worker");
    assert!(config.queue_depth > 0, "simulation needs queue capacity");
    assert!(
        config.secs_per_unit > 0.0,
        "seconds-per-unit must be positive"
    );
    let spu = config.secs_per_unit;
    let min_cost = core.min_resource();

    let mut sorted: Vec<SimArrival> = arrivals.to_vec();
    sorted.sort_by(|a, b| a.time.total_cmp(&b.time));

    // Earliest-deadline-first queue of admitted, not-yet-dispatched
    // requests; FIFO sequence number breaks deadline ties.
    let mut queue: BinaryHeap<Reverse<(OrdF64, u64)>> = BinaryHeap::new();
    let mut queued: Vec<QueuedReq> = Vec::new(); // indexed by seq
                                                 // When each worker becomes free, as a min-heap.
    let mut workers: BinaryHeap<Reverse<OrdF64>> = BinaryHeap::new();
    for _ in 0..config.workers {
        workers.push(Reverse(OrdF64(0.0)));
    }

    let mut outcomes: Vec<Outcome> = Vec::with_capacity(sorted.len());
    let mut next_arrival = 0usize;

    // Admission control at arrival time: slack below the cheapest path or
    // a full queue sheds immediately.
    let admit = |a: &SimArrival,
                 queue: &mut BinaryHeap<Reverse<(OrdF64, u64)>>,
                 queued: &mut Vec<QueuedReq>,
                 outcomes: &mut Vec<Outcome>| {
        if !admissible(a.slack / spu, min_cost) {
            outcomes.push(Outcome::Shed(ShedReason::SlackBelowCheapest));
            return;
        }
        if queue.len() >= config.queue_depth {
            outcomes.push(Outcome::Shed(ShedReason::QueueFull));
            return;
        }
        let seq = queued.len() as u64;
        let deadline = a.time + a.slack;
        queued.push(QueuedReq {
            arrival: a.time,
            deadline,
        });
        queue.push(Reverse((OrdF64(deadline), seq)));
    };

    loop {
        let free_at = workers.peek().expect("worker heap never empties").0 .0;
        // Everything that has arrived by the time a worker frees must be
        // visible to that dispatch decision (EDF is over *queued* work).
        while next_arrival < sorted.len() && sorted[next_arrival].time <= free_at {
            admit(
                &sorted[next_arrival],
                &mut queue,
                &mut queued,
                &mut outcomes,
            );
            next_arrival += 1;
        }
        if queue.is_empty() {
            if next_arrival >= sorted.len() {
                break; // drained
            }
            // Idle: jump to the next arrival.
            admit(
                &sorted[next_arrival],
                &mut queue,
                &mut queued,
                &mut outcomes,
            );
            next_arrival += 1;
            continue;
        }

        // Dispatch the earliest-deadline queued request on the earliest
        // free worker.
        let Reverse((_, seq)) = queue.pop().expect("checked non-empty");
        let req = queued[seq as usize];
        workers.pop();
        let start = free_at.max(req.arrival);
        let fault_plan = config.fault.filter(|p| p.is_active());

        // Per-attempt recovery loop mirroring the threaded worker: each
        // attempt re-checks admissibility against the time already burned
        // and re-selects against the *remaining* slack, so a retry
        // degrades to a cheaper configuration by construction.
        let mut t = start;
        let mut attempt: u32 = 0;
        let mut faults_seen: u32 = 0;
        let mut interpret_fallback = false;
        let mut last_reason = FailureReason::Engine;
        loop {
            let slack_units = (req.deadline - t) / spu;
            if !admissible(slack_units, min_cost) {
                if attempt == 0 {
                    // Slack expired while waiting: shed at dispatch,
                    // worker stays free at the same instant.
                    workers.push(Reverse(OrdF64(free_at)));
                    outcomes.push(Outcome::Shed(ShedReason::SlackExhausted));
                } else {
                    // Slack ran out mid-recovery: the fault cost this
                    // request its deadline, and the worker its time.
                    workers.push(Reverse(OrdF64(t)));
                    outcomes.push(Outcome::Failed(FailureRecord {
                        reason: last_reason,
                        retries: attempt,
                        faults_seen,
                    }));
                }
                break;
            }
            let budget = budget_for(config.policy, core, slack_units);
            let (entry, _fits) = core.select(budget);
            let expected = entry.resource * spu;

            let drawn = match fault_plan.and_then(|p| p.decide(seq, attempt)) {
                // Replay faults stop arising once recovery fell back to
                // the interpreting backend.
                Some(FaultKind::PlanReplay) if interpret_fallback => None,
                d => d,
            };
            let (burned, result) = match drawn {
                Some(FaultKind::Crash) => (CRASH_BURN * expected, Err(FailureReason::Crash)),
                // Corruption runs to completion; the output guard catches
                // it there, so a full service time is burned.
                Some(FaultKind::BitFlip) => (expected, Err(FailureReason::GuardTripped)),
                Some(FaultKind::Stall) => {
                    let factor = fault_plan.expect("drawn implies a plan").stall_factor;
                    let actual = expected * factor.max(1.0);
                    let allowance = expected * config.watchdog_grace;
                    if actual > allowance {
                        // The watchdog aborts the stalled attempt at its
                        // allowance instead of letting it run out.
                        (allowance, Err(FailureReason::Watchdog))
                    } else {
                        (actual, Ok(()))
                    }
                }
                Some(FaultKind::PlanReplay) => {
                    (REPLAY_BURN * expected, Err(FailureReason::PlanReplay))
                }
                // No fault (or an unknown future kind): clean service.
                _ => (expected, Ok(())),
            };
            match result {
                Ok(()) => {
                    let finish = t + burned;
                    workers.push(Reverse(OrdF64(finish)));
                    outcomes.push(Outcome::Completed(RequestRecord {
                        latency: finish - req.arrival,
                        queue_wait: start - req.arrival,
                        met_deadline: finish <= req.deadline,
                        accuracy: entry.norm_miou,
                        config: entry.config,
                        retries: attempt,
                        faults_seen,
                    }));
                    break;
                }
                Err(reason) => {
                    t += burned;
                    faults_seen += 1;
                    last_reason = reason;
                    if reason == FailureReason::PlanReplay {
                        interpret_fallback = true;
                    }
                    if attempt >= config.recovery.max_retries() {
                        workers.push(Reverse(OrdF64(t)));
                        outcomes.push(Outcome::Failed(FailureRecord {
                            reason,
                            retries: attempt,
                            faults_seen,
                        }));
                        break;
                    }
                    attempt += 1;
                }
            }
        }
    }

    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_drt::{EngineCore, EngineFamily, Lut};
    use vit_models::{SegFormerDynamic, SegFormerVariant};
    use vit_resilience::{DynConfig, TradeoffPoint};

    /// A tiny synthetic 3-row LUT: costs 1/2/4 units, accuracies
    /// 0.6/0.85/1.0.
    fn test_core() -> EngineCore {
        let point = |r: f64, a: f64| TradeoffPoint {
            label: String::new(),
            config: DynConfig::SegFormer(SegFormerDynamic::with_depths_and_fuse(
                &SegFormerVariant::b0(),
                [1, 1, 1, 1],
                ((r * 64.0) as usize).max(4),
            )),
            resource: r,
            norm_resource: r / 4.0,
            norm_miou: a,
        };
        let lut = Lut::from_points(
            "sim test",
            &[point(1.0, 0.6), point(2.0, 0.85), point(4.0, 1.0)],
        );
        EngineCore::new(
            EngineFamily::SegFormer(SegFormerVariant::b0()),
            150,
            (64, 64),
            lut,
        )
        .unwrap()
    }

    fn uniform_arrivals(n: usize, gap: f64, slack: f64) -> Vec<SimArrival> {
        (0..n)
            .map(|i| SimArrival {
                time: i as f64 * gap,
                slack,
            })
            .collect()
    }

    #[test]
    fn underload_runs_full_model_on_time() {
        let core = test_core();
        let m = simulate(
            &core,
            SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0),
            // One arrival every 4s on 2 workers; service <= 4s: no queueing.
            &uniform_arrivals(20, 4.0, 8.0),
        );
        assert!(m.accounts_for_all_submissions());
        assert_eq!(m.shed(), 0);
        assert_eq!(m.deadline_misses, 0);
        // Plenty of slack: every request runs the full (1.0) model.
        assert!((m.mean_delivered_accuracy - 1.0).abs() < 1e-12);
        assert_eq!(m.config_histogram.len(), 1);
    }

    #[test]
    fn overload_degrades_accuracy_instead_of_missing() {
        let core = test_core();
        let cfg = |policy| SimConfig::new(1, 8, policy, 1.0);
        // Offered load 2x capacity of the full model (arrival every 2s,
        // full service 4s), with slack that fits the full model only when
        // the queue is empty.
        let arrivals = uniform_arrivals(60, 2.0, 5.0);
        let drt = simulate(&core, cfg(SchedulePolicy::DrtDynamic), &arrivals);
        let stat = simulate(&core, cfg(SchedulePolicy::static_full()), &arrivals);
        assert!(drt.accounts_for_all_submissions());
        assert!(stat.accounts_for_all_submissions());
        assert!(
            drt.deadline_miss_rate < stat.deadline_miss_rate,
            "DRT {} vs static {}",
            drt.deadline_miss_rate,
            stat.deadline_miss_rate
        );
        assert!(drt.mean_delivered_accuracy > stat.mean_delivered_accuracy);
        // DRT adapts: more than one configuration gets used.
        assert!(drt.config_histogram.len() > 1);
    }

    #[test]
    fn simulation_is_deterministic() {
        let core = test_core();
        let cfg = SimConfig::new(3, 8, SchedulePolicy::DrtDynamic, 0.01);
        let arrivals = uniform_arrivals(100, 0.013, 0.07);
        let a = simulate(&core, cfg, &arrivals);
        let b = simulate(&core, cfg, &arrivals);
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.config_histogram, b.config_histogram);
    }

    #[test]
    fn chaos_is_deterministic_and_conserves_requests() {
        let core = test_core();
        let plan = FaultPlan {
            seed: 7,
            crash_rate: 0.1,
            bitflip_rate: 0.08,
            stall_rate: 0.08,
            stall_factor: 6.0,
            replay_rate: 0.04,
        };
        let cfg = SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0).with_fault(plan);
        let arrivals = uniform_arrivals(200, 2.1, 9.0);
        let a = simulate(&core, cfg, &arrivals);
        let b = simulate(&core, cfg, &arrivals);
        assert!(a.accounts_for_all_submissions());
        assert!(a.faults_seen > 0, "rates this high must draw faults");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.fault_failures, b.fault_failures);
        assert_eq!(a.faults_seen, b.faults_seen);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.failure_histogram, b.failure_histogram);
    }

    #[test]
    fn degraded_retry_beats_fail_fast_on_goodput_under_faults() {
        let core = test_core();
        let plan = FaultPlan {
            seed: 11,
            crash_rate: 0.15,
            bitflip_rate: 0.10,
            stall_rate: 0.0,
            stall_factor: 1.0,
            replay_rate: 0.0,
        };
        let arrivals = uniform_arrivals(300, 2.5, 10.0);
        let cfg = |rec| {
            SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0)
                .with_fault(plan)
                .with_recovery(rec)
        };
        let healing = simulate(
            &core,
            cfg(RecoveryPolicy::DegradedRetry { max_retries: 2 }),
            &arrivals,
        );
        let brittle = simulate(&core, cfg(RecoveryPolicy::FailFast), &arrivals);
        assert!(healing.accounts_for_all_submissions());
        assert!(brittle.accounts_for_all_submissions());
        assert!(
            healing.goodput > brittle.goodput,
            "degraded retry {} vs fail fast {}",
            healing.goodput,
            brittle.goodput
        );
        assert!(healing.degraded_completions > 0);
        assert_eq!(brittle.retries, 0, "fail fast never retries");
    }

    #[test]
    fn watchdog_aborts_hopeless_stalls() {
        let core = test_core();
        // Every request stalls 10x; grace 4x means every first attempt is
        // aborted by the watchdog at 4x expected.
        let plan = FaultPlan {
            seed: 3,
            crash_rate: 0.0,
            bitflip_rate: 0.0,
            stall_rate: 1.0,
            stall_factor: 10.0,
            replay_rate: 0.0,
        };
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0)
            .with_fault(plan)
            .with_recovery(RecoveryPolicy::FailFast);
        let m = simulate(&core, cfg, &uniform_arrivals(10, 50.0, 40.0));
        assert_eq!(m.completed, 0);
        assert_eq!(m.fault_failures, 10);
        assert_eq!(m.failure_histogram, vec![(FailureReason::Watchdog, 10)]);
    }

    #[test]
    fn replay_failure_falls_back_to_interpreter() {
        let core = test_core();
        // Replay always fails; the fallback must land every request on a
        // successful (interpreted) retry.
        let plan = FaultPlan {
            seed: 5,
            crash_rate: 0.0,
            bitflip_rate: 0.0,
            stall_rate: 0.0,
            stall_factor: 1.0,
            replay_rate: 1.0,
        };
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0).with_fault(plan);
        let m = simulate(&core, cfg, &uniform_arrivals(10, 50.0, 40.0));
        assert_eq!(m.completed, 10);
        assert_eq!(m.fault_failures, 0);
        assert_eq!(m.degraded_completions, 10, "every completion retried once");
        assert_eq!(m.faults_seen, 10);
    }

    #[test]
    fn impossible_slack_is_shed_at_admission() {
        let core = test_core();
        let m = simulate(
            &core,
            SimConfig::new(1, 4, SchedulePolicy::DrtDynamic, 1.0),
            // Slack 0.5 < cheapest cost 1.0: nothing can ever be served.
            &uniform_arrivals(10, 1.0, 0.5),
        );
        assert_eq!(m.completed, 0);
        assert_eq!(m.shed_no_slack, 10);
        assert!(m.accounts_for_all_submissions());
    }
}
