//! End-to-end tests of the DRT engine: real inference under budget traces,
//! LUT persistence, and the baseline comparisons.

use vit_data::{pixel_accuracy, Dataset, SceneGenerator};
use vit_drt::{
    BudgetTrace, DrtEngine, EarlyExitBaseline, EngineFamily, Lut, TracePattern, TrainedFamily,
};
use vit_models::{SegFormerVariant, SwinDynamic, SwinVariant};
use vit_resilience::{ResourceKind, Workload};
use vit_tensor::Tensor;

fn small_engine() -> DrtEngine {
    DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds")
}

#[test]
fn engine_follows_a_budget_trace() {
    let mut engine = small_engine();
    let full = engine.max_resource();
    let scenes = SceneGenerator::new(Dataset::Ade20k, 1);
    // Keep the trace above the cheapest path so every budget is feasible
    // (at a 64x64 executable geometry the kernel-overhead floor limits how
    // much a pruned path can save).
    let cheapest = engine.lut().entries()[0].norm_resource;
    let trace = BudgetTrace::new(
        TracePattern::Sinusoid {
            min: cheapest + 0.02,
            max: 1.0,
            period: 4,
        },
        0,
    );
    let mut est = Vec::new();
    for (i, b) in trace.take(8).enumerate() {
        let scene = scenes.sample_sized(i as u64, 64, 64);
        let out = engine
            .infer(&scene.image, b * full)
            .expect("inference runs");
        assert!(out.met_budget, "step {i} missed a feasible budget");
        assert!(out.resource_estimate <= b * full + 1e-12);
        est.push(out.norm_miou_estimate);
    }
    // The accuracy estimate tracks the budget: the minimum-budget steps use
    // cheaper, less accurate paths.
    let max = est.iter().cloned().fold(f64::MIN, f64::max);
    let min = est.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max > min, "engine never changed configuration");
}

#[test]
fn engine_outputs_are_real_segmentations() {
    let mut engine = small_engine();
    let scene = SceneGenerator::new(Dataset::Ade20k, 2).sample_sized(0, 64, 64);
    let out = engine
        .infer(&scene.image, engine.max_resource())
        .expect("inference runs");
    // Valid class ids everywhere.
    for &v in out.label_map.data() {
        assert!((0.0..150.0).contains(&v) && v == v.trunc());
    }
    // The label map is argmax of the logits.
    let manual = out.logits.argmax_channels().unwrap();
    assert_eq!(manual, out.label_map);
    // pixel_accuracy against itself is 1 (sanity of the metric plumbing).
    assert_eq!(pixel_accuracy(&out.label_map, &manual), 1.0);
}

#[test]
fn tighter_budget_never_increases_estimated_accuracy() {
    let mut engine = small_engine();
    let full = engine.max_resource();
    let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 3);
    let mut prev = f64::INFINITY;
    for frac in [1.2, 1.0, 0.9, 0.8, 0.7, 0.6] {
        let out = engine.infer(&img, frac * full).expect("inference runs");
        assert!(
            out.norm_miou_estimate <= prev + 1e-12,
            "estimate rose at budget {frac}"
        );
        prev = out.norm_miou_estimate;
    }
}

#[test]
fn lut_json_round_trip_preserves_behaviour() {
    let engine = small_engine();
    let json = engine.lut().to_json();
    let lut = Lut::from_json(&json).expect("valid json");
    assert_eq!(lut.len(), engine.lut().len());
    let budget = engine.max_resource() * 0.8;
    let a = engine.lut().lookup(budget).unwrap();
    let b = lut.lookup(budget).unwrap();
    assert_eq!(a.config, b.config);
}

#[test]
fn swin_engine_works_too() {
    let v = SwinVariant::tiny();
    let space: Vec<SwinDynamic> = [2048usize, 1536, 1024, 512]
        .iter()
        .map(|&ch| SwinDynamic {
            depths: v.depths,
            bottleneck_in_channels: ch,
        })
        .collect();
    let mut engine = DrtEngine::swin(
        v,
        Workload::SwinTinyAde,
        (64, 64),
        &space,
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    assert!(engine.lut().len() >= 2);
    let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 4);
    let out = engine
        .infer(&img, engine.max_resource() * 0.9)
        .expect("inference runs");
    assert!(out.met_budget);
    assert_eq!(out.label_map.shape(), &[1, 64, 64]);
}

#[test]
fn energy_budgeted_engine_differs_from_time_budgeted() {
    let time_engine = small_engine();
    let energy_engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuEnergy,
    )
    .expect("engine builds");
    // Different resource kinds produce different absolute scales.
    assert!(time_engine.max_resource() < 1.0); // seconds
    assert!(energy_engine.max_resource() > time_engine.max_resource()); // joules
}

#[test]
fn drt_beats_early_exit_on_deadline_guarantees() {
    let engine = small_engine();
    let cheapest = engine.lut().entries()[0].norm_resource;
    let ee = EarlyExitBaseline::typical();
    // At any budget above the engine's cheapest path, DRT never misses;
    // early exit misses whenever a hard input needs a deeper exit.
    let budget = (cheapest + 1.0) / 2.0; // midway between cheapest and full
    assert!(ee.deadline_miss_rate(budget, 2000, 5) > 0.0);
}

#[test]
fn trained_family_complements_dynamic_pruning() {
    let fam = TrainedFamily::for_workload(Workload::SegFormerAde);
    // Below the smallest dynamic point, the engine cannot help but trained
    // models still can (the paper's §VII-A synthesis).
    let b0 = fam.best_for_budget(0.3);
    assert!(b0.is_some());
    assert!(b0.unwrap().norm_miou > 0.5);
}

#[test]
fn with_lut_rejects_empty() {
    let empty = Lut::from_points("empty", &[]);
    assert!(DrtEngine::with_lut(
        EngineFamily::SegFormer(SegFormerVariant::b0()),
        150,
        (64, 64),
        empty
    )
    .is_err());
}

/// Differential test of the observability layer: attaching an enabled
/// ring-buffer sink must not change a single output bit relative to the
/// disabled (NullSink) path, sequentially and at 8 wavefront threads —
/// and the captured trace must be well-formed with LUT-exact FLOPs.
#[test]
fn tracing_never_changes_outputs() {
    use std::sync::Arc;
    use vit_drt::prelude::*;
    use vit_profiler::Profile;
    use vit_trace::{validate, EventKind};

    let core = small_engine().core().clone();
    let mut scratch = vit_graph::ExecScratch::new();
    let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 23);
    let budget = 0.7 * core.max_resource();

    for threads in [1usize, 8] {
        let exec = if threads > 1 {
            ExecOptions::threaded(threads)
        } else {
            ExecOptions::sequential()
        };
        let silent_ctx = RunContext::default().with_exec(exec.clone());
        let baseline = core
            .infer(&mut scratch, &image, budget, &silent_ctx)
            .expect("untraced inference runs");

        let sink = Arc::new(RingBufferSink::new(1 << 20));
        let traced_ctx = RunContext::default()
            .with_exec(exec)
            .with_sink(sink.clone() as Arc<dyn TraceSink>);
        let traced = core
            .infer(&mut scratch, &image, budget, &traced_ctx)
            .expect("traced inference runs");

        assert_eq!(
            baseline.logits, traced.logits,
            "tracing changed logits at {threads} thread(s)"
        );
        assert_eq!(baseline.label_map, traced.label_map);
        assert_eq!(baseline.config, traced.config);

        let events = sink.take();
        assert_eq!(sink.dropped(), 0);
        validate(&events).expect("traced engine run is well-formed");
        let traced_flops: u64 = events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Node { flops, .. } => *flops,
                _ => 0,
            })
            .sum();
        let graph = core.graph(traced.config).expect("executed graph builds");
        assert_eq!(
            traced_flops,
            Profile::flops_only(&graph).total_flops(),
            "traced FLOPs diverge from the static count at {threads} thread(s)"
        );
    }
}
