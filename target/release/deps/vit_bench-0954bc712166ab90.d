/root/repo/target/release/deps/vit_bench-0954bc712166ab90.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/serve.rs crates/bench/src/loadgen.rs Cargo.toml

/root/repo/target/release/deps/libvit_bench-0954bc712166ab90.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs crates/bench/src/experiments/serve.rs crates/bench/src/loadgen.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/accelerator.rs:
crates/bench/src/experiments/characterization.rs:
crates/bench/src/experiments/engine.rs:
crates/bench/src/experiments/headline.rs:
crates/bench/src/experiments/resilience.rs:
crates/bench/src/experiments/serve.rs:
crates/bench/src/loadgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
