//! DETR and Deformable DETR graph builders.
//!
//! These are the paper's object-detection case studies (§II-A, Figure 1):
//! both are dominated by the ResNet-50 backbone, with the transformer
//! contributing 6-18% of GPU execution time. Sine positional encodings and
//! learned query embeddings are modeled as a second graph input (they are
//! parameters, not computation), which keeps the graph executable.

use crate::error::{ModelError, Result};
use crate::resnet::{build_resnet, ResNetConfig};
use vit_graph::{Graph, LayerRole, NodeId, Op};

/// Configuration shared by DETR and Deformable DETR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetrConfig {
    /// Input image `(height, width)`; multiples of 32.
    pub image: (usize, usize),
    /// Batch size.
    pub batch: usize,
    /// Transformer embedding dimension (256 in both papers).
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub encoder_layers: usize,
    /// Decoder layers.
    pub decoder_layers: usize,
    /// Object queries (100 for DETR, 300 for Deformable DETR).
    pub num_queries: usize,
    /// FFN hidden dimension (2048 for DETR, 1024 for Deformable DETR).
    pub ffn_dim: usize,
    /// Detection classes (91 for COCO + background conventions).
    pub num_classes: usize,
}

impl DetrConfig {
    /// DETR defaults at the paper's COCO size (640x480).
    pub fn detr_coco() -> Self {
        DetrConfig {
            image: (480, 640),
            batch: 1,
            dim: 256,
            heads: 8,
            encoder_layers: 6,
            decoder_layers: 6,
            num_queries: 100,
            ffn_dim: 2048,
            num_classes: 92,
        }
    }

    /// Deformable DETR defaults at the paper's COCO size.
    pub fn deformable_coco() -> Self {
        DetrConfig {
            num_queries: 300,
            ffn_dim: 1024,
            num_classes: 91,
            ..Self::detr_coco()
        }
    }

    /// Same configuration at a different image size.
    pub fn with_image(mut self, h: usize, w: usize) -> Self {
        self.image = (h, w);
        self
    }

    /// Same configuration with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    fn validate(&self) -> Result<()> {
        let (h, w) = self.image;
        if h % 32 != 0 || w % 32 != 0 || h == 0 || w == 0 {
            return Err(ModelError::BadConfig(format!(
                "image {h}x{w} must be a positive multiple of 32"
            )));
        }
        if self.batch == 0
            || self.dim == 0
            || self.heads == 0
            || !self.dim.is_multiple_of(self.heads)
        {
            return Err(ModelError::BadConfig(format!(
                "batch {} / dim {} / heads {} invalid",
                self.batch, self.dim, self.heads
            )));
        }
        if self.num_queries == 0 || self.encoder_layers == 0 || self.decoder_layers == 0 {
            return Err(ModelError::BadConfig(
                "queries and layer counts must be nonzero".to_string(),
            ));
        }
        Ok(())
    }
}

fn linear(out: usize) -> Op {
    Op::Linear {
        out_features: out,
        bias: true,
    }
}

/// Appends a standard post-norm transformer FFN (`dim -> ffn -> dim` with a
/// residual and LayerNorm), returning the output node.
fn add_ffn(
    g: &mut Graph,
    input: NodeId,
    prefix: &str,
    role: LayerRole,
    dim: usize,
    ffn_dim: usize,
) -> Result<NodeId> {
    let fc1 = g.add(
        &format!("{prefix}.ffn.fc1"),
        linear(ffn_dim),
        role,
        &[input],
    )?;
    let act = g.add(&format!("{prefix}.ffn.relu"), Op::Relu, role, &[fc1])?;
    let fc2 = g.add(&format!("{prefix}.ffn.fc2"), linear(dim), role, &[act])?;
    let add = g.add(
        &format!("{prefix}.ffn.residual"),
        Op::Add,
        role,
        &[input, fc2],
    )?;
    Ok(g.add(&format!("{prefix}.ffn.norm"), Op::LayerNorm, role, &[add])?)
}

/// Appends a standard multi-head attention sublayer (post-norm).
fn add_attention(
    g: &mut Graph,
    query: NodeId,
    kv: NodeId,
    prefix: &str,
    role: LayerRole,
    dim: usize,
    heads: usize,
) -> Result<NodeId> {
    let q = g.add(&format!("{prefix}.q"), linear(dim), role, &[query])?;
    let k = g.add(&format!("{prefix}.k"), linear(dim), role, &[kv])?;
    let v = g.add(&format!("{prefix}.v"), linear(dim), role, &[kv])?;
    let sdpa = g.add(
        &format!("{prefix}.sdpa"),
        Op::Sdpa { heads },
        role,
        &[q, k, v],
    )?;
    let proj = g.add(&format!("{prefix}.proj"), linear(dim), role, &[sdpa])?;
    let add = g.add(&format!("{prefix}.residual"), Op::Add, role, &[query, proj])?;
    Ok(g.add(&format!("{prefix}.norm"), Op::LayerNorm, role, &[add])?)
}

/// Appends the shared detection heads (classification linear + 3-layer box
/// MLP) and returns the box output (the graph output; class logits are a
/// second consumer of the decoder state and remain in the graph).
fn add_heads(g: &mut Graph, decoder_out: NodeId, dim: usize, num_classes: usize) -> Result<NodeId> {
    let role = LayerRole::Head;
    let _cls = g.add("head.class", linear(num_classes), role, &[decoder_out])?;
    let b1 = g.add("head.bbox.fc1", linear(dim), role, &[decoder_out])?;
    let r1 = g.add("head.bbox.relu1", Op::Relu, role, &[b1])?;
    let b2 = g.add("head.bbox.fc2", linear(dim), role, &[r1])?;
    let r2 = g.add("head.bbox.relu2", Op::Relu, role, &[b2])?;
    Ok(g.add("head.bbox.fc3", linear(4), role, &[r2])?)
}

/// Builds the DETR graph: ResNet-50 backbone + conventional transformer.
///
/// Inputs: `image [b, 3, H, W]` and `queries [b, num_queries, dim]`
/// (the learned object-query embeddings). Output: box predictions
/// `[b, num_queries, 4]`.
///
/// # Errors
///
/// Returns [`ModelError`] for invalid configurations.
pub fn build_detr(cfg: &DetrConfig) -> Result<Graph> {
    cfg.validate()?;
    let backbone = build_resnet(&ResNetConfig {
        image: cfg.image,
        batch: cfg.batch,
        num_classes: None,
        ..ResNetConfig::imagenet()
    })?;
    let mut g = backbone.graph;
    g.model = "detr".to_string();
    let c5 = g.output().expect("backbone sets output");

    let proj = g.add(
        "transformer.input_proj",
        Op::Conv2d {
            out_channels: cfg.dim,
            kernel: (1, 1),
            stride: (1, 1),
            pad: (0, 0),
            groups: 1,
            bias: true,
        },
        LayerRole::DetTransformerEncoder,
        &[c5],
    )?;
    let mut memory = g.add(
        "transformer.flatten",
        Op::FlattenHw,
        LayerRole::DetTransformerEncoder,
        &[proj],
    )?;
    for layer in 0..cfg.encoder_layers {
        let p = format!("transformer.encoder{layer}");
        let role = LayerRole::DetTransformerEncoder;
        memory = add_attention(
            &mut g,
            memory,
            memory,
            &format!("{p}.self_attn"),
            role,
            cfg.dim,
            cfg.heads,
        )?;
        memory = add_ffn(&mut g, memory, &p, role, cfg.dim, cfg.ffn_dim)?;
    }

    let mut queries = g.input("queries", &[cfg.batch, cfg.num_queries, cfg.dim])?;
    for layer in 0..cfg.decoder_layers {
        let p = format!("transformer.decoder{layer}");
        let role = LayerRole::DetTransformerDecoder;
        queries = add_attention(
            &mut g,
            queries,
            queries,
            &format!("{p}.self_attn"),
            role,
            cfg.dim,
            cfg.heads,
        )?;
        queries = add_attention(
            &mut g,
            queries,
            memory,
            &format!("{p}.cross_attn"),
            role,
            cfg.dim,
            cfg.heads,
        )?;
        queries = add_ffn(&mut g, queries, &p, role, cfg.dim, cfg.ffn_dim)?;
    }

    let boxes = add_heads(&mut g, queries, cfg.dim, cfg.num_classes)?;
    g.set_output(boxes);
    Ok(g)
}

/// Builds the Deformable DETR graph: ResNet-50 backbone, four feature
/// levels, and deformable attention in both encoder and decoder.
///
/// Inputs: `image [b, 3, H, W]` and `queries [b, num_queries, dim]`.
/// Output: box predictions `[b, num_queries, 4]`.
///
/// # Errors
///
/// Returns [`ModelError`] for invalid configurations.
pub fn build_deformable_detr(cfg: &DetrConfig) -> Result<Graph> {
    cfg.validate()?;
    let backbone = build_resnet(&ResNetConfig {
        image: cfg.image,
        batch: cfg.batch,
        num_classes: None,
        ..ResNetConfig::imagenet()
    })?;
    let stage_outputs = backbone.stage_outputs;
    let mut g = backbone.graph;
    g.model = "deformable-detr".to_string();
    let enc_role = LayerRole::DetTransformerEncoder;

    // Feature levels: C3 (stride 8), C4 (16), C5 (32), plus an extra level
    // produced by a stride-2 conv on C5 (stride 64).
    let mut level_tokens: Vec<NodeId> = Vec::with_capacity(4);
    for (i, &src) in stage_outputs.iter().skip(1).enumerate() {
        let proj = g.add(
            &format!("transformer.input_proj{i}"),
            Op::Conv2d {
                out_channels: cfg.dim,
                kernel: (1, 1),
                stride: (1, 1),
                pad: (0, 0),
                groups: 1,
                bias: true,
            },
            enc_role,
            &[src],
        )?;
        let flat = g.add(
            &format!("transformer.flatten{i}"),
            Op::FlattenHw,
            enc_role,
            &[proj],
        )?;
        level_tokens.push(flat);
    }
    let extra = g.add(
        "transformer.input_proj3",
        Op::Conv2d {
            out_channels: cfg.dim,
            kernel: (3, 3),
            stride: (2, 2),
            pad: (1, 1),
            groups: 1,
            bias: true,
        },
        enc_role,
        &[stage_outputs[3]],
    )?;
    let extra_flat = g.add("transformer.flatten3", Op::FlattenHw, enc_role, &[extra])?;
    level_tokens.push(extra_flat);
    let mut memory = g.add(
        "transformer.level_concat",
        Op::ConcatTokens,
        enc_role,
        &level_tokens,
    )?;

    let deform = Op::DeformAttn {
        heads: cfg.heads,
        levels: 4,
        points: 4,
        dim: cfg.dim,
    };
    for layer in 0..cfg.encoder_layers {
        let p = format!("transformer.encoder{layer}");
        let attn = g.add(
            &format!("{p}.deform_attn"),
            deform.clone(),
            enc_role,
            &[memory, memory],
        )?;
        let add = g.add(&format!("{p}.residual"), Op::Add, enc_role, &[memory, attn])?;
        let norm = g.add(&format!("{p}.norm"), Op::LayerNorm, enc_role, &[add])?;
        memory = add_ffn(&mut g, norm, &p, enc_role, cfg.dim, cfg.ffn_dim)?;
    }

    let mut queries = g.input("queries", &[cfg.batch, cfg.num_queries, cfg.dim])?;
    let dec_role = LayerRole::DetTransformerDecoder;
    for layer in 0..cfg.decoder_layers {
        let p = format!("transformer.decoder{layer}");
        queries = add_attention(
            &mut g,
            queries,
            queries,
            &format!("{p}.self_attn"),
            dec_role,
            cfg.dim,
            cfg.heads,
        )?;
        let cross = g.add(
            &format!("{p}.cross_deform_attn"),
            deform.clone(),
            dec_role,
            &[queries, memory],
        )?;
        let add = g.add(
            &format!("{p}.cross_residual"),
            Op::Add,
            dec_role,
            &[queries, cross],
        )?;
        let norm = g.add(&format!("{p}.cross_norm"), Op::LayerNorm, dec_role, &[add])?;
        queries = add_ffn(&mut g, norm, &p, dec_role, cfg.dim, cfg.ffn_dim)?;
    }

    let boxes = add_heads(&mut g, queries, cfg.dim, cfg.num_classes)?;
    g.set_output(boxes);
    Ok(g)
}

/// FLOPs split of a detection graph between the CNN backbone and the
/// transformer (+heads), the quantity Figure 1 plots over time.
pub fn backbone_transformer_split(g: &Graph) -> (u64, u64) {
    let mut backbone = 0;
    let mut transformer = 0;
    for (_, n) in g.iter() {
        match n.role {
            LayerRole::Backbone => backbone += n.flops(g),
            LayerRole::DetTransformerEncoder
            | LayerRole::DetTransformerDecoder
            | LayerRole::Head => transformer += n.flops(g),
            _ => {}
        }
    }
    (backbone, transformer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detr_backbone_dominates_flops() {
        let g = build_detr(&DetrConfig::detr_coco()).unwrap();
        let (backbone, transformer) = backbone_transformer_split(&g);
        let share = transformer as f64 / (backbone + transformer) as f64;
        // The backbone dominates FLOPs; the paper's 6-12% transformer
        // figures are GPU *time* shares at larger batch sizes.
        assert!(share < 0.20, "transformer FLOPs share {share:.3}");
        assert!(backbone > 5 * transformer);
        assert!(backbone > 20_000_000_000, "backbone {backbone}");
    }

    #[test]
    fn detr_params_match_paper_41m() {
        let g = build_detr(&DetrConfig::detr_coco()).unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Paper Table I: 41 M parameters.
        assert!((m - 41.0).abs() / 41.0 < 0.10, "got {m:.1} M params");
    }

    #[test]
    fn deformable_detr_params_match_paper_40m() {
        let g = build_deformable_detr(&DetrConfig::deformable_coco()).unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Paper Table I: 40 M parameters.
        assert!((m - 40.0).abs() / 40.0 < 0.15, "got {m:.1} M params");
    }

    #[test]
    fn deformable_detr_has_more_transformer_flops_than_detr() {
        // Deformable DETR processes 4 multi-scale levels instead of C5 only,
        // so its transformer works on ~20x more tokens.
        let d = build_detr(&DetrConfig::detr_coco()).unwrap();
        let dd = build_deformable_detr(&DetrConfig::deformable_coco()).unwrap();
        let (_, t1) = backbone_transformer_split(&d);
        let (_, t2) = backbone_transformer_split(&dd);
        assert!(t2 > t1, "{t2} <= {t1}");
    }

    #[test]
    fn detr_executes_at_small_size() {
        use vit_graph::Executor;
        use vit_tensor::Tensor;
        let cfg = DetrConfig::detr_coco().with_image(64, 64);
        let g = build_detr(&cfg).unwrap();
        let out = Executor::new(0)
            .run(
                &g,
                &[
                    Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1),
                    Tensor::rand_uniform(&[1, 100, 256], -1.0, 1.0, 2),
                ],
            )
            .unwrap();
        assert_eq!(out.shape(), &[1, 100, 4]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deformable_detr_executes_at_small_size() {
        use vit_graph::Executor;
        use vit_tensor::Tensor;
        let cfg = DetrConfig::deformable_coco().with_image(64, 64);
        let g = build_deformable_detr(&cfg).unwrap();
        let out = Executor::new(0)
            .run(
                &g,
                &[
                    Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1),
                    Tensor::rand_uniform(&[1, 300, 256], -1.0, 1.0, 2),
                ],
            )
            .unwrap();
        assert_eq!(out.shape(), &[1, 300, 4]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(build_detr(&DetrConfig::detr_coco().with_image(100, 100)).is_err());
        let mut bad = DetrConfig::detr_coco();
        bad.heads = 7; // 256 % 7 != 0
        assert!(build_detr(&bad).is_err());
    }
}
