/root/repo/target/debug/deps/serde_derive-5493a99f1583511e.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-5493a99f1583511e.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
