/root/repo/target/release/deps/vit_tensor-69bd00141055cfbf.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libvit_tensor-69bd00141055cfbf.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libvit_tensor-69bd00141055cfbf.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/resize.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/tensor.rs:
