/root/repo/target/release/deps/vit_data-9420f1f2774b0d5a.d: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

/root/repo/target/release/deps/libvit_data-9420f1f2774b0d5a.rlib: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

/root/repo/target/release/deps/libvit_data-9420f1f2774b0d5a.rmeta: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/metrics.rs:
crates/data/src/scene.rs:
