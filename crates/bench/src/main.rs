//! `repro`: regenerate the paper's tables and figures.

use vit_bench::experiments::*;

const USAGE: &str = "\
usage: repro <experiment>

characterization (paper §II):
  table1      model summary
  fig1        DETR/D-DETR backbone vs transformer split across batches
  fig2        SegFormer/Swin layer structure inventory
  fig3        SegFormer-B2 FLOPs/time distribution
  fig4        Swin-Tiny FLOPs/time distribution
  fig5        image size vs fuse-convolution share

resilience (§III):
  table2      SegFormer dynamic configurations
  fig6        SegFormer trade-off curves + trained squares
  table3      Swin-Base dynamic configurations
  fig7        Swin trade-off curves + trained squares
  fidelity    measured pruned-vs-full output agreement (executable)

engine (§IV):
  fig8        the DRT engine under a varying budget (executable)
  earlyexit   deadline misses of input-dependent early exit
  accel-lut   the engine keyed by accelerator cycles
  crossover   when to switch to retrained models
  serve       fleet-scale continuous-batching sweep: batched DRT vs
              unbatched DRT vs static full model over burst / diurnal /
              adversarial multi-tenant mixes; exits non-zero on any
              invariant violation
              (flags: --json write BENCH_serve.json,
               --quick smaller fleet + shorter trace for CI smoke runs)

robustness:
  chaos       self-healing degraded-retry serving vs fail-fast vs a static
              full-model server under swept deterministic fault injection,
              with measured fidelity of the degraded completions; exits
              non-zero on any invariant violation
              (flags: --json write BENCH_chaos.json,
               --quick fewer rates + shorter trace for CI smoke runs)

accelerator (§V/§VI):
  fig9        accelerator organization + sample mapping
  fig10       SegFormer time/energy distribution on accelerator_A
  fig11       energy-per-FLOP outliers
  fig12       dynamic configs across weight-memory sizes (+fig13 energy)
  fig14       vectorization/memory design space
  fig15       Swin-Tiny on accelerator*
  table4      OFA accelerators (+fig16 accuracy vs cycles)

static analysis:
  verify      run all vit-verify passes over every built-in model + LUT
              (flags: --json machine-readable output, --deny-warnings
               exit non-zero on warnings too, --exec-safety print what
               pass 6 proved per artifact)

regression benchmarks:
  bench       sequential vs parallel wavefront executor vs compiled-plan
              replay on full model paths; asserts bit-identical outputs
              and reports per-op-class GFLOP/s
              (flags: --json write BENCH_parallel_exec.json and ratchet
               per-op-class GFLOP/s against the committed baseline
               (exit 1 on >15% regression),
               --quick fewer reps/threads for CI smoke runs,
               --trace <path> gate disabled-tracing overhead and write a
               validated chrome-trace JSON)

profiling:
  profile     one traced DRT inference: flame summary + chrome-trace JSON
              usage: repro profile <model> <budget> [--threads N] [--plan]
                     [--out PATH]
              model: segformer-b0 | segformer-b2
              budget: fraction of the full path in (0, 1]
              (--plan replays a compiled execution plan; default --out
               trace.json; load at chrome://tracing or
               https://ui.perfetto.dev)

summary:
  headline    every headline claim, paper vs ours
  ablations   design-choice ablations
  all         run everything
";

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });
    match arg.as_str() {
        "table1" => characterization::table1(),
        "fig1" => characterization::fig1(),
        "fig2" => characterization::fig2(),
        "fig3" => characterization::fig3(),
        "fig4" => characterization::fig4(),
        "fig5" => characterization::fig5(),
        "table2" => resilience::table2(),
        "fig6" => resilience::fig6(),
        "table3" => resilience::table3(),
        "fig7" => resilience::fig7(),
        "fidelity" => resilience::fidelity(),
        "fig8" => engine::fig8(),
        "earlyexit" => engine::early_exit(),
        "accel-lut" => engine::accel_lut(),
        "crossover" => engine::crossover(),
        "serve" => {
            let mut args = serve::ServeArgs::default();
            for flag in std::env::args().skip(2) {
                match flag.as_str() {
                    "--json" => args.json = true,
                    "--quick" => args.quick = true,
                    other => {
                        eprintln!("unknown serve flag `{other}`\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            std::process::exit(serve::run(args));
        }
        "fig9" => accelerator::fig9(),
        "fig10" => accelerator::fig10(),
        "fig11" => accelerator::fig11(),
        "fig12" | "fig13" => accelerator::fig12_13(),
        "fig14" => accelerator::fig14(),
        "fig15" => accelerator::fig15(),
        "table4" | "fig16" => accelerator::table4_fig16(),
        "verify" => {
            let mut args = verify::VerifyArgs::default();
            for flag in std::env::args().skip(2) {
                match flag.as_str() {
                    "--json" => args.json = true,
                    "--deny-warnings" => args.deny_warnings = true,
                    "--exec-safety" => args.exec_safety = true,
                    other => {
                        eprintln!("unknown verify flag `{other}`\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            std::process::exit(verify::run(args));
        }
        "chaos" => {
            let mut args = chaos::ChaosArgs::default();
            for flag in std::env::args().skip(2) {
                match flag.as_str() {
                    "--json" => args.json = true,
                    "--quick" => args.quick = true,
                    other => {
                        eprintln!("unknown chaos flag `{other}`\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            std::process::exit(chaos::run(args));
        }
        "bench" => {
            let mut args = parallel::BenchArgs::default();
            let mut rest = std::env::args().skip(2);
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--json" => args.json = true,
                    "--quick" => args.quick = true,
                    "--trace" => {
                        args.trace = Some(rest.next().unwrap_or_else(|| {
                            eprintln!("--trace needs a path\n\n{USAGE}");
                            std::process::exit(2);
                        }));
                    }
                    other => {
                        eprintln!("unknown bench flag `{other}`\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            parallel::bench(args);
        }
        "profile" => {
            let mut rest = std::env::args().skip(2);
            let mut args = profile::ProfileArgs {
                model: rest.next().unwrap_or_else(|| {
                    eprintln!("profile needs a model\n\n{USAGE}");
                    std::process::exit(2);
                }),
                ..profile::ProfileArgs::default()
            };
            args.budget = rest.next().and_then(|b| b.parse().ok()).unwrap_or_else(|| {
                eprintln!("profile needs a numeric budget fraction\n\n{USAGE}");
                std::process::exit(2);
            });
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--threads" => {
                        args.threads =
                            rest.next().and_then(|t| t.parse().ok()).unwrap_or_else(|| {
                                eprintln!("--threads needs a positive integer\n\n{USAGE}");
                                std::process::exit(2);
                            });
                    }
                    "--out" => {
                        args.out = rest.next().unwrap_or_else(|| {
                            eprintln!("--out needs a path\n\n{USAGE}");
                            std::process::exit(2);
                        });
                    }
                    "--plan" => args.plan = true,
                    other => {
                        eprintln!("unknown profile flag `{other}`\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            profile::profile(args);
        }
        "headline" => headline::headline(),
        "ablations" => ablations::all(),
        "all" => {
            characterization::table1();
            characterization::fig1();
            characterization::fig2();
            characterization::fig3();
            characterization::fig4();
            characterization::fig5();
            resilience::table2();
            resilience::fig6();
            resilience::table3();
            resilience::fig7();
            resilience::fidelity();
            engine::fig8();
            engine::early_exit();
            engine::accel_lut();
            engine::crossover();
            serve::serve();
            accelerator::fig9();
            accelerator::fig10();
            accelerator::fig11();
            accelerator::fig12_13();
            accelerator::fig14();
            accelerator::fig15();
            accelerator::table4_fig16();
            headline::headline();
            ablations::all();
        }
        other => {
            eprintln!("unknown experiment `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
