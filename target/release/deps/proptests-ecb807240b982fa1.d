/root/repo/target/release/deps/proptests-ecb807240b982fa1.d: crates/serve/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-ecb807240b982fa1.rmeta: crates/serve/tests/proptests.rs Cargo.toml

crates/serve/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
