//! Chaos scenarios as committed JSON fixtures.
//!
//! A [`ChaosScenario`] bundles everything a deterministic chaos replay
//! needs — the simulation configuration (including the [`FaultPlan`]) and
//! the exact arrival trace — in a stable JSON encoding, so a scenario
//! found interesting once (a regression, a pathological burst) can be
//! committed to the repository and replayed byte-for-byte in CI forever.
//! Serialization uses the workspace's own dependency-free
//! [`vit_drt::json`] module.

use crate::config::TenantSpec;
use crate::policy::{RecoveryPolicy, SchedulePolicy};
use crate::request::TenantId;
use crate::sim::{SimArrival, SimConfig};
use std::fmt;
use vit_drt::json::{parse, write_pretty, Json, JsonParseError};
use vit_fault::FaultPlan;

/// A named, replayable chaos experiment: configuration plus arrivals.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Human-readable scenario name (shows up in reports).
    pub name: String,
    /// Full simulation configuration, fault plan included.
    pub config: SimConfig,
    /// The exact arrival trace to replay.
    pub arrivals: Vec<SimArrival>,
}

/// Error decoding a [`ChaosScenario`] from JSON.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The document is not syntactically valid JSON.
    Parse(JsonParseError),
    /// A required field is missing or has the wrong type/value.
    Malformed {
        /// Dotted path of the offending field.
        field: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "scenario is not valid JSON: {e}"),
            ScenarioError::Malformed { field } => {
                write!(f, "scenario field `{field}` is missing or malformed")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonParseError> for ScenarioError {
    fn from(e: JsonParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

fn malformed(field: &str) -> ScenarioError {
    ScenarioError::Malformed {
        field: field.to_string(),
    }
}

fn need<'j>(obj: &'j Json, field: &str) -> Result<&'j Json, ScenarioError> {
    obj.get(field).ok_or_else(|| malformed(field))
}

fn need_f64(obj: &Json, field: &str) -> Result<f64, ScenarioError> {
    need(obj, field)?.as_f64().ok_or_else(|| malformed(field))
}

fn need_usize(obj: &Json, field: &str) -> Result<usize, ScenarioError> {
    need(obj, field)?.as_usize().ok_or_else(|| malformed(field))
}

/// A `u64` encodes as an integer when it fits `i64`, else as a decimal
/// string — JSON numbers cannot carry the full `u64` range faithfully.
fn u64_to_json(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(i) => Json::Int(i),
        Err(_) => Json::Str(v.to_string()),
    }
}

fn json_to_u64(j: &Json, field: &str) -> Result<u64, ScenarioError> {
    match j {
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        Json::Str(s) => s.parse().map_err(|_| malformed(field)),
        _ => Err(malformed(field)),
    }
}

fn policy_to_json(policy: SchedulePolicy) -> Json {
    let tag = |t: &str| ("type".to_string(), Json::Str(t.to_string()));
    match policy {
        SchedulePolicy::DrtDynamic => Json::Obj(vec![tag("drt_dynamic")]),
        // `static_full` sentinels `usize::MAX`, which no JSON integer can
        // hold — encode it by name.
        p if p == SchedulePolicy::static_full() => Json::Obj(vec![tag("static_full")]),
        SchedulePolicy::Static { entry_index } => Json::Obj(vec![
            tag("static"),
            ("entry_index".to_string(), Json::Int(entry_index as i64)),
        ]),
    }
}

fn policy_from_json(j: &Json) -> Result<SchedulePolicy, ScenarioError> {
    let field = "config.policy";
    let tag = need(j, "type")
        .and_then(|t| t.as_str().ok_or_else(|| malformed(field)))
        .map_err(|_| malformed(field))?;
    match tag {
        "drt_dynamic" => Ok(SchedulePolicy::DrtDynamic),
        "static_full" => Ok(SchedulePolicy::static_full()),
        "static" => Ok(SchedulePolicy::Static {
            entry_index: need_usize(j, "entry_index")
                .map_err(|_| malformed("config.policy.entry_index"))?,
        }),
        _ => Err(malformed(field)),
    }
}

fn recovery_to_json(recovery: RecoveryPolicy) -> Json {
    let tag = |t: &str| ("type".to_string(), Json::Str(t.to_string()));
    match recovery {
        RecoveryPolicy::FailFast => Json::Obj(vec![tag("fail_fast")]),
        RecoveryPolicy::DegradedRetry { max_retries } => Json::Obj(vec![
            tag("degraded_retry"),
            ("max_retries".to_string(), Json::Int(max_retries as i64)),
        ]),
        // Future variants serialize by their stable name with no payload.
        #[allow(unreachable_patterns)]
        other => Json::Obj(vec![tag(other.name())]),
    }
}

fn recovery_from_json(j: &Json) -> Result<RecoveryPolicy, ScenarioError> {
    let field = "config.recovery";
    let tag = need(j, "type")
        .and_then(|t| t.as_str().ok_or_else(|| malformed(field)))
        .map_err(|_| malformed(field))?;
    match tag {
        "fail_fast" => Ok(RecoveryPolicy::FailFast),
        "degraded_retry" => {
            let max = need_usize(j, "max_retries")
                .map_err(|_| malformed("config.recovery.max_retries"))?;
            Ok(RecoveryPolicy::DegradedRetry {
                max_retries: u32::try_from(max)
                    .map_err(|_| malformed("config.recovery.max_retries"))?,
            })
        }
        _ => Err(malformed(field)),
    }
}

fn fault_to_json(plan: &FaultPlan) -> Json {
    Json::Obj(vec![
        ("seed".to_string(), u64_to_json(plan.seed)),
        ("crash_rate".to_string(), Json::Num(plan.crash_rate)),
        ("bitflip_rate".to_string(), Json::Num(plan.bitflip_rate)),
        ("stall_rate".to_string(), Json::Num(plan.stall_rate)),
        ("stall_factor".to_string(), Json::Num(plan.stall_factor)),
        ("replay_rate".to_string(), Json::Num(plan.replay_rate)),
    ])
}

fn fault_from_json(j: &Json) -> Result<FaultPlan, ScenarioError> {
    Ok(FaultPlan {
        seed: json_to_u64(
            need(j, "seed").map_err(|_| malformed("config.fault.seed"))?,
            "config.fault.seed",
        )?,
        crash_rate: need_f64(j, "crash_rate").map_err(|_| malformed("config.fault.crash_rate"))?,
        bitflip_rate: need_f64(j, "bitflip_rate")
            .map_err(|_| malformed("config.fault.bitflip_rate"))?,
        stall_rate: need_f64(j, "stall_rate").map_err(|_| malformed("config.fault.stall_rate"))?,
        stall_factor: need_f64(j, "stall_factor")
            .map_err(|_| malformed("config.fault.stall_factor"))?,
        replay_rate: need_f64(j, "replay_rate")
            .map_err(|_| malformed("config.fault.replay_rate"))?,
    })
}

impl ChaosScenario {
    /// Serializes the scenario as pretty-printed JSON (stable layout: the
    /// same scenario always produces the same bytes). Fleet-scale fields
    /// introduced after the format froze (`max_batch`, `batch_marginal`,
    /// `replicas`, `tenants`) are encoded only when they differ from their
    /// defaults, so scenarios committed before they existed re-encode to
    /// the identical bytes.
    pub fn to_json(&self) -> String {
        let config = &self.config;
        let fault = match &config.fault {
            Some(plan) => fault_to_json(plan),
            None => Json::Null,
        };
        let arrivals = Json::Arr(
            self.arrivals
                .iter()
                .map(|a| {
                    let mut fields = vec![
                        ("time".to_string(), Json::Num(a.time)),
                        ("slack".to_string(), Json::Num(a.slack)),
                    ];
                    if a.tenant != TenantId::default() {
                        fields.push(("tenant".to_string(), Json::Int(i64::from(a.tenant.0))));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        );
        let mut config_fields = vec![
            ("workers".to_string(), Json::Int(config.workers as i64)),
            (
                "queue_depth".to_string(),
                Json::Int(config.queue_depth as i64),
            ),
            ("policy".to_string(), policy_to_json(config.policy)),
            ("secs_per_unit".to_string(), Json::Num(config.secs_per_unit)),
            ("recovery".to_string(), recovery_to_json(config.recovery)),
            (
                "watchdog_grace".to_string(),
                Json::Num(config.watchdog_grace),
            ),
            ("fault".to_string(), fault),
        ];
        let defaults = SimConfig::new(1, 1, SchedulePolicy::DrtDynamic, 1.0);
        if config.max_batch != defaults.max_batch {
            config_fields.push(("max_batch".to_string(), Json::Int(config.max_batch as i64)));
        }
        if config.batch_marginal != defaults.batch_marginal {
            config_fields.push((
                "batch_marginal".to_string(),
                Json::Num(config.batch_marginal),
            ));
        }
        if config.replicas != defaults.replicas {
            config_fields.push(("replicas".to_string(), Json::Int(config.replicas as i64)));
        }
        if !config.tenants.is_empty() {
            config_fields.push((
                "tenants".to_string(),
                Json::Arr(
                    config
                        .tenants
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("id".to_string(), Json::Int(i64::from(t.id.0))),
                                ("weight".to_string(), Json::Num(t.weight)),
                                ("max_queue_share".to_string(), Json::Num(t.max_queue_share)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        let doc = Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("config".to_string(), Json::Obj(config_fields)),
            ("arrivals".to_string(), arrivals),
        ]);
        let mut out = write_pretty(&doc);
        out.push('\n');
        out
    }

    /// Decodes a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on invalid JSON or a missing/malformed
    /// field.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let doc = parse(text)?;
        let name = need(&doc, "name")?
            .as_str()
            .ok_or_else(|| malformed("name"))?
            .to_string();
        let cfg = need(&doc, "config")?;
        let fault = match need(cfg, "fault").map_err(|_| malformed("config.fault"))? {
            Json::Null => None,
            j => Some(fault_from_json(j)?),
        };
        let mut config = SimConfig::new(
            need_usize(cfg, "workers").map_err(|_| malformed("config.workers"))?,
            need_usize(cfg, "queue_depth").map_err(|_| malformed("config.queue_depth"))?,
            policy_from_json(need(cfg, "policy").map_err(|_| malformed("config.policy"))?)?,
            need_f64(cfg, "secs_per_unit").map_err(|_| malformed("config.secs_per_unit"))?,
        );
        config.fault = fault;
        config.recovery =
            recovery_from_json(need(cfg, "recovery").map_err(|_| malformed("config.recovery"))?)?;
        config.watchdog_grace =
            need_f64(cfg, "watchdog_grace").map_err(|_| malformed("config.watchdog_grace"))?;
        // Fleet-scale fields are optional: absent means the pre-fleet
        // defaults, keeping old committed scenarios decodable.
        if cfg.get("max_batch").is_some() {
            config.max_batch =
                need_usize(cfg, "max_batch").map_err(|_| malformed("config.max_batch"))?;
        }
        if cfg.get("batch_marginal").is_some() {
            config.batch_marginal =
                need_f64(cfg, "batch_marginal").map_err(|_| malformed("config.batch_marginal"))?;
        }
        if cfg.get("replicas").is_some() {
            config.replicas =
                need_usize(cfg, "replicas").map_err(|_| malformed("config.replicas"))?;
        }
        if let Some(tenants) = cfg.get("tenants") {
            config.tenants = tenants
                .as_arr()
                .ok_or_else(|| malformed("config.tenants"))?
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let id = need_usize(t, "id")
                        .ok()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| malformed(&format!("config.tenants[{i}].id")))?;
                    Ok(TenantSpec::new(TenantId(id))
                        .with_weight(
                            need_f64(t, "weight")
                                .map_err(|_| malformed(&format!("config.tenants[{i}].weight")))?,
                        )
                        .with_queue_share(need_f64(t, "max_queue_share").map_err(|_| {
                            malformed(&format!("config.tenants[{i}].max_queue_share"))
                        })?))
                })
                .collect::<Result<Vec<_>, ScenarioError>>()?;
        }
        let arrivals = need(&doc, "arrivals")?
            .as_arr()
            .ok_or_else(|| malformed("arrivals"))?
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let mut arrival = SimArrival::new(
                    need_f64(a, "time").map_err(|_| malformed(&format!("arrivals[{i}].time")))?,
                    need_f64(a, "slack").map_err(|_| malformed(&format!("arrivals[{i}].slack")))?,
                );
                if let Some(t) = a.get("tenant") {
                    let id = t
                        .as_usize()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| malformed(&format!("arrivals[{i}].tenant")))?;
                    arrival = arrival.with_tenant(TenantId(id));
                }
                Ok(arrival)
            })
            .collect::<Result<Vec<_>, ScenarioError>>()?;
        Ok(ChaosScenario {
            name,
            config,
            arrivals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> ChaosScenario {
        ChaosScenario {
            name: "burst with crashes".to_string(),
            config: SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0)
                .with_fault(FaultPlan {
                    seed: 42,
                    crash_rate: 0.1,
                    bitflip_rate: 0.05,
                    stall_rate: 0.05,
                    stall_factor: 6.0,
                    replay_rate: 0.02,
                })
                .with_recovery(RecoveryPolicy::DegradedRetry { max_retries: 2 }),
            arrivals: vec![SimArrival::new(0.0, 5.0), SimArrival::new(1.5, 4.25)],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let s = scenario();
        let text = s.to_json();
        let back = ChaosScenario::from_json(&text).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.config.workers, s.config.workers);
        assert_eq!(back.config.queue_depth, s.config.queue_depth);
        assert_eq!(back.config.policy, s.config.policy);
        assert_eq!(back.config.secs_per_unit, s.config.secs_per_unit);
        assert_eq!(back.config.recovery, s.config.recovery);
        assert_eq!(back.config.watchdog_grace, s.config.watchdog_grace);
        assert_eq!(back.config.fault, s.config.fault);
        assert_eq!(back.arrivals, s.arrivals);
        // And the encoding itself is a fixed point: re-serializing the
        // decoded scenario reproduces the bytes exactly.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn clean_scenario_has_null_fault() {
        let mut s = scenario();
        s.config.fault = None;
        let text = s.to_json();
        assert!(text.contains("\"fault\": null"));
        let back = ChaosScenario::from_json(&text).unwrap();
        assert_eq!(back.config.fault, None);
    }

    #[test]
    fn default_fleet_fields_are_not_encoded() {
        // Scenarios predating batching/tenancy must re-encode to the same
        // bytes: the new fields appear only when non-default.
        let text = scenario().to_json();
        for frozen in ["max_batch", "batch_marginal", "replicas", "tenants"] {
            assert!(!text.contains(frozen), "default {frozen} leaked into JSON");
        }
    }

    #[test]
    fn fleet_fields_round_trip_when_set() {
        let mut s = scenario();
        s.config = s
            .config
            .with_batching(8)
            .with_batch_marginal(0.5)
            .with_replicas(4)
            .with_tenants(vec![
                TenantSpec::new(TenantId(1))
                    .with_weight(2.0)
                    .with_queue_share(0.5),
                TenantSpec::new(TenantId(2)),
            ]);
        s.arrivals = vec![
            SimArrival::new(0.0, 5.0).with_tenant(TenantId(1)),
            SimArrival::new(1.0, 5.0).with_tenant(TenantId(2)),
            SimArrival::new(2.0, 5.0),
        ];
        let text = s.to_json();
        let back = ChaosScenario::from_json(&text).unwrap();
        assert_eq!(back.config.max_batch, 8);
        assert_eq!(back.config.batch_marginal, 0.5);
        assert_eq!(back.config.replicas, 4);
        assert_eq!(back.config.tenants, s.config.tenants);
        assert_eq!(back.arrivals, s.arrivals);
        assert_eq!(back.to_json(), text, "non-default encoding is stable too");
    }

    #[test]
    fn static_full_policy_round_trips_by_name() {
        let mut s = scenario();
        s.config.policy = SchedulePolicy::static_full();
        let back = ChaosScenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.config.policy, SchedulePolicy::static_full());
    }

    #[test]
    fn malformed_scenarios_name_the_field() {
        let err = ChaosScenario::from_json("{\"name\": \"x\"}").unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Malformed {
                field: "config".to_string()
            }
        );
        assert!(ChaosScenario::from_json("not json").is_err());
        assert_eq!(
            err.to_string(),
            "scenario field `config` is missing or malformed"
        );
    }
}

#[cfg(test)]
mod fixture {
    use super::*;
    use crate::sim::simulate;
    use vit_drt::{EngineCore, EngineFamily, Lut};
    use vit_models::{SegFormerDynamic, SegFormerVariant};
    use vit_resilience::{DynConfig, TradeoffPoint};

    /// The committed chaos regression scenario: 40 bursty arrivals, mixed
    /// slacks, all four fault kinds armed (seed 2024).
    const FIXTURE: &str = include_str!("../fixtures/chaos_scenario.json");

    /// Same synthetic 3-row LUT as the simulator tests (costs 1/2/4,
    /// accuracies 0.6/0.85/1.0).
    fn tiny_core() -> EngineCore {
        let point = |r: f64, a: f64| TradeoffPoint {
            label: String::new(),
            config: DynConfig::SegFormer(SegFormerDynamic::with_depths_and_fuse(
                &SegFormerVariant::b0(),
                [1, 1, 1, 1],
                ((r * 64.0) as usize).max(4),
            )),
            resource: r,
            norm_resource: r / 4.0,
            norm_miou: a,
        };
        let lut = Lut::from_points(
            "fixture",
            &[point(1.0, 0.6), point(2.0, 0.85), point(4.0, 1.0)],
        );
        EngineCore::new(
            EngineFamily::SegFormer(SegFormerVariant::b0()),
            150,
            (64, 64),
            lut,
        )
        .unwrap()
    }

    /// The committed fixture decodes, re-encodes to the identical bytes,
    /// and replays to the exact counters pinned when it was committed —
    /// any drift in fault draws, scheduling, or recovery semantics fails
    /// here first.
    #[test]
    fn committed_fixture_replays_identically() {
        let s = ChaosScenario::from_json(FIXTURE).expect("fixture decodes");
        assert_eq!(s.name, "bursty-chaos-regression");
        assert_eq!(s.to_json(), FIXTURE, "encoding is byte-stable");

        let core = tiny_core();
        let m = simulate(&core, &s.config, &s.arrivals);
        assert!(m.accounts_for_all_submissions());
        assert_eq!(m.submitted, 40);
        assert_eq!(m.completed, 29);
        assert_eq!(m.fault_failures, 10);
        assert_eq!(m.shed(), 1);
        assert_eq!(m.faults_seen, 14);
        assert_eq!(m.retries, 14);
        assert_eq!(m.degraded_completions, 2);
        assert_eq!(m.deadline_misses, 0);
        assert!((m.goodput - 0.725).abs() < 1e-12);
        assert!((m.mean_degraded_accuracy - 0.925).abs() < 1e-12);
    }
}
