//! Swin Transformer encoder + UPerNet decoder graph builder with dynamic
//! execution-path configuration.
//!
//! Matches the paper's Swin semantic-segmentation case study: the
//! computation is dominated by `fpn_bottleneck_Conv2D` (the 3x3 convolution
//! fusing the four pyramid levels, 2048 input channels in every Swin
//! variant), exactly like `Conv2DFuse` in SegFormer.
//!
//! Faithfulness notes: shifted-window attention masks and relative position
//! biases are omitted (they affect accuracy with trained weights, not
//! FLOPs/latency/energy, which is what every experiment on this model
//! measures); window padding uses implicit zeros.

use crate::error::{ModelError, Result};
use vit_graph::{Graph, LayerRole, NodeId, Op};

/// Static architecture hyper-parameters of a Swin variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwinVariant {
    /// Variant name, e.g. `"swin-tiny"`.
    pub name: &'static str,
    /// Base embedding dimension (stage dims are `C, 2C, 4C, 8C`).
    pub dim: usize,
    /// Transformer blocks per stage.
    pub depths: [usize; 4],
    /// Attention heads per stage.
    pub heads: [usize; 4],
    /// Window side length.
    pub window: usize,
    /// MLP expansion ratio.
    pub mlp_ratio: usize,
    /// UPerNet decoder channel width.
    pub upernet_channels: usize,
}

impl SwinVariant {
    /// Swin-Tiny (the paper's 60 M-parameter case study with UPerNet).
    pub fn tiny() -> Self {
        SwinVariant {
            name: "swin-tiny",
            dim: 96,
            depths: [2, 2, 6, 2],
            heads: [3, 6, 12, 24],
            window: 7,
            mlp_ratio: 4,
            upernet_channels: 512,
        }
    }

    /// Swin-Small.
    pub fn small() -> Self {
        SwinVariant {
            name: "swin-small",
            depths: [2, 2, 18, 2],
            ..Self::tiny()
        }
    }

    /// Swin-Base.
    pub fn base() -> Self {
        SwinVariant {
            name: "swin-base",
            dim: 128,
            depths: [2, 2, 18, 2],
            heads: [4, 8, 16, 32],
            window: 7,
            mlp_ratio: 4,
            upernet_channels: 512,
        }
    }

    /// Total input channels of `fpn_bottleneck_Conv2D` in the full model
    /// (four pyramid levels of `upernet_channels` each — 2048 for every
    /// published Swin segmentation variant).
    pub fn full_bottleneck_in(&self) -> usize {
        4 * self.upernet_channels
    }
}

/// A dynamic execution-path configuration (Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwinDynamic {
    /// Encoder blocks executed per stage.
    pub depths: [usize; 4],
    /// Total input channels into `fpn_bottleneck_Conv2D`, divided equally
    /// across the four pyramid levels. Cuts on levels 0-2 propagate into the
    /// corresponding `fpn_convs` output channels; the level-3 cut is a pure
    /// slice because the PPM bottleneck output also feeds the top-down
    /// pathway (this is why the paper finds channel cuts alone save little
    /// in Swin).
    pub bottleneck_in_channels: usize,
}

impl SwinDynamic {
    /// The unpruned execution path of a variant.
    pub fn full(variant: &SwinVariant) -> Self {
        SwinDynamic {
            depths: variant.depths,
            bottleneck_in_channels: variant.full_bottleneck_in(),
        }
    }

    fn validate(&self, variant: &SwinVariant) -> Result<()> {
        for (i, (&d, &full)) in self.depths.iter().zip(variant.depths.iter()).enumerate() {
            if d == 0 || d > full {
                return Err(ModelError::BadConfig(format!(
                    "stage {i} depth {d} out of range 1..={full}"
                )));
            }
        }
        if self.bottleneck_in_channels == 0
            || !self.bottleneck_in_channels.is_multiple_of(4)
            || self.bottleneck_in_channels > variant.full_bottleneck_in()
        {
            return Err(ModelError::BadConfig(format!(
                "bottleneck_in_channels {} must be a positive multiple of 4 and <= {}",
                self.bottleneck_in_channels,
                variant.full_bottleneck_in()
            )));
        }
        Ok(())
    }
}

/// Full build configuration for Swin + UPerNet.
#[derive(Debug, Clone)]
pub struct SwinConfig {
    /// Architecture variant.
    pub variant: SwinVariant,
    /// Segmentation classes.
    pub num_classes: usize,
    /// Input image `(height, width)`; multiples of 32.
    pub image: (usize, usize),
    /// Batch size.
    pub batch: usize,
    /// Dynamic execution path.
    pub dynamic: SwinDynamic,
}

impl SwinConfig {
    /// Standard ADE20K configuration (512x512, 150 classes).
    pub fn ade20k(variant: SwinVariant) -> Self {
        SwinConfig {
            dynamic: SwinDynamic::full(&variant),
            variant,
            num_classes: 150,
            image: (512, 512),
            batch: 1,
        }
    }

    /// Same configuration at a different image size.
    pub fn with_image(mut self, h: usize, w: usize) -> Self {
        self.image = (h, w);
        self
    }

    /// Same configuration with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Same configuration with a different dynamic execution path.
    pub fn with_dynamic(mut self, dynamic: SwinDynamic) -> Self {
        self.dynamic = dynamic;
        self
    }
}

/// Builds the Swin + UPerNet execution graph.
///
/// Input: `[batch, 3, H, W]`; output: `[batch, num_classes, H, W]` logits.
///
/// # Errors
///
/// Returns [`ModelError`] for out-of-range dynamic configurations or image
/// sizes that are not positive multiples of 32.
pub fn build_swin_upernet(cfg: &SwinConfig) -> Result<Graph> {
    cfg.dynamic.validate(&cfg.variant)?;
    let (ih, iw) = cfg.image;
    if ih % 32 != 0 || iw % 32 != 0 || ih == 0 || iw == 0 {
        return Err(ModelError::BadConfig(format!(
            "image {ih}x{iw} must be a positive multiple of 32"
        )));
    }
    if cfg.batch == 0 {
        return Err(ModelError::BadConfig("batch must be nonzero".to_string()));
    }
    let v = &cfg.variant;
    let mut g = Graph::new(v.name);
    let image = g.input("image", &[cfg.batch, 3, ih, iw])?;

    // ---- Patch embedding: 4x4 non-overlapping patches -----------------
    let pe_role = LayerRole::PatchEmbed { stage: 0 };
    let s2d = g.add(
        "encoder.patch_embed.space_to_depth",
        Op::SpaceToDepth { block: 4 },
        pe_role,
        &[image],
    )?;
    let mut seq = g.add(
        "encoder.patch_embed.flatten",
        Op::FlattenHw,
        pe_role,
        &[s2d],
    )?;
    seq = g.add(
        "encoder.patch_embed.proj",
        Op::Linear {
            out_features: v.dim,
            bias: true,
        },
        pe_role,
        &[seq],
    )?;
    seq = g.add("encoder.patch_embed.norm", Op::LayerNorm, pe_role, &[seq])?;

    // ---- Four encoder stages with patch merging in between ------------
    let mut h = ih / 4;
    let mut w = iw / 4;
    let mut dim = v.dim;
    let mut stage_outputs: Vec<NodeId> = Vec::with_capacity(4);
    for stage in 0..4 {
        for block in 0..cfg.dynamic.depths[stage] {
            let shift = if block % 2 == 1 { v.window / 2 } else { 0 };
            seq = add_swin_block(
                &mut g,
                seq,
                stage,
                block,
                dim,
                v.heads[stage],
                v.window,
                shift,
                v.mlp_ratio,
                h,
                w,
            )?;
        }
        // Per-stage output norm + NCHW for the decoder.
        let role = LayerRole::EncoderBlock {
            stage,
            block: cfg.dynamic.depths[stage] - 1,
        };
        let normed = g.add(
            &format!("encoder.stage{stage}.norm"),
            Op::LayerNorm,
            role,
            &[seq],
        )?;
        let nchw = g.add(
            &format!("encoder.stage{stage}.to_nchw"),
            Op::UnflattenHw { h, w },
            role,
            &[normed],
        )?;
        stage_outputs.push(nchw);

        if stage < 3 {
            // Patch merging: 2x2 space-to-depth + LayerNorm + linear 4C->2C.
            let m = format!("encoder.merge{stage}");
            let un = g.add(
                &format!("{m}.to_nchw"),
                Op::UnflattenHw { h, w },
                role,
                &[seq],
            )?;
            let sd = g.add(
                &format!("{m}.space_to_depth"),
                Op::SpaceToDepth { block: 2 },
                role,
                &[un],
            )?;
            let fl = g.add(&format!("{m}.flatten"), Op::FlattenHw, role, &[sd])?;
            let no = g.add(&format!("{m}.norm"), Op::LayerNorm, role, &[fl])?;
            seq = g.add(
                &format!("{m}.reduction"),
                Op::Linear {
                    out_features: dim * 2,
                    bias: false,
                },
                role,
                &[no],
            )?;
            h /= 2;
            w /= 2;
            dim *= 2;
        }
    }

    // ---- UPerNet decoder ----------------------------------------------
    let ch = v.upernet_channels;
    let keep = cfg.dynamic.bottleneck_in_channels / 4;
    let (h4, w4) = (ih / 4, iw / 4);
    let conv1x1 = |out: usize| Op::Conv2d {
        out_channels: out,
        kernel: (1, 1),
        stride: (1, 1),
        pad: (0, 0),
        groups: 1,
        bias: false,
    };
    let conv3x3 = |out: usize| Op::Conv2d {
        out_channels: out,
        kernel: (3, 3),
        stride: (1, 1),
        pad: (1, 1),
        groups: 1,
        bias: false,
    };
    // Pyramid pooling module on the stage-3 output.
    let c4 = stage_outputs[3];
    let (c4h, c4w) = (ih / 32, iw / 32);
    let mut ppm_outs = vec![c4];
    for &scale in &[1usize, 2, 3, 6] {
        let role = LayerRole::PpmBranch { scale };
        let p = format!("decoder.ppm.scale{scale}");
        let pool = g.add(
            &format!("{p}.pool"),
            Op::AdaptiveAvgPool {
                out_h: scale,
                out_w: scale,
            },
            role,
            &[c4],
        )?;
        let conv = g.add(&format!("{p}.conv"), conv1x1(ch), role, &[pool])?;
        let bn = g.add(&format!("{p}.bn"), Op::BatchNorm, role, &[conv])?;
        let relu = g.add(&format!("{p}.relu"), Op::Relu, role, &[bn])?;
        let up = g.add(
            &format!("{p}.resize"),
            Op::Resize {
                out_h: c4h,
                out_w: c4w,
            },
            role,
            &[relu],
        )?;
        ppm_outs.push(up);
    }
    let ppm_cat = g.add(
        "decoder.ppm.concat",
        Op::Concat,
        LayerRole::PpmBranch { scale: 0 },
        &ppm_outs,
    )?;
    let ppm_role = LayerRole::PpmBranch { scale: 0 };
    let bott = g.add("decoder.ppm.bottleneck", conv3x3(ch), ppm_role, &[ppm_cat])?;
    let bott_bn = g.add(
        "decoder.ppm.bottleneck_bn",
        Op::BatchNorm,
        ppm_role,
        &[bott],
    )?;
    let top = g.add(
        "decoder.ppm.bottleneck_relu",
        Op::Relu,
        ppm_role,
        &[bott_bn],
    )?;

    // Lateral 1x1 convolutions on stages 0-2, then top-down additions.
    let mut laterals: Vec<NodeId> = Vec::with_capacity(4);
    for (stage, &src) in stage_outputs.iter().take(3).enumerate() {
        let role = LayerRole::DecoderLinear { stage };
        let p = format!("decoder.lateral{stage}");
        let conv = g.add(&format!("{p}.conv"), conv1x1(ch), role, &[src])?;
        let bn = g.add(&format!("{p}.bn"), Op::BatchNorm, role, &[conv])?;
        let relu = g.add(&format!("{p}.relu"), Op::Relu, role, &[bn])?;
        laterals.push(relu);
    }
    laterals.push(top);
    // Top-down pathway: level i += resize(level i+1).
    let mut merged = vec![laterals[3]];
    for stage in (0..3).rev() {
        let (sh, sw) = (ih >> (2 + stage), iw >> (2 + stage));
        let up = g.add(
            &format!("decoder.topdown{stage}.resize"),
            Op::Resize {
                out_h: sh,
                out_w: sw,
            },
            LayerRole::FpnConv { level: stage },
            &[*merged.last().expect("nonempty")],
        )?;
        let add = g.add(
            &format!("decoder.topdown{stage}.add"),
            Op::Add,
            LayerRole::FpnConv { level: stage },
            &[laterals[stage], up],
        )?;
        merged.push(add);
    }
    merged.reverse(); // now level 0..3

    // FPN output convolutions (levels 0-2); the level-3 output is the PPM
    // bottleneck itself. Channel cuts shrink these convolutions directly.
    let mut gather: Vec<NodeId> = Vec::with_capacity(4);
    for (stage, &merged_stage) in merged.iter().enumerate().take(3) {
        let role = LayerRole::FpnConv { level: stage };
        let p = format!("decoder.fpn_convs{stage}");
        let conv = g.add(&format!("{p}.conv"), conv3x3(keep), role, &[merged_stage])?;
        let bn = g.add(&format!("{p}.bn"), Op::BatchNorm, role, &[conv])?;
        let relu = g.add(&format!("{p}.relu"), Op::Relu, role, &[bn])?;
        let up = g.add(
            &format!("{p}.resize"),
            Op::Resize {
                out_h: h4,
                out_w: w4,
            },
            role,
            &[relu],
        )?;
        gather.push(up);
    }
    let lvl3_role = LayerRole::FpnConv { level: 3 };
    let lvl3 = if keep < ch {
        g.add(
            "decoder.fpn3.slice",
            Op::SliceChannels { keep },
            lvl3_role,
            &[merged[3]],
        )?
    } else {
        merged[3]
    };
    let lvl3_up = g.add(
        "decoder.fpn3.resize",
        Op::Resize {
            out_h: h4,
            out_w: w4,
        },
        lvl3_role,
        &[lvl3],
    )?;
    gather.push(lvl3_up);

    let cat = g.add("decoder.fpn_concat", Op::Concat, LayerRole::Other, &gather)?;
    let fuse = g.add(
        "decoder.fpn_bottleneck",
        conv3x3(ch),
        LayerRole::FuseConv,
        &[cat],
    )?;
    let fuse_bn = g.add(
        "decoder.fpn_bottleneck_bn",
        Op::BatchNorm,
        LayerRole::FuseConv,
        &[fuse],
    )?;
    let fuse_relu = g.add(
        "decoder.fpn_bottleneck_relu",
        Op::Relu,
        LayerRole::FuseConv,
        &[fuse_bn],
    )?;
    let pred = g.add(
        "decoder.conv_seg",
        Op::Conv2d {
            out_channels: cfg.num_classes,
            kernel: (1, 1),
            stride: (1, 1),
            pad: (0, 0),
            groups: 1,
            bias: true,
        },
        LayerRole::PredConv,
        &[fuse_relu],
    )?;
    let up = g.add(
        "decoder.upsample",
        Op::Resize {
            out_h: ih,
            out_w: iw,
        },
        LayerRole::Head,
        &[pred],
    )?;
    g.set_output(up);
    Ok(g)
}

/// Adds one Swin block ((shifted-)window attention + MLP).
#[allow(clippy::too_many_arguments)]
fn add_swin_block(
    g: &mut Graph,
    input: NodeId,
    stage: usize,
    block: usize,
    dim: usize,
    heads: usize,
    window: usize,
    shift: usize,
    mlp_ratio: usize,
    h: usize,
    w: usize,
) -> Result<NodeId> {
    let p = format!("encoder.stage{stage}.block{block}");
    let role = LayerRole::EncoderBlock { stage, block };
    let linear = |out| Op::Linear {
        out_features: out,
        bias: true,
    };

    let norm1 = g.add(&format!("{p}.norm1"), Op::LayerNorm, role, &[input])?;
    let mut nchw = g.add(
        &format!("{p}.attn.to_nchw"),
        Op::UnflattenHw { h, w },
        role,
        &[norm1],
    )?;
    if shift > 0 {
        nchw = g.add(
            &format!("{p}.attn.shift"),
            Op::CyclicShift {
                dy: -(shift as isize),
                dx: -(shift as isize),
            },
            role,
            &[nchw],
        )?;
    }
    let win = g.add(
        &format!("{p}.attn.partition"),
        Op::WindowPartition { window },
        role,
        &[nchw],
    )?;
    let q = g.add(&format!("{p}.attn.q"), linear(dim), role, &[win])?;
    let k = g.add(&format!("{p}.attn.k"), linear(dim), role, &[win])?;
    let val = g.add(&format!("{p}.attn.v"), linear(dim), role, &[win])?;
    let sdpa = g.add(
        &format!("{p}.attn.sdpa"),
        Op::Sdpa { heads },
        role,
        &[q, k, val],
    )?;
    let proj = g.add(&format!("{p}.attn.proj"), linear(dim), role, &[sdpa])?;
    let mut back = g.add(
        &format!("{p}.attn.merge"),
        Op::WindowMerge { window, h, w },
        role,
        &[proj],
    )?;
    if shift > 0 {
        back = g.add(
            &format!("{p}.attn.unshift"),
            Op::CyclicShift {
                dy: shift as isize,
                dx: shift as isize,
            },
            role,
            &[back],
        )?;
    }
    let flat = g.add(&format!("{p}.attn.flatten"), Op::FlattenHw, role, &[back])?;
    let res1 = g.add(&format!("{p}.attn.residual"), Op::Add, role, &[input, flat])?;

    let norm2 = g.add(&format!("{p}.norm2"), Op::LayerNorm, role, &[res1])?;
    let fc1 = g.add(
        &format!("{p}.mlp.fc1"),
        linear(dim * mlp_ratio),
        role,
        &[norm2],
    )?;
    let gelu = g.add(&format!("{p}.mlp.gelu"), Op::Gelu, role, &[fc1])?;
    let fc2 = g.add(&format!("{p}.mlp.fc2"), linear(dim), role, &[gelu])?;
    Ok(g.add(&format!("{p}.mlp.residual"), Op::Add, role, &[res1, fc2])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_graph::OpClass;

    #[test]
    fn tiny_flops_match_paper_table1() {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let gflops = g.total_flops() as f64 / 1e9;
        // Paper Table I: 237 GFLOPs at 512x512.
        assert!(
            (gflops - 237.0).abs() / 237.0 < 0.08,
            "got {gflops:.1} GFLOPs, expected ~237"
        );
    }

    #[test]
    fn tiny_params_match_paper_table1() {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Paper Table I: 60 M parameters for Swin-T + UPerNet.
        assert!((m - 60.0).abs() / 60.0 < 0.08, "got {m:.1} M params");
    }

    #[test]
    fn fpn_bottleneck_dominates_flops() {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let fuse = g.find("decoder.fpn_bottleneck").unwrap();
        let share = g.node(fuse).flops(&g) as f64 / g.total_flops() as f64;
        // Paper Fig. 4: fpn_bottleneck_Conv2D alone is 65% of FLOPs.
        assert!((share - 0.65).abs() < 0.05, "bottleneck share {share:.2}");
    }

    #[test]
    fn fpn_convs_shares_match_paper() {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let total = g.total_flops() as f64;
        let share = |name: &str| g.node(g.find(name).unwrap()).flops(&g) as f64 / total;
        // Paper Fig. 4: fpn_convs_0 = 16%, fpn_convs_1 = 4%.
        assert!((share("decoder.fpn_convs0.conv") - 0.16).abs() < 0.03);
        assert!((share("decoder.fpn_convs1.conv") - 0.04).abs() < 0.02);
    }

    #[test]
    fn conv_share_matches_paper_89_percent() {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let conv = g.flops_by_class(OpClass::Conv) as f64 / g.total_flops() as f64;
        // Paper: 89% of Swin-Tiny FLOPs are in convolution layers. Our Swin
        // encoder realizes patch embedding/merging as linears (so they are
        // counted as matmul, as the paper does for the encoder), leaving all
        // convolutions in the decoder.
        assert!((conv - 0.89).abs() < 0.05, "conv share {conv:.2}");
    }

    #[test]
    fn decoder_dominates_flops_89_percent() {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let share = g.decoder_flops() as f64 / g.total_flops() as f64;
        // Paper: 89% of FLOPs are in the decoder.
        assert!(share > 0.82 && share < 0.95, "decoder share {share:.2}");
    }

    #[test]
    fn base_has_same_bottleneck_input_channels_as_tiny() {
        // Paper §III-B: fpn_bottleneck has 2048 input channels in both.
        assert_eq!(SwinVariant::tiny().full_bottleneck_in(), 2048);
        assert_eq!(SwinVariant::base().full_bottleneck_in(), 2048);
    }

    #[test]
    fn channel_cut_shrinks_bottleneck_and_fpn_convs() {
        let variant = SwinVariant::tiny();
        let full = build_swin_upernet(&SwinConfig::ade20k(variant)).unwrap();
        let cut = build_swin_upernet(&SwinConfig::ade20k(variant).with_dynamic(SwinDynamic {
            depths: variant.depths,
            bottleneck_in_channels: 1024,
        }))
        .unwrap();
        let f = |g: &Graph, n: &str| g.node(g.find(n).unwrap()).flops(g);
        let ratio =
            f(&cut, "decoder.fpn_bottleneck") as f64 / f(&full, "decoder.fpn_bottleneck") as f64;
        assert!((ratio - 0.5).abs() < 0.01, "bottleneck ratio {ratio:.3}");
        assert!(f(&cut, "decoder.fpn_convs0.conv") < f(&full, "decoder.fpn_convs0.conv"));
        // Encoder untouched.
        let enc = |g: &Graph| -> u64 {
            g.iter()
                .filter(|(_, n)| !n.role.is_decoder() && n.role != LayerRole::Head)
                .map(|(_, n)| n.flops(g))
                .sum()
        };
        assert_eq!(enc(&full), enc(&cut));
    }

    #[test]
    fn channel_cut_alone_saves_little_in_swin() {
        // Paper §III-B: cutting input channels in a few convolutions does
        // not save much in Swin because fpn_bottleneck is 3x3 over a large
        // map and the rest of the decoder is untouched.
        let variant = SwinVariant::tiny();
        let full = build_swin_upernet(&SwinConfig::ade20k(variant)).unwrap();
        let cut = build_swin_upernet(&SwinConfig::ade20k(variant).with_dynamic(SwinDynamic {
            depths: variant.depths,
            bottleneck_in_channels: 1536,
        }))
        .unwrap();
        let saving = 1.0 - cut.total_flops() as f64 / full.total_flops() as f64;
        // A 25% channel cut saves well under 25% of total FLOPs... but more
        // than nothing.
        assert!(saving > 0.05 && saving < 0.25, "saving {saving:.2}");
    }

    #[test]
    fn depth_cut_in_stage2_reduces_encoder_only() {
        let variant = SwinVariant::base();
        let full = build_swin_upernet(&SwinConfig::ade20k(variant)).unwrap();
        let cut = build_swin_upernet(&SwinConfig::ade20k(variant).with_dynamic(SwinDynamic {
            depths: [2, 2, 11, 2],
            bottleneck_in_channels: 2048,
        }))
        .unwrap();
        assert!(cut.total_flops() < full.total_flops());
        let f = |g: &Graph, n: &str| g.node(g.find(n).unwrap()).flops(g);
        assert_eq!(
            f(&full, "decoder.fpn_bottleneck"),
            f(&cut, "decoder.fpn_bottleneck")
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let variant = SwinVariant::tiny();
        assert!(
            build_swin_upernet(&SwinConfig::ade20k(variant).with_dynamic(SwinDynamic {
                depths: [2, 2, 7, 2], // tiny has only 6 blocks in stage 2
                bottleneck_in_channels: 2048,
            }))
            .is_err()
        );
        assert!(
            build_swin_upernet(&SwinConfig::ade20k(variant).with_dynamic(SwinDynamic {
                depths: [2, 2, 6, 2],
                bottleneck_in_channels: 2049,
            }))
            .is_err()
        );
        assert!(build_swin_upernet(&SwinConfig::ade20k(variant).with_image(100, 100)).is_err());
    }

    #[test]
    fn small_graph_executes_end_to_end() {
        use vit_graph::Executor;
        use vit_tensor::Tensor;
        let cfg = SwinConfig::ade20k(SwinVariant::tiny()).with_image(64, 64);
        let g = build_swin_upernet(&cfg).unwrap();
        let mut ex = Executor::new(0);
        let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
        let out = ex.run(&g, &[img]).unwrap();
        assert_eq!(out.shape(), &[1, 150, 64, 64]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn variant_ordering_tiny_small_base() {
        let t = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let s = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::small())).unwrap();
        let b = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::base())).unwrap();
        assert!(t.total_flops() < s.total_flops());
        assert!(s.total_flops() < b.total_flops());
        assert!(t.total_params() < s.total_params());
        assert!(s.total_params() < b.total_params());
    }
}
