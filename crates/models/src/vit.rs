//! ViT and BERT encoder builders — the *convolution-free* early transformers
//! the paper contrasts modern vision transformers against (§II: "unlike
//! early transformer-based models which are convolution-free and dominated
//! by self-attention").
//!
//! ViT's patch embedding is realized as space-to-depth + linear (exactly
//! equivalent to the strided convolution formulation, and convolution-free
//! like the original description).

use crate::error::{ModelError, Result};
use vit_graph::{Graph, LayerRole, NodeId, Op};

/// Configuration of a plain transformer encoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderStackConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN hidden dimension.
    pub ffn_dim: usize,
}

fn linear(out: usize) -> Op {
    Op::Linear {
        out_features: out,
        bias: true,
    }
}

/// Appends `cfg.layers` pre-norm transformer blocks to `seq`.
fn add_encoder_stack(
    g: &mut Graph,
    mut seq: NodeId,
    cfg: &EncoderStackConfig,
    role: LayerRole,
) -> Result<NodeId> {
    for layer in 0..cfg.layers {
        let p = format!("encoder.block{layer}");
        let norm1 = g.add(&format!("{p}.norm1"), Op::LayerNorm, role, &[seq])?;
        let q = g.add(&format!("{p}.attn.q"), linear(cfg.dim), role, &[norm1])?;
        let k = g.add(&format!("{p}.attn.k"), linear(cfg.dim), role, &[norm1])?;
        let v = g.add(&format!("{p}.attn.v"), linear(cfg.dim), role, &[norm1])?;
        let sdpa = g.add(
            &format!("{p}.attn.sdpa"),
            Op::Sdpa { heads: cfg.heads },
            role,
            &[q, k, v],
        )?;
        let proj = g.add(&format!("{p}.attn.proj"), linear(cfg.dim), role, &[sdpa])?;
        let res1 = g.add(&format!("{p}.attn.residual"), Op::Add, role, &[seq, proj])?;
        let norm2 = g.add(&format!("{p}.norm2"), Op::LayerNorm, role, &[res1])?;
        let fc1 = g.add(&format!("{p}.mlp.fc1"), linear(cfg.ffn_dim), role, &[norm2])?;
        let gelu = g.add(&format!("{p}.mlp.gelu"), Op::Gelu, role, &[fc1])?;
        let fc2 = g.add(&format!("{p}.mlp.fc2"), linear(cfg.dim), role, &[gelu])?;
        seq = g.add(&format!("{p}.mlp.residual"), Op::Add, role, &[res1, fc2])?;
    }
    Ok(seq)
}

/// Configuration of a ViT image classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VitConfig {
    /// Patch side length.
    pub patch: usize,
    /// Transformer stack.
    pub stack: EncoderStackConfig,
    /// Input image `(height, width)`; multiples of `patch`.
    pub image: (usize, usize),
    /// Batch size.
    pub batch: usize,
    /// Classification classes.
    pub num_classes: usize,
}

impl VitConfig {
    /// ViT-Base/16 at 224x224 on ImageNet.
    pub fn base16() -> Self {
        VitConfig {
            patch: 16,
            stack: EncoderStackConfig {
                dim: 768,
                layers: 12,
                heads: 12,
                ffn_dim: 3072,
            },
            image: (224, 224),
            batch: 1,
            num_classes: 1000,
        }
    }
}

/// Builds a ViT classifier graph (convolution-free).
///
/// # Errors
///
/// Returns [`ModelError`] when the image is not divisible by the patch size.
pub fn build_vit(cfg: &VitConfig) -> Result<Graph> {
    let (ih, iw) = cfg.image;
    if cfg.patch == 0 || ih % cfg.patch != 0 || iw % cfg.patch != 0 || ih == 0 {
        return Err(ModelError::BadConfig(format!(
            "image {ih}x{iw} must be a positive multiple of patch {}",
            cfg.patch
        )));
    }
    if cfg.batch == 0 {
        return Err(ModelError::BadConfig("batch must be nonzero".to_string()));
    }
    let mut g = Graph::new("vit-b16");
    let image = g.input("image", &[cfg.batch, 3, ih, iw])?;
    let role = LayerRole::PatchEmbed { stage: 0 };
    let s2d = g.add(
        "patch_embed.space_to_depth",
        Op::SpaceToDepth { block: cfg.patch },
        role,
        &[image],
    )?;
    let flat = g.add("patch_embed.flatten", Op::FlattenHw, role, &[s2d])?;
    let seq = g.add("patch_embed.proj", linear(cfg.stack.dim), role, &[flat])?;
    let out = add_encoder_stack(
        &mut g,
        seq,
        &cfg.stack,
        LayerRole::EncoderBlock { stage: 0, block: 0 },
    )?;
    let norm = g.add("final_norm", Op::LayerNorm, LayerRole::Head, &[out])?;
    // Mean-pool tokens (stand-in for the class token) then classify.
    let (ph, pw) = (ih / cfg.patch, iw / cfg.patch);
    let nchw = g.add(
        "pool.to_nchw",
        Op::UnflattenHw { h: ph, w: pw },
        LayerRole::Head,
        &[norm],
    )?;
    let pooled = g.add("pool.gap", Op::GlobalAvgPool, LayerRole::Head, &[nchw])?;
    let logits = g.add(
        "head.fc",
        linear(cfg.num_classes),
        LayerRole::Head,
        &[pooled],
    )?;
    g.set_output(logits);
    Ok(g)
}

/// Builds a BERT-style text encoder graph operating on pre-embedded tokens.
///
/// The graph input is `[batch, seq_len, dim]` (embedding lookup is a table
/// read, not computation). The output is the final hidden states.
///
/// # Errors
///
/// Returns [`ModelError`] for zero-sized configurations.
pub fn build_bert(stack: &EncoderStackConfig, seq_len: usize, batch: usize) -> Result<Graph> {
    if seq_len == 0 || batch == 0 || stack.layers == 0 {
        return Err(ModelError::BadConfig(
            "sequence length, batch and layers must be nonzero".to_string(),
        ));
    }
    if stack.dim == 0 || stack.heads == 0 || !stack.dim.is_multiple_of(stack.heads) {
        return Err(ModelError::BadConfig(format!(
            "dim {} must be divisible by heads {}",
            stack.dim, stack.heads
        )));
    }
    let mut g = Graph::new("bert-base");
    let tokens = g.input("tokens", &[batch, seq_len, stack.dim])?;
    let role = LayerRole::EncoderBlock { stage: 0, block: 0 };
    let out = add_encoder_stack(&mut g, tokens, stack, role)?;
    let norm = g.add("final_norm", Op::LayerNorm, LayerRole::Head, &[out])?;
    g.set_output(norm);
    Ok(g)
}

/// BERT-Base stack parameters.
pub fn bert_base() -> EncoderStackConfig {
    EncoderStackConfig {
        dim: 768,
        layers: 12,
        heads: 12,
        ffn_dim: 3072,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_graph::OpClass;

    #[test]
    fn vit_has_zero_convolutions() {
        let g = build_vit(&VitConfig::base16()).unwrap();
        assert_eq!(g.flops_by_class(OpClass::Conv), 0);
        // Attention + matmul dominate.
        let attn_mm = g.flops_by_class(OpClass::Attention) + g.flops_by_class(OpClass::Matmul);
        assert!(attn_mm as f64 / g.total_flops() as f64 > 0.95);
    }

    #[test]
    fn vit_b16_flops_and_params() {
        let g = build_vit(&VitConfig::base16()).unwrap();
        let gflops = g.total_flops() as f64 / 1e9;
        let m = g.total_params() as f64 / 1e6;
        // Reference: ViT-B/16 = ~17.6 GMACs, ~86 M params at 224x224.
        assert!((gflops - 17.6).abs() / 17.6 < 0.1, "got {gflops:.1} GMACs");
        assert!((m - 86.0).abs() / 86.0 < 0.1, "got {m:.1} M params");
    }

    #[test]
    fn bert_base_has_zero_convolutions_and_right_size() {
        let g = build_bert(&bert_base(), 128, 1).unwrap();
        assert_eq!(g.flops_by_class(OpClass::Conv), 0);
        let m = g.total_params() as f64 / 1e6;
        // BERT-Base encoder stack is ~85 M parameters (without embeddings).
        assert!((m - 85.0).abs() / 85.0 < 0.1, "got {m:.1} M params");
    }

    #[test]
    fn vit_executes_at_small_size() {
        use vit_graph::Executor;
        use vit_tensor::Tensor;
        let mut cfg = VitConfig::base16();
        cfg.image = (32, 32);
        cfg.stack.layers = 2;
        let g = build_vit(&cfg).unwrap();
        let out = Executor::new(0)
            .run(&g, &[Tensor::rand_uniform(&[1, 3, 32, 32], 0.0, 1.0, 1)])
            .unwrap();
        assert_eq!(out.shape(), &[1, 1000]);
    }

    #[test]
    fn bert_executes() {
        use vit_graph::Executor;
        use vit_tensor::Tensor;
        let mut stack = bert_base();
        stack.layers = 2;
        let g = build_bert(&stack, 16, 1).unwrap();
        let out = Executor::new(0)
            .run(&g, &[Tensor::rand_uniform(&[1, 16, 768], -1.0, 1.0, 1)])
            .unwrap();
        assert_eq!(out.shape(), &[1, 16, 768]);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = VitConfig::base16();
        cfg.image = (100, 100);
        assert!(build_vit(&cfg).is_err());
        assert!(build_bert(&bert_base(), 0, 1).is_err());
        let mut stack = bert_base();
        stack.heads = 7;
        assert!(build_bert(&stack, 16, 1).is_err());
    }
}
