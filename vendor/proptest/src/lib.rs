//! Offline stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`any`], [`Just`],
//! `collection::vec`, and `sample::select` — over a deterministic
//! per-test-name RNG. Failing cases are reported by ordinary `assert!`
//! panics with the case number; there is no shrinking, but every run is
//! fully reproducible.

#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving strategy sampling (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        TestRng {
            s: [
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
                splitmix(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// The deterministic RNG for a named test (seeded from the test name, so
/// every test sees an independent but reproducible stream).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    TestRng::seed_from_u64(h.finish() ^ 0x7072_6f70_7465_7374)
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy from each value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred` (resampling; panics if the filter
    /// rejects too many consecutive samples).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// A strategy always producing (clones of) one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + ((self.end - self.start) as f64 * rng.unit_f64()) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + ((hi - lo) as f64 * rng.unit_f64()) as $t
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical whole-domain strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// One sample covering the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

/// Whole-domain strategy marker for `T`; see [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>`; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Choice strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among fixed options; see [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }

    /// Uniform choice among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Error a property-test body may return (upstream-compatible name).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Result type of a property-test body; `proptest!` bodies may
/// `return Ok(())` to skip the rest of a case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The customary glob import for call sites.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a property-test condition (plain `assert!` semantics; failures
/// abort the test with the deterministic case visible in the panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in (0f64..1.0, 0f64..1.0)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // The body runs in a `Result`-returning closure so
                    // `return Ok(())` early-exits work, like upstream.
                    #[allow(unused_mut)]
                    let mut body = || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    };
                    if let Err(e) = body() {
                        panic!("case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_rng("bounds");
        let s = (1usize..5, 0f64..1.0, 1u64..=3);
        for _ in 0..500 {
            let (a, b, c) = Strategy::sample(&s, &mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert!((1..=3).contains(&c));
        }
    }

    #[test]
    fn vec_and_select_honor_their_domains() {
        let mut rng = crate::test_rng("vec");
        let s = prop::collection::vec(prop::sample::select(vec![2usize, 4, 6]), 1..8);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|x| [2, 4, 6].contains(x)));
        }
    }

    #[test]
    fn flat_map_filter_and_map_compose() {
        let mut rng = crate::test_rng("compose");
        let s = (3usize..12)
            .prop_flat_map(|t| (Just(t), 1..t, 1..=t))
            .prop_filter("ordered", |(_, s, b)| s < b)
            .prop_map(|(t, s, b)| (t, s, b));
        for _ in 0..200 {
            let (t, small, big) = Strategy::sample(&s, &mut rng);
            assert!(small < big && big <= t);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        let s = prop::collection::vec(0u64..1000, 3..10);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_accepts_standard_forms(
            x in 0usize..10,
            (lo, hi) in (0f64..0.5, 0.5f64..1.0),
            seed in any::<u64>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!(lo < hi, "lo {lo} hi {hi}");
            prop_assert_eq!(seed, seed);
        }
    }

    proptest! {
        #[test]
        fn macro_accepts_default_config(v in prop::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
