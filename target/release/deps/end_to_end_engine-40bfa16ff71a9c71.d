/root/repo/target/release/deps/end_to_end_engine-40bfa16ff71a9c71.d: crates/core/../../tests/end_to_end_engine.rs

/root/repo/target/release/deps/end_to_end_engine-40bfa16ff71a9c71: crates/core/../../tests/end_to_end_engine.rs

crates/core/../../tests/end_to_end_engine.rs:
