/root/repo/target/release/deps/repro-c0b20e72b12c65af.d: crates/bench/src/main.rs

/root/repo/target/release/deps/repro-c0b20e72b12c65af: crates/bench/src/main.rs

crates/bench/src/main.rs:
