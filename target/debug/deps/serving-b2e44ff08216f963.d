/root/repo/target/debug/deps/serving-b2e44ff08216f963.d: crates/serve/../../tests/serving.rs

/root/repo/target/debug/deps/serving-b2e44ff08216f963: crates/serve/../../tests/serving.rs

crates/serve/../../tests/serving.rs:
