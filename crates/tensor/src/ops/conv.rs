//! 2-D convolution kernels (standard, grouped, and depthwise).
//!
//! Two production paths, chosen per call by geometry:
//!
//! * `c_per_g == 1` (depthwise and fully-grouped convs): a **direct**
//!   tap-accumulation kernel. It replays the reference oracle's exact
//!   per-element operation order (taps ascending `(ry, sx)`,
//!   out-of-bounds taps skipped, never materialized as zeros), so it is
//!   bit-identical to [`crate::ops::reference::conv2d`] — exact tier.
//! * otherwise: **im2col into panel layout + packed GEMM**. The input
//!   window for one `(batch, group)` pair is gathered straight into the
//!   `NR`-wide column-panel layout the micro-kernel consumes (padding
//!   taps become explicit `0.0` entries), and the weight tensor is the
//!   GEMM's row-major left operand as stored. Materializing padding as
//!   `0.0 * w` terms is a reassociation of the oracle's tap-skip, so
//!   this path claims the tolerance tier
//!   ([`crate::ops::reference::tolerance`], class `Conv`).

use crate::error::{invalid_argument, invalid_shape, shape_mismatch, Result};
use crate::ops::fused::Epilogue;
use crate::ops::pack::{gemm_rows, packed_len, GemmBias, Panels, NR};
use crate::ops::reference;
use crate::par::{BufferPool, ExecCtx};
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
///
/// Kernel size is carried by the weight tensor; this struct holds stride,
/// padding, and group count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Rows of implicit zero padding on the top and bottom.
    pub pad_h: usize,
    /// Columns of implicit zero padding on the left and right.
    pub pad_w: usize,
    /// Number of groups; `groups == in_channels == out_channels` gives a
    /// depthwise convolution.
    pub groups: usize,
}

impl Conv2dParams {
    /// Unit-stride, unpadded, ungrouped parameters.
    pub fn new() -> Self {
        Conv2dParams {
            stride_h: 1,
            stride_w: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
        }
    }

    /// Sets an identical stride in both directions.
    pub fn stride(mut self, s: usize) -> Self {
        self.stride_h = s;
        self.stride_w = s;
        self
    }

    /// Sets identical padding in both directions.
    pub fn pad(mut self, p: usize) -> Self {
        self.pad_h = p;
        self.pad_w = p;
        self
    }

    /// Sets the group count.
    pub fn groups(mut self, g: usize) -> Self {
        self.groups = g;
        self
    }

    /// Output spatial size for an input of `(h, w)` with kernel `(r, s)`.
    ///
    /// Follows the usual floor convention:
    /// `out = (in + 2*pad - kernel) / stride + 1`.
    pub fn out_size(&self, h: usize, w: usize, r: usize, s: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad_h).saturating_sub(r) / self.stride_h + 1;
        let ow = (w + 2 * self.pad_w).saturating_sub(s) / self.stride_w + 1;
        (oh, ow)
    }
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Self::new()
    }
}

/// 2-D convolution.
///
/// `input` is NCHW `[n, c, h, w]`; `weight` is `[k, c/groups, r, s]`;
/// `bias` is `[k]` or `None`. Returns `[n, k, oh, ow]`.
///
/// # Errors
///
/// Returns an error when channel counts are inconsistent with `groups`, when
/// the kernel is larger than the padded input, or when the bias length is
/// wrong.
///
/// # Examples
///
/// ```
/// use vit_tensor::{Tensor, ops::{conv2d, Conv2dParams}};
/// # fn main() -> Result<(), vit_tensor::TensorError> {
/// // 1x1 convolution acting as a per-pixel channel mix.
/// let x = Tensor::ones(&[1, 3, 2, 2]);
/// let w = Tensor::ones(&[4, 3, 1, 1]);
/// let y = conv2d(&x, &w, None, Conv2dParams::new())?;
/// assert_eq!(y.shape(), &[1, 4, 2, 2]);
/// assert_eq!(y.data()[0], 3.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Result<Tensor> {
    conv2d_ctx(input, weight, bias, p, &ExecCtx::default())
}

/// Geometry of one [`conv2d_ctx`] call, shared by every output chunk.
#[derive(Clone, Copy)]
pub(crate) struct ConvGeom {
    pub(crate) c: usize,
    pub(crate) h: usize,
    pub(crate) w: usize,
    pub(crate) k: usize,
    pub(crate) c_per_g: usize,
    pub(crate) k_per_g: usize,
    pub(crate) r: usize,
    pub(crate) s: usize,
    pub(crate) oh: usize,
    pub(crate) ow: usize,
    pub(crate) p: Conv2dParams,
}

/// Validates one convolution call and computes its [`ConvGeom`] plus the
/// batch count. Shared by the production kernel, the packed-plan wrapper,
/// and the reference oracle so every path agrees on legality.
pub(crate) fn conv_geometry(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Result<(ConvGeom, usize)> {
    if input.rank() != 4 || weight.rank() != 4 {
        return Err(invalid_shape(
            "conv2d",
            format!(
                "input and weight must be rank 4, got {:?} and {:?}",
                input.shape(),
                weight.shape()
            ),
        ));
    }
    if p.stride_h == 0 || p.stride_w == 0 {
        return Err(invalid_argument(
            "conv2d",
            "stride must be nonzero".to_string(),
        ));
    }
    if p.groups == 0 {
        return Err(invalid_argument(
            "conv2d",
            "groups must be nonzero".to_string(),
        ));
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (k, c_per_g, r, s) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if c % p.groups != 0 || k % p.groups != 0 {
        return Err(invalid_argument(
            "conv2d",
            format!(
                "channels ({c} in, {k} out) not divisible by groups {}",
                p.groups
            ),
        ));
    }
    if c / p.groups != c_per_g {
        return Err(shape_mismatch(
            "conv2d",
            format!(
                "weight in-channels {} (= {c} / groups {})",
                c / p.groups,
                p.groups
            ),
            format!("{c_per_g}"),
        ));
    }
    if h + 2 * p.pad_h < r || w + 2 * p.pad_w < s {
        return Err(invalid_shape(
            "conv2d",
            format!(
                "kernel {r}x{s} larger than padded input {}x{}",
                h + 2 * p.pad_h,
                w + 2 * p.pad_w
            ),
        ));
    }
    if let Some(b) = bias {
        if b.numel() != k {
            return Err(shape_mismatch(
                "conv2d",
                format!("bias of {k} elements"),
                format!("{:?}", b.shape()),
            ));
        }
    }
    let (oh, ow) = p.out_size(h, w, r, s);
    let geom = ConvGeom {
        c,
        h,
        w,
        k,
        c_per_g,
        k_per_g: k / p.groups,
        r,
        s,
        oh,
        ow,
        p,
    };
    Ok((geom, n))
}

/// The valid `ox` range `[lo, hi)` for a given kernel column `sx`: the
/// output columns whose tap `ox * stride_w + sx` lands inside the
/// unpadded input. Computing the range up front replaces the oracle's
/// per-tap bounds branch without changing which taps contribute.
fn valid_ox_range(sx: usize, g: &ConvGeom) -> (usize, usize) {
    let sw = g.p.stride_w;
    let lo = if sx >= g.p.pad_w {
        0
    } else {
        (g.p.pad_w - sx).div_ceil(sw)
    };
    let hi = if g.w + g.p.pad_w > sx {
        ((g.w + g.p.pad_w - 1 - sx) / sw + 1).min(g.ow)
    } else {
        0
    };
    (lo.min(hi), hi)
}

/// Direct single-input-channel kernel for one output plane: replays the
/// oracle's per-element tap order exactly (taps ascending `(ry, sx)`,
/// out-of-bounds taps skipped), so the result is bit-identical to
/// [`reference::conv2d_rows`].
fn direct_plane_rows(
    xd: &[f32],
    wd: &[f32],
    bd: Option<&[f32]>,
    od: &mut [f32],
    row0: usize,
    g: ConvGeom,
    ep: Epilogue,
) {
    let plane = g.oh * g.ow;
    for (row, orow) in od.chunks_mut(plane).enumerate() {
        let (b, ko) = ((row0 + row) / g.k, (row0 + row) % g.k);
        let cin = ko / g.k_per_g;
        let chan = &xd[(b * g.c + cin) * g.h * g.w..][..g.h * g.w];
        // The plan arena is not pre-zeroed; accumulation starts at 0.0
        // exactly as the oracle's per-element accumulator does.
        orow.fill(0.0);
        for ry in 0..g.r {
            for sx in 0..g.s {
                let wv = wd[(ko * g.r + ry) * g.s + sx];
                let (ox_lo, ox_hi) = valid_ox_range(sx, &g);
                for oy in 0..g.oh {
                    let iy = oy * g.p.stride_h + ry;
                    if iy < g.p.pad_h || iy >= g.h + g.p.pad_h {
                        continue;
                    }
                    let iy = iy - g.p.pad_h;
                    let xrow = &chan[iy * g.w..(iy + 1) * g.w];
                    let orow_y = &mut orow[oy * g.ow..(oy + 1) * g.ow];
                    for ox in ox_lo..ox_hi {
                        orow_y[ox] += wv * xrow[ox * g.p.stride_w + sx - g.p.pad_w];
                    }
                }
            }
        }
        match bd {
            Some(bd) => {
                let bias_k = bd[ko];
                for v in orow.iter_mut() {
                    *v = ep.apply(*v + bias_k);
                }
            }
            None => {
                for v in orow.iter_mut() {
                    *v = ep.apply(*v);
                }
            }
        }
    }
}

/// Gathers the im2col matrix for one `(batch, group)` pair directly into
/// panel layout: column `t` of the `[crs, plane]` im2col matrix (an
/// output pixel) becomes lane `t % NR` of panel `t / NR`; padding taps
/// are explicit zeros.
fn im2col_panels(xd: &[f32], b: usize, g_idx: usize, g: &ConvGeom, col: &mut [f32]) {
    let crs = g.c_per_g * g.r * g.s;
    col.fill(0.0);
    let mut kk = 0;
    for ci in 0..g.c_per_g {
        let cin = g_idx * g.c_per_g + ci;
        let chan = &xd[(b * g.c + cin) * g.h * g.w..][..g.h * g.w];
        for ry in 0..g.r {
            for sx in 0..g.s {
                let (ox_lo, ox_hi) = valid_ox_range(sx, g);
                for oy in 0..g.oh {
                    let iy = oy * g.p.stride_h + ry;
                    if iy < g.p.pad_h || iy >= g.h + g.p.pad_h {
                        continue;
                    }
                    let iy = iy - g.p.pad_h;
                    let xrow = &chan[iy * g.w..(iy + 1) * g.w];
                    for ox in ox_lo..ox_hi {
                        let t = oy * g.ow + ox;
                        col[((t / NR) * crs + kk) * NR + (t % NR)] =
                            xrow[ox * g.p.stride_w + sx - g.p.pad_w];
                    }
                }
                kk += 1;
            }
        }
    }
}

/// Computes output channel-planes `[row0, row0 + rows)` of the flattened
/// `(batch, out_channel)` axis into `od` (that range's contiguous slice),
/// applying `ep` at each element's final store.
///
/// Dispatches between the direct exact-tier path and the im2col +
/// packed-GEMM tolerance-tier path (see the module docs). Both choose
/// their geometry from shapes alone, so splitting the plane range across
/// threads cannot change a single bit of the result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_rows(
    xd: &[f32],
    wd: &[f32],
    bd: Option<&[f32]>,
    od: &mut [f32],
    row0: usize,
    g: ConvGeom,
    ep: Epilogue,
    bufs: Option<&BufferPool>,
) {
    let plane = g.oh * g.ow;
    if plane == 0 {
        return;
    }
    if g.c_per_g == 1 {
        direct_plane_rows(xd, wd, bd, od, row0, g, ep);
        return;
    }
    let rows = od.len() / plane;
    let crs = g.c_per_g * g.r * g.s;
    let col_len = packed_len(crs, plane);
    let mut col = match bufs {
        Some(pool) => pool.take_zeroed(col_len),
        None => vec![0.0f32; col_len],
    };
    let mut row = 0;
    while row < rows {
        let (b, ko) = ((row0 + row) / g.k, (row0 + row) % g.k);
        let g_idx = ko / g.k_per_g;
        // Rows of this chunk sharing the (batch, group) im2col matrix.
        let seg = ((g_idx + 1) * g.k_per_g - ko).min(rows - row);
        im2col_panels(xd, b, g_idx, &g, &mut col);
        gemm_rows(
            wd,
            crs,
            ko,
            Panels {
                data: &col,
                k: crs,
                n: plane,
            },
            &mut od[row * plane..(row + seg) * plane],
            bd.map_or(GemmBias::None, |bd| GemmBias::PerRow(&bd[ko..ko + seg])),
            ep,
        );
        row += seg;
    }
    if let Some(pool) = bufs {
        pool.recycle(col);
    }
}

/// [`conv2d`] with an execution context: output channel-planes are tiled
/// across the context's thread pool and scratch (output and im2col
/// panels) is drawn from its buffer pool. Bit-identical to [`conv2d`] at
/// any thread count.
///
/// # Errors
///
/// Returns the same validation errors as [`conv2d`].
pub fn conv2d_ctx(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
    ctx: &ExecCtx<'_>,
) -> Result<Tensor> {
    let (geom, n) = conv_geometry(input, weight, bias, p)?;
    let mut out = ctx.alloc_zeroed(&[n, geom.k, geom.oh, geom.ow]);
    let xd = input.data();
    let wd = weight.data();
    let bd = bias.map(Tensor::data);
    let plane = geom.oh * geom.ow;
    let reference = ctx.reference;
    let bufs = ctx.bufs;
    ctx.for_each_row_chunk(out.data_mut(), plane, |_, start, piece| {
        let row0 = start / plane.max(1);
        if reference {
            reference::conv2d_rows(xd, wd, bd, piece, row0, geom, Epilogue::None);
        } else {
            conv2d_rows(xd, wd, bd, piece, row0, geom, Epilogue::None, bufs);
        }
    });
    Ok(out)
}

/// Depthwise 2-D convolution: one filter per channel
/// (`groups == in_channels == out_channels`).
///
/// `weight` is `[c, 1, r, s]`.
///
/// # Errors
///
/// Propagates the validation errors of [`conv2d`].
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    mut p: Conv2dParams,
) -> Result<Tensor> {
    let c = input
        .shape()
        .get(1)
        .copied()
        .ok_or_else(|| invalid_shape("depthwise_conv2d", "input must be rank 4".to_string()))?;
    p.groups = c;
    conv2d(input, weight, bias, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_1x1_is_channel_mix() {
        // 2 input channels, 1 output channel, weights [1, 2]:
        // out = 1*x0 + 2*x1 per pixel.
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, // channel 0
                10.0, 20.0, 30.0, 40.0, // channel 1
            ],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let w = Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1, 1]).unwrap();
        let y = conv2d(&x, &w, None, Conv2dParams::new()).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[21.0, 42.0, 63.0, 84.0]);
    }

    #[test]
    fn conv_3x3_hand_example() {
        // 3x3 mean filter over a 3x3 image with padding 1.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv2d(&x, &w, None, Conv2dParams::new().pad(1)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        // Center output = sum of all 9 inputs = 45.
        assert_eq!(y.at(&[0, 0, 1, 1]), 45.0);
        // Top-left output = sum of the 2x2 top-left block = 1+2+4+5 = 12.
        assert_eq!(y.at(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn conv_stride_downsamples() {
        let x = Tensor::ones(&[1, 1, 8, 8]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &w, None, Conv2dParams::new().stride(2)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert!(y.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn conv_overlapping_patch_embed_shape() {
        // SegFormer stage-0 patch embedding: 7x7 kernel, stride 4, pad 3.
        let x = Tensor::zeros(&[1, 3, 64, 64]);
        let w = Tensor::zeros(&[32, 3, 7, 7]);
        let p = Conv2dParams::new().stride(4).pad(3);
        let y = conv2d(&x, &w, None, p).unwrap();
        assert_eq!(y.shape(), &[1, 32, 16, 16]);
    }

    #[test]
    fn conv_bias_added_per_channel() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![3.0, -1.0], &[2]).unwrap();
        let y = conv2d(&x, &w, Some(&b), Conv2dParams::new()).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]), 3.0);
        assert_eq!(y.at(&[0, 1, 1, 1]), -1.0);
    }

    #[test]
    fn depthwise_applies_per_channel_filter() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]).unwrap();
        // Channel 0 doubled, channel 1 negated.
        let w = Tensor::from_vec(vec![2.0, -1.0], &[2, 1, 1, 1]).unwrap();
        let y = depthwise_conv2d(&x, &w, None, Conv2dParams::new()).unwrap();
        assert_eq!(y.data(), &[2.0, 4.0, -3.0, -4.0]);
    }

    #[test]
    fn grouped_conv_partitions_channels() {
        // 4 in channels, 2 groups, 2 out channels: each output sees only its
        // half of the input channels.
        let x = Tensor::from_vec(vec![1.0, 10.0, 100.0, 1000.0], &[1, 4, 1, 1]).unwrap();
        let w = Tensor::ones(&[2, 2, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dParams::new().groups(2)).unwrap();
        assert_eq!(y.data(), &[11.0, 1100.0]);
    }

    #[test]
    fn conv_rejects_bad_groups_and_channels() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 3, 1, 1]);
        assert!(conv2d(&x, &w, None, Conv2dParams::new().groups(2)).is_err());
        let w_bad = Tensor::zeros(&[2, 4, 1, 1]);
        assert!(conv2d(&x, &w_bad, None, Conv2dParams::new()).is_err());
    }

    #[test]
    fn conv_matches_linear_for_1x1_on_flattened_pixels() {
        // A 1x1 conv is exactly a linear layer over channels at each pixel.
        let x = Tensor::rand_uniform(&[1, 6, 3, 3], -1.0, 1.0, 5);
        let w = Tensor::rand_uniform(&[4, 6, 1, 1], -1.0, 1.0, 6);
        let y = conv2d(&x, &w, None, Conv2dParams::new()).unwrap();
        let w2 = w.reshape(&[4, 6]).unwrap();
        // NCHW -> (HW, C)
        let xs = x.reshape(&[6, 9]).unwrap().transpose2().unwrap();
        let ys = crate::ops::linear(&xs, &w2, None).unwrap();
        for pix in 0..9 {
            for ch in 0..4 {
                let a = y.data()[ch * 9 + pix];
                let b = ys.data()[pix * 4 + ch];
                assert!((a - b).abs() < 1e-5, "pixel {pix} channel {ch}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn depthwise_path_is_bitwise_equal_to_reference() {
        // The direct single-input-channel kernel claims the EXACT tier.
        let x = Tensor::rand_uniform(&[2, 3, 9, 7], -1.0, 1.0, 31);
        let w = Tensor::rand_uniform(&[3, 1, 3, 3], -1.0, 1.0, 32);
        let b = Tensor::rand_uniform(&[3], -1.0, 1.0, 33);
        for p in [
            Conv2dParams::new().pad(1),
            Conv2dParams::new().stride(2).pad(1),
            Conv2dParams::new(),
        ] {
            let got = depthwise_conv2d(&x, &w, Some(&b), p).unwrap();
            let want = crate::ops::reference::conv2d(&x, &w, Some(&b), p.groups(3)).unwrap();
            assert_eq!(got.data(), want.data());
        }
    }

    #[test]
    fn grouped_im2col_path_matches_reference_within_tolerance() {
        use crate::ops::reference::{tolerance, within_tolerance, KernelClass};
        let x = Tensor::rand_uniform(&[1, 8, 6, 5], -1.0, 1.0, 41);
        let w = Tensor::rand_uniform(&[6, 4, 3, 3], -1.0, 1.0, 42);
        let p = Conv2dParams::new().pad(1).groups(2);
        let got = conv2d(&x, &w, None, p).unwrap();
        let want = crate::ops::reference::conv2d(&x, &w, None, p).unwrap();
        assert!(within_tolerance(
            got.data(),
            want.data(),
            tolerance(KernelClass::Conv)
        ));
    }
}
