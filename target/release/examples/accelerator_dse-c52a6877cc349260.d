/root/repo/target/release/examples/accelerator_dse-c52a6877cc349260.d: crates/core/../../examples/accelerator_dse.rs Cargo.toml

/root/repo/target/release/examples/libaccelerator_dse-c52a6877cc349260.rmeta: crates/core/../../examples/accelerator_dse.rs Cargo.toml

crates/core/../../examples/accelerator_dse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
