/root/repo/target/release/deps/serde-db65170627b3ed5a.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-db65170627b3ed5a: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
