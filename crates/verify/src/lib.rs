//! # vit-verify
//!
//! Static analysis for the DRT reproduction: multi-pass verification of
//! execution graphs and Pareto LUTs with rustc-style typed diagnostics.
//!
//! The paper's premise (§III-IV) is that dynamic execution paths —
//! bypassed encoder layers, reduced decoder channels — remain *valid*
//! programs whose analytical cost predictions the LUT can trust. This
//! crate is the tooling that makes that premise checkable offline:
//!
//! * **pass 1, graph well-formedness** ([`verify_graph`]) — re-runs shape
//!   inference over every node and diffs against stored shapes, checks
//!   topological/id invariants, dead nodes, and role consistency;
//! * **pass 2, cost conservation** ([`verify_costs`]) — re-derives
//!   per-node FLOPs/params/bytes and demands exact agreement between the
//!   graph's aggregations and the profiler's summaries;
//! * **pass 3, LUT soundness** ([`verify_lut`]) — strict Pareto
//!   monotonicity, finiteness, budget coverage, config materialization,
//!   and serve-policy feasibility;
//! * **pass 4, accelerator mapping** ([`verify_accel_mapping`]) — every
//!   MAC contraction must tile the vector datapath legally;
//! * **pass 5, plan equivalence** ([`verify_plan`]) — a compiled
//!   execution plan must be the same program as its source graph: exact
//!   cost totals, exactly-once node coverage, a sound arena layout, and
//!   buffer wiring that matches the graph's edges;
//! * **pass 6, exec safety** ([`verify_exec_safety`]) — the plan must be
//!   safe to run in parallel: every record's chunk decomposition
//!   partitions its output range with no overlap, recorded liveness
//!   never frees a range a reader still needs, the wavefront scheduler's
//!   counters match the graph's edges under any interleaving, FP
//!   reassociation is declared and tolerance-tiered, and hot-path
//!   `unsafe`/unchecked indexing is audited ([`audit_sources`]); a debug
//!   shadow-access replay cross-validates the static verdict.
//!
//! Each finding is a [`Diagnostic`] with a stable [`Code`] (`V001`
//! shape-mismatch, `V021` pareto-nonmonotone, ...), a severity, a span,
//! and an optional help line; a [`Report`] renders them human-readable or
//! as JSON. `repro verify [--json] [--deny-warnings]` runs everything
//! over every built-in model.
//!
//! # Examples
//!
//! ```
//! use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};
//! use vit_verify::verify_model;
//!
//! # fn main() -> Result<(), vit_models::ModelError> {
//! let g = build_segformer(
//!     &SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(64, 64))?;
//! let report = verify_model(&g, &Default::default());
//! assert!(report.is_clean(true), "{}", report.render());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod accel_pass;
mod cost_pass;
mod diag;
mod exec_pass;
mod graph_pass;
mod lut_pass;
mod plan_pass;

pub use accel_pass::verify_accel_mapping;
pub use cost_pass::verify_costs;
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use exec_pass::{
    audit_source, audit_sources, exec_safety_summary, verify_exec_safety, verify_plan_exec,
    verify_sched_meta, verify_shadow, ExecSafetySummary,
};
pub use graph_pass::verify_graph;
pub use lut_pass::{verify_lut, LutContext};
pub use plan_pass::verify_plan;

use vit_accel::AccelConfig;
use vit_drt::Lut;
use vit_graph::Graph;
use vit_profiler::Profile;

/// Tunable thresholds for the warning-severity lints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyOptions {
    /// `V024` fires when a LUT row's resource is more than this factor
    /// above its predecessor's.
    pub budget_gap_factor: f64,
    /// `V031` fires when a contraction's combined vector-lane utilization
    /// (after padding `c`/`k` up to `c0`/`k0`) falls below this fraction.
    pub min_mac_utilization: f64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            // The widest ratio between neighboring rows observed across the
            // shipped sweep spaces is well under 4x; a larger jump means
            // the sweep lost a region of the trade-off curve.
            budget_gap_factor: 4.0,
            // 2%: low enough that the deliberately narrow real layers
            // (RGB stems, depthwise convolutions) stay quiet, high enough
            // to catch degenerate single-channel contractions.
            min_mac_utilization: 0.02,
        }
    }
}

/// Runs passes 1 and 2 over a graph (well-formedness + cost conservation
/// against a fresh [`Profile::flops_only`]).
pub fn verify_model(graph: &Graph, _opts: &VerifyOptions) -> Report {
    let mut report = Report::new(format!("{} ({} nodes)", graph.model, graph.len()));
    report.extend(verify_graph(graph));
    // Cost conservation is only meaningful over a structurally sound
    // graph; re-deriving FLOPs of a node whose shapes are wrong would
    // double-report the same root cause.
    if report.errors() == 0 {
        report.extend(verify_costs(graph, &Profile::flops_only(graph)));
    }
    report
}

/// Runs passes 1, 2, and 4 over a graph: everything [`verify_model`] runs
/// plus the accelerator mapping pass for each hardware configuration.
pub fn verify_model_on_accelerators(
    graph: &Graph,
    accels: &[(&str, AccelConfig)],
    opts: &VerifyOptions,
) -> Report {
    let mut report = verify_model(graph, opts);
    if report.errors() == 0 {
        for (_, accel) in accels {
            report.extend(verify_accel_mapping(graph, accel, opts));
        }
    }
    report
}

/// Runs pass 3 over a LUT, returning a full [`Report`].
pub fn verify_lut_report(lut: &Lut, ctx: &LutContext, opts: &VerifyOptions) -> Report {
    let mut report = Report::new(format!("LUT `{}` ({} rows)", lut.description, lut.len()));
    report.extend(verify_lut(lut, ctx, opts));
    report
}
