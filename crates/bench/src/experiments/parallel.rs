//! `repro bench`: sequential-vs-parallel wall-clock regression harness.
//!
//! Times the *full* (undynamic) execution path of each model with the
//! sequential interpreter, with the wavefront executor at several thread
//! counts, and by replaying a compiled [`ExecPlan`]; asserts every
//! variant's outputs are bit-identical to the sequential interpreter's,
//! and (with `--json`) writes the numbers — including per-op-class
//! GFLOP/s from best-of-N traced runs — to `BENCH_parallel_exec.json` so
//! later PRs have a perf trajectory to compare against.
//!
//! `--json` is also a **throughput ratchet**: before overwriting the
//! committed `BENCH_parallel_exec.json`, the per-(model, op-class)
//! GFLOP/s it records are compared against the fresh run, and any class
//! regressing by more than `RATCHET_TOLERANCE` (15%) fails the run with exit
//! code 1 (a non-required CI signal — wall clocks on shared boxes are
//! noisy, so the gate is advisory, but the committed baseline makes the
//! regression visible and datable). Classes whose self-time is under the
//! `MIN_RATCHET_MS` noise floor are reported but never ratcheted.
//!
//! The report records the machine's hardware parallelism: speedups are
//! only physically possible when the machine has more than one core, and
//! honest numbers on a one-core CI box (ratio ≈ 1.0 or below) are still a
//! valid regression baseline.

use crate::{banner, f, Table};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use vit_graph::{ExecOptions, ExecScratch, Graph, OpClass, RunContext, WeightGen};
use vit_models::{
    build_segformer, build_swin_upernet, SegFormerConfig, SegFormerVariant, SwinConfig, SwinVariant,
};
use vit_plan::ExecPlan;
use vit_profiler::Profile;
use vit_tensor::Tensor;
use vit_trace::{chrome_trace_json, validate, EventKind, RingBufferSink, TraceSink};

/// Flags for [`bench()`].
#[derive(Debug, Default, Clone)]
pub struct BenchArgs {
    /// Write `BENCH_parallel_exec.json` next to the table output.
    pub json: bool,
    /// Smoke mode for CI: fewer repetitions and thread counts.
    pub quick: bool,
    /// Run the tracing section: gate the disabled-tracing overhead,
    /// validate a captured trace, and write it to this path.
    pub trace: Option<String>,
}

struct Case {
    name: &'static str,
    graph: Graph,
    image: Tensor,
}

fn cases() -> Vec<Case> {
    // Full paths (dynamic = full model) at an executable geometry. The
    // acceptance target is the SegFormer-B2 full path; B0 and Swin-T give
    // the trajectory breadth.
    let image = (64, 64);
    let mk_image = |seed| Tensor::rand_uniform(&[1, 3, image.0, image.1], 0.0, 1.0, seed);
    vec![
        Case {
            name: "segformer-b0",
            graph: build_segformer(&SegFormerConfig {
                image,
                ..SegFormerConfig::ade20k(SegFormerVariant::b0())
            })
            .expect("builds"),
            image: mk_image(1),
        },
        Case {
            name: "segformer-b2",
            graph: build_segformer(&SegFormerConfig {
                image,
                ..SegFormerConfig::ade20k(SegFormerVariant::b2())
            })
            .expect("builds"),
            image: mk_image(2),
        },
        Case {
            name: "swin-tiny-upernet",
            graph: build_swin_upernet(&SwinConfig {
                image,
                ..SwinConfig::ade20k(SwinVariant::tiny())
            })
            .expect("builds"),
            image: mk_image(3),
        },
    ]
}

struct ParallelPoint {
    threads: usize,
    ms: f64,
    bit_identical: bool,
}

struct PlanPoint {
    compile_ms: f64,
    ms: f64,
    bit_identical: bool,
    records: usize,
    fused: usize,
    arena_elems: usize,
}

struct ClassRate {
    class: &'static str,
    flops: u64,
    ms: f64,
}

struct CaseResult {
    name: &'static str,
    seq_ms: f64,
    parallel: Vec<ParallelPoint>,
    plan: PlanPoint,
    classes: Vec<ClassRate>,
}

/// Best-of-`reps` wall time of one full graph execution, in milliseconds.
fn time_run(
    scratch: &mut ExecScratch,
    gen: WeightGen,
    case: &Case,
    ctx: &RunContext,
    reps: usize,
) -> (f64, Tensor) {
    let inputs = std::slice::from_ref(&case.image);
    let mut out = scratch
        .run_with(gen, &case.graph, inputs, ctx)
        .expect("bench graph runs"); // warm weights, graphs, buffers
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = scratch
            .run_with(gen, &case.graph, inputs, ctx)
            .expect("bench graph runs");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

/// Best-of-`reps` wall time of one plan replay, in milliseconds.
fn time_plan(plan: &ExecPlan, case: &Case, ctx: &RunContext, reps: usize) -> (f64, Tensor) {
    let inputs = std::slice::from_ref(&case.image);
    let mut out = plan.execute(inputs, ctx).expect("bench plan replays"); // warm arena
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = plan.execute(inputs, ctx).expect("bench plan replays");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

/// The reporting buckets for per-class throughput: the profiler's
/// compute classes, with elementwise and data movement folded into
/// `other` (their FLOP counts are zero or negligible either way).
fn class_label(class: OpClass) -> &'static str {
    match class {
        OpClass::Conv => "conv",
        OpClass::Matmul => "matmul",
        OpClass::Attention => "attention",
        OpClass::Norm => "norm",
        OpClass::Elementwise | OpClass::Memory => "other",
    }
}

/// Per-op-class FLOPs and wall time from `reps` traced sequential runs,
/// keeping each class's **best** (minimum) total time: analytical
/// GFLOP/s (MAC convention) per compute class. A single traced run is
/// too noisy to ratchet against — on a shared box one scheduling hiccup
/// inside a sub-millisecond class shifts its rate by 2–3× — and the
/// minimum is the standard wall-clock noise filter (same policy as the
/// timing cells).
fn class_rates(
    scratch: &mut ExecScratch,
    gen: WeightGen,
    case: &Case,
    reps: usize,
) -> Vec<ClassRate> {
    let classes: HashMap<&str, OpClass> = case
        .graph
        .iter()
        .map(|(_, n)| (n.name.as_str(), n.op.class()))
        .collect();
    let order = ["conv", "matmul", "attention", "norm", "other"];
    // Per class: FLOPs (identical every run) and the best total time.
    let mut best: HashMap<&str, (u64, u64)> = HashMap::new();
    for _ in 0..reps.max(1) {
        let ring = Arc::new(RingBufferSink::new(1 << 20));
        let ctx = RunContext::default().with_sink(ring.clone() as Arc<dyn TraceSink>);
        scratch
            .run_with(gen, &case.graph, std::slice::from_ref(&case.image), &ctx)
            .expect("bench graph runs");
        let mut agg: HashMap<&str, (u64, u64)> = HashMap::new();
        for e in ring.take() {
            if let EventKind::Node {
                name,
                start_ns,
                end_ns,
                flops,
                ..
            } = e.kind
            {
                let label = class_label(classes[name.as_str()]);
                let slot = agg.entry(label).or_insert((0, 0));
                slot.0 += flops;
                slot.1 += end_ns - start_ns;
            }
        }
        for (label, (flops, ns)) in agg {
            let slot = best.entry(label).or_insert((flops, ns));
            slot.1 = slot.1.min(ns);
        }
    }
    order
        .iter()
        .map(|&class| {
            let (flops, ns) = best.get(class).copied().unwrap_or((0, 0));
            ClassRate {
                class,
                flops,
                ms: ns as f64 / 1e6,
            }
        })
        .collect()
}

/// GFLOP/s of a (FLOPs, milliseconds) pair; zero when nothing ran.
fn gflops(flops: u64, ms: f64) -> f64 {
    if ms > 0.0 {
        flops as f64 / (ms * 1e6)
    } else {
        0.0
    }
}

/// The seq-vs-parallel benchmark (`repro bench`).
pub fn bench(args: BenchArgs) {
    banner("bench — sequential vs parallel vs compiled-plan execution (full paths)");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let (reps, thread_counts): (usize, &[usize]) =
        if args.quick { (1, &[2]) } else { (3, &[2, 4]) };
    println!("hardware parallelism: {cores} core(s); best of {reps} timed run(s) per cell\n");

    let gen = WeightGen::new(0);
    let mut results = Vec::new();
    let mut t = Table::new(&[
        "model",
        "seq ms",
        "threads",
        "par ms",
        "speedup",
        "bit-identical",
    ]);
    for case in cases() {
        let mut scratch = ExecScratch::new();
        let (seq_ms, seq_out) = time_run(&mut scratch, gen, &case, &RunContext::default(), reps);
        let mut parallel = Vec::new();
        for &threads in thread_counts {
            let ctx = RunContext::default().with_exec(ExecOptions::threaded(threads));
            let (ms, out) = time_run(&mut scratch, gen, &case, &ctx, reps);
            let identical = out == seq_out;
            assert!(
                identical,
                "{}: parallel output at {threads} threads diverged from sequential",
                case.name
            );
            t.row(&[
                case.name.to_string(),
                f(seq_ms, 2),
                threads.to_string(),
                f(ms, 2),
                f(seq_ms / ms, 2),
                identical.to_string(),
            ]);
            parallel.push(ParallelPoint {
                threads,
                ms,
                bit_identical: identical,
            });
        }

        // Compiled plan: pay the lowering once, then replay the flat
        // record stream sequentially. Replay must beat (or at worst
        // match) the interpreter — that is the whole point of plans.
        let t0 = Instant::now();
        let plan = ExecPlan::compile(&case.graph, gen).expect("bench plan compiles");
        let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (plan_ms, plan_out) = time_plan(&plan, &case, &RunContext::default(), reps);
        let identical = plan_out == seq_out;
        assert!(
            identical,
            "{}: plan replay diverged from the sequential interpreter",
            case.name
        );
        t.row(&[
            case.name.to_string(),
            f(seq_ms, 2),
            "plan".to_string(),
            f(plan_ms, 2),
            f(seq_ms / plan_ms, 2),
            identical.to_string(),
        ]);
        let plan_point = PlanPoint {
            compile_ms,
            ms: plan_ms,
            bit_identical: identical,
            records: plan.records().len(),
            fused: plan.fused_nodes(),
            arena_elems: plan.arena_len(),
        };

        let classes = class_rates(&mut scratch, gen, &case, reps);
        results.push(CaseResult {
            name: case.name,
            seq_ms,
            parallel,
            plan: plan_point,
            classes,
        });
    }
    t.print();

    let mut pt = Table::new(&["model", "records", "fused", "arena KiB", "compile ms"]);
    for r in &results {
        pt.row(&[
            r.name.to_string(),
            r.plan.records.to_string(),
            r.plan.fused.to_string(),
            f(r.plan.arena_elems as f64 * 4.0 / 1024.0, 1),
            f(r.plan.compile_ms, 2),
        ]);
    }
    println!("\ncompiled plans:");
    pt.print();

    let mut ct = Table::new(&["model", "class", "GFLOP", "ms", "GFLOP/s"]);
    for r in &results {
        for c in &r.classes {
            ct.row(&[
                r.name.to_string(),
                c.class.to_string(),
                f(c.flops as f64 / 1e9, 3),
                f(c.ms, 2),
                f(gflops(c.flops, c.ms), 2),
            ]);
        }
    }
    println!("\nper-op-class throughput (best of {reps} traced sequential runs, MAC convention):");
    ct.print();

    if args.json {
        let path = "BENCH_parallel_exec.json";
        let baseline = std::fs::read_to_string(path)
            .ok()
            .map(|s| parse_baseline_rates(&s));
        std::fs::write(path, render_json(cores, reps, args.quick, &results))
            .expect("write benchmark JSON");
        println!("\nwrote {path}");
        match baseline {
            Some(base) => {
                let violations = ratchet_violations(&base, &results);
                if violations.is_empty() {
                    println!(
                        "throughput ratchet: every op class within {:.0}% of the \
                         committed baseline",
                        RATCHET_TOLERANCE * 1e2
                    );
                } else {
                    eprintln!(
                        "throughput ratchet: op classes regressed more than {:.0}% \
                         vs the committed {path}:",
                        RATCHET_TOLERANCE * 1e2
                    );
                    for v in &violations {
                        eprintln!("  {v}");
                    }
                    std::process::exit(1);
                }
            }
            None => println!("throughput ratchet: no committed {path} to compare against"),
        }
    }

    if let Some(path) = &args.trace {
        trace_section(gen, args.quick, path);
    }
}

/// Median of a sample (not the best-of used for speedups: an overhead
/// *gate* must compare typical costs, where a one-sided best would hide a
/// constant per-event tax in the noise floor).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One timed full-graph run under `ctx`, in milliseconds.
fn one_run_ms(scratch: &mut ExecScratch, gen: WeightGen, case: &Case, ctx: &RunContext) -> f64 {
    let t0 = Instant::now();
    scratch
        .run_with(gen, &case.graph, std::slice::from_ref(&case.image), ctx)
        .expect("bench graph runs");
    t0.elapsed().as_secs_f64() * 1e3
}

/// The `--trace` section: gates the disabled-tracing cost and proves a
/// captured trace is trustworthy before writing it out.
///
/// Since the redesign there is no sink-free execution path — disabled
/// tracing (the `NullSink`) *is* the baseline — so its cost is gated with
/// an A/A comparison over *per-iteration paired ratios*: each iteration
/// runs both NullSink contexts back-to-back (order alternating) and
/// contributes one B/A ratio, and the median ratio must sit within 2% of
/// 1.0 (3% in `--quick` smoke runs, which land on shared boxes whose
/// ambient noise reaches that). Pairing inside an iteration cancels the slow machine drift that
/// dominates group-median comparisons on shared boxes, so the gate bounds
/// the per-event seam (one virtual `enabled()` call) plus residual
/// per-run jitter only. The overhead of an *enabled* ring-buffer sink is
/// reported for information.
///
/// The same paired gate covers the fault-detection machinery: a run with
/// output guards enabled but no fault plan armed (the production serving
/// configuration) is ratioed against the mean of the two adjacent
/// NullSink runs each iteration, and its median ratio must land within
/// 2% beyond the A/A delta (the measured noise floor of identical code
/// in the same process) — proving the always-on NaN/Inf and magnitude
/// checks effectively free when nothing is injected.
fn trace_section(gen: WeightGen, quick: bool, path: &str) {
    let all = cases();
    let case = &all[0]; // segformer-b0: the acceptance target
                        // Enough iterations that each parity subset of the paired estimator
                        // has a stable median: a lone scheduler stall in a 4-sample subset
                        // *is* the median's neighbor, but in an 8-sample subset it is not.
    let reps = if quick { 16 } else { 24 };
    println!(
        "\ntracing — A/A NullSink gate on {}, median of {reps}:",
        case.name
    );

    let mut scratch = ExecScratch::new();
    let null_a = RunContext::default();
    let null_b = RunContext::default();
    // Guards on, nothing armed: what a production server runs every
    // request with.
    let guarded = RunContext::default()
        .with_fault(vit_fault::FaultCtx::new().with_guard(vit_fault::GuardConfig::default()));
    let ring = Arc::new(RingBufferSink::new(1 << 20));
    let traced = RunContext::default().with_sink(ring.clone() as Arc<dyn TraceSink>);
    for ctx in [&null_a, &null_b, &guarded, &traced] {
        one_run_ms(&mut scratch, gen, case, ctx); // warm weights + buffers
    }
    let (mut a, mut b, mut g, mut t) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for i in 0..reps {
        // Alternate the A/B order each iteration so machine drift within
        // an iteration biases both groups' medians equally instead of
        // always penalizing the second group.
        if i % 2 == 0 {
            a.push(one_run_ms(&mut scratch, gen, case, &null_a));
            b.push(one_run_ms(&mut scratch, gen, case, &null_b));
        } else {
            b.push(one_run_ms(&mut scratch, gen, case, &null_b));
            a.push(one_run_ms(&mut scratch, gen, case, &null_a));
        }
        // The guarded run sits between the null pair and the traced run:
        // the traced run's ring-buffer churn perturbs whatever follows
        // it, so it always goes last, where the perturbation lands on
        // the next iteration's first null run uniformly.
        g.push(one_run_ms(&mut scratch, gen, case, &guarded));
        t.push(one_run_ms(&mut scratch, gen, case, &traced));
    }
    // Per-iteration paired ratios, position-balanced: each iteration's
    // runs are adjacent in time, so a ratio is immune to the
    // minutes-scale drift that a ratio of group medians accumulates, and
    // pairing consecutive iterations (which run the two orders) cancels
    // the fixed run-order penalty before the median aggregates.
    let paired = |num: &[f64], den: &[f64]| {
        // Consecutive iterations run the two orders, so the geometric
        // mean of a consecutive pair of ratios cancels the run-order
        // penalty exactly; the median over pair-means then rejects the
        // occasional iteration contaminated by an external stall.
        let mut pairs: Vec<f64> = num
            .chunks_exact(2)
            .zip(den.chunks_exact(2))
            .map(|(n, d)| ((n[0] / d[0]) * (n[1] / d[1])).sqrt())
            .collect();
        median(&mut pairs)
    };
    let null_mean: Vec<f64> = a.iter().zip(&b).map(|(x, y)| (x + y) / 2.0).collect();
    let aa_delta = (paired(&b, &a) - 1.0).abs();
    let guard_delta = paired(&g, &null_mean) - 1.0;
    let trace_delta = paired(&t, &null_mean) - 1.0;
    let (ma, mb, mg, mt) = (
        median(&mut a),
        median(&mut b),
        median(&mut g),
        median(&mut t),
    );
    println!(
        "  null A {ma:.3} ms, null B {mb:.3} ms (paired A/A delta {:.2}%); unarmed \
         guards {mg:.3} ms ({:+.2}% vs disabled); ring-buffer sink {mt:.3} ms \
         ({:+.2}% vs disabled, informational)",
        aa_delta * 1e2,
        guard_delta * 1e2,
        trace_delta * 1e2,
    );
    // Quick mode is the CI smoke configuration and runs on shared boxes
    // whose ambient A/A noise sits near 2% even for identical code; the
    // full run keeps the strict bound.
    let aa_bound = if quick { 0.03 } else { 0.02 };
    assert!(
        aa_delta < aa_bound,
        "disabled-tracing A/A paired medians diverged by {:.2}% (>= {:.0}%)",
        aa_delta * 1e2,
        aa_bound * 1e2
    );
    // The A/A delta is the measured noise floor of *identical* code in
    // this very process — a bound no different-code comparison can beat.
    // On a quiet box it is ~0 and this is a strict 2% gate; on a loaded
    // box it keeps the gate honest instead of flaky.
    assert!(
        guard_delta < aa_delta + 0.02,
        "unarmed fault guards cost {:.2}% over the disabled baseline \
         (>= 2% beyond the {:.2}% A/A noise floor)",
        guard_delta * 1e2,
        aa_delta * 1e2
    );

    // One fresh traced run for the exported artifact, then prove it:
    // well-formed, complete (every node has a span), and FLOP-exact
    // against the static profiler count.
    ring.take();
    one_run_ms(&mut scratch, gen, case, &traced);
    let events = ring.take();
    assert_eq!(ring.dropped(), 0, "trace ring was large enough");
    validate(&events).expect("captured trace is well-formed");
    let node_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Node { .. }))
        .count();
    assert_eq!(node_events, case.graph.len(), "one span per graph node");
    let traced_flops: u64 = events
        .iter()
        .map(|e| match &e.kind {
            EventKind::Node { flops, .. } => *flops,
            _ => 0,
        })
        .sum();
    let static_flops = Profile::flops_only(&case.graph).total_flops();
    assert_eq!(
        traced_flops, static_flops,
        "traced FLOPs diverge from the static profiler count"
    );
    std::fs::write(path, chrome_trace_json(&events)).expect("write chrome trace JSON");
    println!(
        "  captured {} events ({node_events} node spans, FLOPs match static count); wrote {path}",
        events.len()
    );
}

/// Fractional per-op-class GFLOP/s regression the `--json` ratchet
/// tolerates before failing. Wall clocks on shared machines jitter by a
/// few percent; 15% is far outside that but far inside the ≥3× jumps the
/// kernel work targets.
const RATCHET_TOLERANCE: f64 = 0.15;

/// Classes whose fresh best-of-N self-time is under this many
/// milliseconds are too small to ratchet: at sub-millisecond scale the
/// measured rate is dominated by timer and scheduling granularity, not
/// kernel throughput, and the absolute cost of any real regression is
/// bounded by the floor itself.
const MIN_RATCHET_MS: f64 = 1.0;

/// Extracts `(model, op class, GFLOP/s)` rows from a committed
/// `BENCH_parallel_exec.json`. A hand-rolled line scan over the exact
/// shape [`render_json`] emits — one `"model"` field per result object,
/// then one `"class"`/`"gflops"` pair per line — so the bench binary
/// needs no JSON dependency. Unrecognized lines are skipped, so a
/// hand-edited or truncated baseline degrades to fewer comparisons, not
/// a parse failure.
fn parse_baseline_rates(json: &str) -> Vec<(String, String, f64)> {
    fn quoted_after(line: &str, key: &str) -> Option<String> {
        let rest = &line[line.find(key)? + key.len()..];
        Some(rest[..rest.find('"')?].to_string())
    }
    fn number_after(line: &str, key: &str) -> Option<f64> {
        let rest = &line[line.find(key)? + key.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
    let mut rows = Vec::new();
    let mut model = String::new();
    for line in json.lines() {
        if let Some(m) = quoted_after(line, "\"model\": \"") {
            model = m;
        } else if let (Some(class), Some(g)) = (
            quoted_after(line, "\"class\": \""),
            number_after(line, "\"gflops\": "),
        ) {
            rows.push((model.clone(), class, g));
        }
    }
    rows
}

/// Per-(model, op-class) GFLOP/s comparisons that regressed beyond
/// [`RATCHET_TOLERANCE`]. Classes with zero throughput on either side
/// (nothing ran, or a class absent from the baseline) or under the
/// [`MIN_RATCHET_MS`] noise floor are not comparable and never fail the
/// ratchet.
fn ratchet_violations(baseline: &[(String, String, f64)], results: &[CaseResult]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in results {
        for c in &r.classes {
            if c.ms < MIN_RATCHET_MS {
                continue;
            }
            let fresh = gflops(c.flops, c.ms);
            let old = baseline
                .iter()
                .find(|(m, cl, _)| m == r.name && cl == c.class)
                .map(|&(_, _, g)| g);
            if let Some(old) = old {
                if old > 0.0 && fresh > 0.0 && fresh < old * (1.0 - RATCHET_TOLERANCE) {
                    violations.push(format!(
                        "{} {}: {fresh:.3} GFLOP/s vs committed {old:.3} ({:+.1}%)",
                        r.name,
                        c.class,
                        (fresh / old - 1.0) * 1e2
                    ));
                }
            }
        }
    }
    violations
}

fn render_json(cores: usize, reps: usize, quick: bool, results: &[CaseResult]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"parallel_exec\",\n");
    s.push_str(&format!("  \"hardware_parallelism\": {cores},\n"));
    s.push_str(&format!("  \"timed_runs_per_cell\": {reps},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"model\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"sequential_ms\": {:.3},\n", r.seq_ms));
        s.push_str("      \"parallel\": [\n");
        for (j, p) in r.parallel.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"ms\": {:.3}, \"speedup\": {:.3}, \"bit_identical\": {}}}{}\n",
                p.threads,
                p.ms,
                r.seq_ms / p.ms,
                p.bit_identical,
                if j + 1 < r.parallel.len() { "," } else { "" }
            ));
        }
        s.push_str("      ],\n");
        s.push_str(&format!(
            "      \"plan\": {{\"ms\": {:.3}, \"speedup\": {:.3}, \"bit_identical\": {}, \
             \"compile_ms\": {:.3}, \"records\": {}, \"fused_nodes\": {}, \"arena_elems\": {}}},\n",
            r.plan.ms,
            r.seq_ms / r.plan.ms,
            r.plan.bit_identical,
            r.plan.compile_ms,
            r.plan.records,
            r.plan.fused,
            r.plan.arena_elems,
        ));
        s.push_str("      \"gflops_by_class\": [\n");
        for (j, c) in r.classes.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"class\": \"{}\", \"flops\": {}, \"ms\": {:.3}, \"gflops\": {:.3}}}{}\n",
                c.class,
                c.flops,
                c.ms,
                gflops(c.flops, c.ms),
                if j + 1 < r.classes.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &'static str, classes: Vec<ClassRate>) -> CaseResult {
        CaseResult {
            name,
            seq_ms: 1.0,
            parallel: Vec::new(),
            plan: PlanPoint {
                compile_ms: 0.0,
                ms: 1.0,
                bit_identical: true,
                records: 0,
                fused: 0,
                arena_elems: 0,
            },
            classes,
        }
    }

    #[test]
    fn baseline_parse_round_trips_render_json() {
        let results = [case(
            "segformer-b0",
            vec![
                ClassRate {
                    class: "conv",
                    flops: 2_000_000_000,
                    ms: 4.0,
                },
                ClassRate {
                    class: "matmul",
                    flops: 1_000_000_000,
                    ms: 2.0,
                },
            ],
        )];
        let rows = parse_baseline_rates(&render_json(1, 3, false, &results));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "segformer-b0");
        assert_eq!(rows[0].1, "conv");
        assert!((rows[0].2 - 500.0).abs() < 1e-6);
        assert_eq!(rows[1].1, "matmul");
        assert!((rows[1].2 - 500.0).abs() < 1e-6);
    }

    #[test]
    fn ratchet_fires_only_beyond_the_tolerance() {
        let baseline = vec![
            ("m".to_string(), "conv".to_string(), 10.0),
            ("m".to_string(), "matmul".to_string(), 10.0),
            ("m".to_string(), "norm".to_string(), 0.0),
        ];
        // conv regressed 20% (fires), matmul regressed 10% (within
        // tolerance), norm has a zero baseline (not comparable), and
        // attention is absent from the baseline entirely.
        let results = [case(
            "m",
            vec![
                ClassRate {
                    class: "conv",
                    flops: 8_000_000,
                    ms: 1.0,
                },
                ClassRate {
                    class: "matmul",
                    flops: 9_000_000,
                    ms: 1.0,
                },
                ClassRate {
                    class: "norm",
                    flops: 1_000_000,
                    ms: 1.0,
                },
                ClassRate {
                    class: "attention",
                    flops: 1_000_000,
                    ms: 1.0,
                },
            ],
        )];
        let v = ratchet_violations(&baseline, &results);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("conv"), "{v:?}");
    }

    #[test]
    fn ratchet_skips_classes_under_the_noise_floor() {
        let baseline = vec![("m".to_string(), "norm".to_string(), 10.0)];
        // 5x regression, but only 0.4 ms of self-time: noise-dominated.
        let results = [case(
            "m",
            vec![ClassRate {
                class: "norm",
                flops: 800_000,
                ms: 0.4,
            }],
        )];
        assert!(ratchet_violations(&baseline, &results).is_empty());
    }

    #[test]
    fn ratchet_ignores_unknown_models_and_improvements() {
        let baseline = vec![("other-model".to_string(), "conv".to_string(), 10.0)];
        let results = [case(
            "m",
            vec![ClassRate {
                class: "conv",
                flops: 1_000_000,
                ms: 1.0,
            }],
        )];
        assert!(ratchet_violations(&baseline, &results).is_empty());
        // A 10x improvement never fires.
        let baseline = vec![("m".to_string(), "conv".to_string(), 0.1)];
        assert!(ratchet_violations(&baseline, &results).is_empty());
    }
}
