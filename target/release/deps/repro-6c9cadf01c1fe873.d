/root/repo/target/release/deps/repro-6c9cadf01c1fe873.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/release/deps/librepro-6c9cadf01c1fe873.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
