//! # vit-plan
//!
//! Compiled execution plans: lower a [`vit_graph::Graph`] **once** into a
//! flat [`ExecPlan`] and replay it per inference.
//!
//! The interpreter in `vit-graph` walks the graph every run — hash-map
//! weight lookups, buffer-pool allocation, and (threaded) atomic wavefront
//! scheduling per node. Real ViT inference stacks (ViTA's edge
//! accelerator, Vis-TOP's overlay processor) instead compile a model into
//! a static schedule with fixed buffer placement and replay it. This crate
//! is that substrate for the DRT reproduction:
//!
//! * **flat records** — topologically ordered [`PlanRecord`]s with
//!   pre-resolved input/output offsets; replay is a tight loop, with no
//!   per-node hash lookups, `Arc` slot graphs, or atomic wavefront
//!   counters;
//! * **static arena** — one buffer sized by exact liveness analysis at
//!   compile time (free ranges are reused the moment their last consumer
//!   retires), replacing the `BufferPool` best-fit heuristic on this path;
//!   the arena is recycled across runs and never re-zeroed, because every
//!   record fully overwrites its output range;
//! * **fused epilogues** — a `Relu`/`Gelu` whose sole producer is a
//!   `Conv2d`/`Linear` (and which is that producer's only consumer) is
//!   folded into the producing kernel's final store, eliminating a whole
//!   read-modify-write pass over the activation;
//! * **pre-packed weights** — parameter tensors are generated once at
//!   compile time and packed contiguously
//!   ([`vit_tensor::ops::PackedConv2d`]/[`PackedLinear`]), so replay
//!   touches no weight cache.
//!
//! Replay is **bit-identical** to the interpreter at any thread count: the
//! packed kernels share the interpreter's inner loops and epilogue
//! scalars, fallback records dispatch through the same
//! [`vit_graph::eval_op`], and threading happens only via intra-kernel
//! output tiling (the `vit_tensor::par` determinism contract).
//!
//! `vit-verify`'s plan pass proves plan↔graph equivalence offline:
//! identical FLOP/param/byte totals, every node covered exactly once by a
//! record or fusion, and arena liveness soundness.
//!
//! [`PackedLinear`]: vit_tensor::ops::PackedLinear
//!
//! # Examples
//!
//! ```
//! use vit_graph::{Graph, LayerRole, Op, RunContext, WeightGen};
//! use vit_plan::ExecPlan;
//! use vit_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("tiny");
//! let x = g.input("image", &[1, 3, 8, 8])?;
//! let c = g.add(
//!     "stem",
//!     Op::Conv2d {
//!         out_channels: 4,
//!         kernel: (3, 3),
//!         stride: (1, 1),
//!         pad: (1, 1),
//!         groups: 1,
//!         bias: true,
//!     },
//!     LayerRole::Backbone,
//!     &[x],
//! )?;
//! let r = g.add("stem.act", Op::Relu, LayerRole::Backbone, &[c])?;
//! g.set_output(r);
//!
//! let plan = ExecPlan::compile(&g, WeightGen::new(0))?;
//! assert_eq!(plan.records().len(), 2); // input + fused conv∘relu
//! let out = plan.execute(
//!     &[Tensor::ones(&[1, 3, 8, 8])],
//!     &RunContext::default(),
//! )?;
//! assert_eq!(out.shape(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;

use vit_fault::{check_guard, FaultCtx, FaultError};
use vit_graph::ExecError;
use vit_graph::{eval_op, generate_node_weights, Graph, Node, Op, RunContext, WeightGen};
use vit_profiler::node_io_bytes;
use vit_tensor::ops::{Conv2dParams, Epilogue, PackedConv2d, PackedLinear};
use vit_tensor::{BufferPool, ExecCtx, ShadowAccess, ShadowViolation, Tensor, TensorError};
use vit_trace::{now_ns, EventKind, Phase, TraceSink};

/// A contiguous element range inside a plan's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufRange {
    /// First element index.
    pub offset: usize,
    /// Length in elements.
    pub len: usize,
}

impl BufRange {
    /// One past the last element index.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// Whether two ranges share any element.
    pub fn overlaps(&self, other: &BufRange) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }
}

/// How a record's kernel decomposes the write of its output range at
/// replay time — the geometry `vit-verify`'s exec-safety pass proves
/// disjoint and complete *before* any schedule runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecContract {
    /// One sequential pass over the whole output range (scalar loops,
    /// copies, fallback dispatch). Never reassociates.
    Sequential,
    /// Row tiling through [`vit_tensor::row_chunks`]: the output splits
    /// into row-aligned chunks of whole `row_len`-element rows, each
    /// written by exactly one worker with a blocking geometry that depends
    /// only on shapes (the thread-invariance contract of
    /// `vit_tensor::par`).
    RowTiled {
        /// Elements per indivisible row: one output channel-plane for
        /// convolution, one feature vector for linear.
        row_len: usize,
        /// Whether the kernel may reorder FP accumulation relative to the
        /// reference oracle (`vit_tensor::ops::reference`). True routes
        /// the record to the tolerance tier: packed GEMM-backed records
        /// declare it so the registered per-op-class ULP budget is
        /// reserved, even while the current micro-kernel keeps each
        /// element's k-chain sequential. Thread-count invariance is
        /// unaffected either way.
        reassociates: bool,
    },
    /// An explicit chunk decomposition, offsets relative to the record's
    /// output range. The declaration future SIMD/tiled kernels (and
    /// vit-verify's broken-artifact tests) use; a kernel that reorders
    /// float accumulation relative to the sequential kernel must say so
    /// via `reassociates`, which routes the record to the tolerance tier
    /// instead of the bit-identity tier.
    Explicit {
        /// Chunk ranges, offsets relative to the output range's start.
        chunks: Vec<BufRange>,
        /// Whether the decomposition reorders FP accumulation relative to
        /// sequential execution.
        reassociates: bool,
    },
}

impl ExecContract {
    /// Whether this decomposition may reorder float accumulation relative
    /// to the reference oracle. Such records claim the **tolerance tier**
    /// (`vit_tensor::ops::reference::tolerance`) instead of bit-identity
    /// against the oracle; vit-verify's V056 checks each one maps to a
    /// registered kernel class.
    pub fn reassociates(&self) -> bool {
        matches!(
            self,
            ExecContract::Explicit {
                reassociates: true,
                ..
            } | ExecContract::RowTiled {
                reassociates: true,
                ..
            }
        )
    }

    /// The absolute arena ranges written in parallel when the record's
    /// output is `out` and the pool exposes `threads` workers.
    /// [`vit_tensor::row_chunks`] is the shared oracle between this method
    /// and the kernels' dispatch, so the geometry the analyzer proves is
    /// the geometry that executes.
    pub fn chunk_ranges(&self, out: BufRange, threads: usize) -> Vec<BufRange> {
        match self {
            ExecContract::Sequential => vec![out],
            ExecContract::RowTiled { row_len, .. } => {
                vit_tensor::row_chunks(out.len, *row_len, threads.max(1))
                    .into_iter()
                    .map(|(start, len)| BufRange {
                        offset: out.offset + start,
                        len,
                    })
                    .collect()
            }
            ExecContract::Explicit { chunks, .. } => chunks
                .iter()
                .map(|c| BufRange {
                    offset: out.offset + c.offset,
                    len: c.len,
                })
                .collect(),
        }
    }
}

/// How one record computes its output range.
#[derive(Debug, Clone)]
enum Step {
    /// Copy graph input `pos` into the output range.
    Input { pos: usize },
    /// Pre-packed convolution (epilogue possibly fused).
    Conv(PackedConv2d),
    /// Pre-packed linear layer (epilogue possibly fused).
    Linear(PackedLinear),
    /// Standalone elementwise relu (not fused into a producer).
    Relu,
    /// Standalone elementwise gelu.
    Gelu,
    /// Elementwise sum of two equal-shape inputs.
    Add,
    /// Byte copy (`Op::Identity`).
    Copy,
    /// Any other op: materialize input tensors and dispatch through
    /// [`vit_graph::eval_op`] with weights generated at compile time.
    Fallback { weights: Vec<Tensor> },
}

/// One flat instruction of a compiled plan: which op to run, where its
/// inputs and output live in the arena, and the static costs it accounts
/// for (including any nodes fused into it).
#[derive(Debug, Clone)]
pub struct PlanRecord {
    /// Graph node this record executes (the *producer* for fused pairs).
    pub name: String,
    /// The producer's operator.
    pub op: Op,
    /// Arena ranges of the inputs, in graph edge order.
    pub inputs: Vec<BufRange>,
    /// Shapes of the inputs, in graph edge order.
    pub in_shapes: Vec<Vec<usize>>,
    /// Arena range of the output.
    pub out: BufRange,
    /// Shape of the output (after any fused epilogue, which preserves it).
    pub out_shape: Vec<usize>,
    /// Names of graph nodes fused into this record's epilogue.
    pub fused: Vec<String>,
    /// Analytical FLOPs (MAC convention), producer plus fused nodes.
    pub flops: u64,
    /// Learned parameters, producer plus fused nodes.
    pub params: u64,
    /// First-order DRAM traffic in bytes, producer plus fused nodes
    /// (accounted as the interpreter would, so plan totals equal graph
    /// totals even though fusion eliminates the traffic physically).
    pub bytes: u64,
    /// How the kernel decomposes the output write under parallelism.
    pub contract: ExecContract,
    /// Arena ranges the compile-time allocator reclaims *after* this
    /// record runs (its inputs whose last consumer this record is): free
    /// for reuse from the next record on. The exec-safety pass proves no
    /// later record reads them un-redefined; shadow replay kills them
    /// here.
    pub frees: Vec<BufRange>,
    step: Step,
}

impl PlanRecord {
    /// Builds a record with the given wiring and a stub execution step —
    /// the escape hatch for assembling **analysis-only** plans via
    /// [`ExecPlan::from_raw_parts`] that [`ExecPlan::compile`] could never
    /// produce (vit-verify's broken-artifact tests). The contract defaults
    /// to [`ExecContract::Sequential`] and `frees` to empty; both fields
    /// are public, so adjust them after construction. Executing such a
    /// record dispatches through the fallback path with no weights and
    /// will fail for most ops.
    pub fn from_raw_parts(
        name: &str,
        op: Op,
        inputs: Vec<BufRange>,
        in_shapes: Vec<Vec<usize>>,
        out: BufRange,
        out_shape: Vec<usize>,
    ) -> PlanRecord {
        PlanRecord {
            name: name.to_string(),
            op,
            inputs,
            in_shapes,
            out,
            out_shape,
            fused: Vec::new(),
            flops: 0,
            params: 0,
            bytes: 0,
            contract: ExecContract::Sequential,
            frees: Vec::new(),
            step: Step::Fallback {
                weights: Vec::new(),
            },
        }
    }
}

/// Why a graph could not be lowered into a plan.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlanError {
    /// The graph has no output set.
    NoOutput {
        /// Model name of the offending graph.
        model: String,
    },
    /// Packing a node's weights failed (inconsistent generated shapes).
    Pack {
        /// Node whose weights failed to pack.
        node: String,
        /// Underlying tensor error.
        source: TensorError,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoOutput { model } => {
                write!(f, "graph `{model}` has no output set")
            }
            PlanError::Pack { node, source } => {
                write!(f, "packing weights of `{node}` failed: {source}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::NoOutput { .. } => None,
            PlanError::Pack { source, .. } => Some(source),
        }
    }
}

/// Free-list allocator used at compile time to assign arena ranges.
///
/// Best-fit over coalesced free ranges, bump-extending the arena when
/// nothing fits. Exactness comes from *when* it is driven: a range is
/// freed the moment its owner's last consumer has been lowered, so two
/// ranges only coexist when their values genuinely do.
#[derive(Debug, Default)]
struct ArenaLayout {
    free: Vec<BufRange>, // sorted by offset, coalesced
    len: usize,
}

impl ArenaLayout {
    fn alloc(&mut self, len: usize) -> BufRange {
        // Zero-size values (degenerate shapes) get a canonical empty
        // range instead of splitting a free block at an arbitrary offset
        // — best-fit would otherwise hand out a zero-length slice of
        // whichever free block happens to be smallest, making layouts
        // depend on free-list history for ranges that hold nothing.
        if len == 0 {
            return BufRange { offset: 0, len: 0 };
        }
        // Best fit: smallest free range that holds `len`.
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, r)| r.len >= len)
            .min_by_key(|(_, r)| r.len)
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let r = self.free[i];
                if r.len == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = BufRange {
                        offset: r.offset + len,
                        len: r.len - len,
                    };
                }
                BufRange {
                    offset: r.offset,
                    len,
                }
            }
            None => {
                let r = BufRange {
                    offset: self.len,
                    len,
                };
                self.len += len;
                r
            }
        }
    }

    fn free(&mut self, r: BufRange) {
        if r.len == 0 {
            return;
        }
        let i = self.free.partition_point(|f| f.offset < r.offset);
        self.free.insert(i, r);
        // Coalesce with the right, then the left, neighbor.
        if i + 1 < self.free.len() && self.free[i].end() == self.free[i + 1].offset {
            self.free[i].len += self.free[i + 1].len;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].end() == self.free[i].offset {
            self.free[i - 1].len += self.free[i].len;
            self.free.remove(i);
        }
    }
}

/// A graph lowered into a flat, replayable instruction stream.
///
/// Compile once with [`ExecPlan::compile`]; replay any number of times
/// (including concurrently — each [`ExecPlan::execute`] takes a private
/// arena from an internal pool) with outputs bit-identical to the
/// interpreter's.
#[derive(Debug)]
pub struct ExecPlan {
    model: String,
    records: Vec<PlanRecord>,
    arena_len: usize,
    input_shapes: Vec<Vec<usize>>,
    output: BufRange,
    output_shape: Vec<usize>,
    graph_nodes: usize,
    total_flops: u64,
    total_params: u64,
    total_bytes: u64,
    /// Recycled arenas from finished runs (never re-zeroed: every record
    /// fully overwrites its output range before any consumer reads it).
    arena_pool: Mutex<Vec<Vec<f32>>>,
    /// Allocation free-list for fallback records' intermediate tensors.
    scratch: BufferPool,
}

impl ExecPlan {
    /// Lowers `graph` into a plan, generating and packing weights from
    /// `gen`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoOutput`] when the graph has no output set.
    pub fn compile(graph: &Graph, gen: WeightGen) -> Result<ExecPlan, PlanError> {
        let output_id = graph.output().ok_or_else(|| PlanError::NoOutput {
            model: graph.model.clone(),
        })?;
        let n = graph.len();

        // Fusion pre-pass: `fused_into[a] = Some(p)` when activation `a`
        // folds into producer `p`'s epilogue. Legality: `a` is a unary
        // Relu/Gelu, its producer is a Conv2d/Linear, and `a` is that
        // producer's *only* consumer (`consumer_counts` adds one for the
        // graph output, so an output node can never be fused away).
        let counts = graph.consumer_counts();
        let mut fused_into: Vec<Option<usize>> = vec![None; n];
        for (id, node) in graph.iter() {
            if !matches!(node.op, Op::Relu | Op::Gelu) || node.inputs.len() != 1 {
                continue;
            }
            let p = node.inputs[0].index();
            let producer = graph.node(node.inputs[0]);
            if matches!(producer.op, Op::Conv2d { .. } | Op::Linear { .. }) && counts[p] == 1 {
                fused_into[id.index()] = Some(p);
            }
        }
        let mut fused_children: Vec<Option<usize>> = vec![None; n];
        for (a, p) in fused_into.iter().enumerate() {
            if let Some(p) = p {
                fused_children[*p] = Some(a);
            }
        }

        // Lowering + liveness in one topological walk. A node's range is
        // allocated *before* its inputs' refcounts drop, so an output can
        // never alias a live input (kernels read inputs while storing
        // outputs). For a fused pair the activation owns the range's
        // lifetime: the internal producer→activation edge decrements
        // nothing, and the activation's consumers govern the free.
        let mut refcount = counts;
        let mut layout = ArenaLayout::default();
        let mut range_of: Vec<Option<BufRange>> = vec![None; n];
        let mut records = Vec::new();
        let mut input_pos = 0usize;
        let mut input_shapes = Vec::new();
        for (id, node) in graph.iter() {
            let i = id.index();
            if let Some(p) = fused_into[i] {
                // Fused activation: alias the producer's (already
                // emitted) record output; its costs were folded there.
                range_of[i] = range_of[p];
                continue;
            }
            let numel: usize = node.shape.iter().product();
            let out = layout.alloc(numel);
            range_of[i] = Some(out);
            let inputs: Vec<BufRange> = node
                .inputs
                .iter()
                .map(|j| range_of[j.index()].expect("topological order"))
                .collect();
            let in_shapes: Vec<Vec<usize>> = node
                .inputs
                .iter()
                .map(|j| graph.node(*j).shape.clone())
                .collect();
            let fused_child =
                fused_children[i].map(|a| graph.node(vit_graph::NodeId::from_index(a)));
            let epilogue = match fused_child.map(|c| &c.op) {
                Some(Op::Relu) => Epilogue::Relu,
                Some(Op::Gelu) => Epilogue::Gelu,
                _ => Epilogue::None,
            };
            let step = match &node.op {
                Op::Input { .. } => {
                    input_shapes.push(node.shape.clone());
                    input_pos += 1;
                    Step::Input { pos: input_pos - 1 }
                }
                op => Self::lower_step(node, op, &in_shapes, epilogue, gen)?,
            };
            // The write-decomposition contract mirrors the kernels: packed
            // conv tiles by output channel-plane, packed linear by feature
            // vector; everything else on the replay path writes its range
            // in one sequential pass. GEMM-backed steps declare FP
            // reassociation (tolerance tier): packed linear always, conv
            // only on its im2col path — the direct single-input-channel
            // path is bit-identical to the reference oracle.
            let contract = match &step {
                Step::Conv(pc) => ExecContract::RowTiled {
                    row_len: node.shape.iter().skip(2).product(),
                    reassociates: pc.reassociates(),
                },
                Step::Linear(_) => ExecContract::RowTiled {
                    row_len: node.shape.last().copied().unwrap_or(0),
                    reassociates: true,
                },
                _ => ExecContract::Sequential,
            };
            let mut flops = node.flops(graph);
            let mut params = node.params(graph);
            let mut bytes = node_io_bytes(graph, node);
            let mut fused = Vec::new();
            if let Some(c) = fused_child {
                flops += c.flops(graph);
                params += c.params(graph);
                bytes += node_io_bytes(graph, c);
                fused.push(c.name.clone());
            }
            records.push(PlanRecord {
                name: node.name.clone(),
                op: node.op.clone(),
                inputs,
                in_shapes,
                out,
                out_shape: node.shape.clone(),
                fused,
                flops,
                params,
                bytes,
                contract,
                frees: Vec::new(),
                step,
            });
            // Retire inputs whose last consumer was just lowered. The
            // graph output holds an extra reference, so its range (and
            // transitively the plan output) is never recycled. Each freed
            // range is recorded on the retiring record so the liveness
            // decision survives into the plan for offline audit.
            let mut freed = Vec::new();
            for j in &node.inputs {
                let jj = j.index();
                refcount[jj] -= 1;
                if refcount[jj] == 0 {
                    let r = range_of[jj].expect("allocated");
                    layout.free(r);
                    freed.push(r);
                }
            }
            records.last_mut().expect("just pushed").frees = freed;
        }

        let output = range_of[output_id.index()].expect("output lowered");
        let output_shape = graph.node(output_id).shape.clone();
        Ok(ExecPlan {
            model: graph.model.clone(),
            total_flops: records.iter().map(|r| r.flops).sum(),
            total_params: records.iter().map(|r| r.params).sum(),
            total_bytes: records.iter().map(|r| r.bytes).sum(),
            records,
            arena_len: layout.len,
            input_shapes,
            output,
            output_shape,
            graph_nodes: n,
            arena_pool: Mutex::new(Vec::new()),
            scratch: BufferPool::default(),
        })
    }

    /// Builds the step for one non-`Input` node, packing weights for the
    /// kernels that support it.
    fn lower_step(
        node: &Node,
        op: &Op,
        in_shapes: &[Vec<usize>],
        epilogue: Epilogue,
        gen: WeightGen,
    ) -> Result<Step, PlanError> {
        let shape_refs: Vec<&[usize]> = in_shapes.iter().map(Vec::as_slice).collect();
        let perr = |source: TensorError| PlanError::Pack {
            node: node.name.clone(),
            source,
        };
        Ok(match op {
            Op::Conv2d {
                stride,
                pad,
                groups,
                bias,
                ..
            } => {
                let w = generate_node_weights(gen, &node.name, op, &shape_refs);
                let p = Conv2dParams {
                    stride_h: stride.0,
                    stride_w: stride.1,
                    pad_h: pad.0,
                    pad_w: pad.1,
                    groups: *groups,
                };
                let b = bias.then(|| &w[1]);
                Step::Conv(PackedConv2d::pack(&w[0], b, p, epilogue).map_err(perr)?)
            }
            Op::Linear { bias, .. } => {
                let w = generate_node_weights(gen, &node.name, op, &shape_refs);
                let b = bias.then(|| &w[1]);
                Step::Linear(PackedLinear::pack(&w[0], b, epilogue).map_err(perr)?)
            }
            Op::Relu => Step::Relu,
            Op::Gelu => Step::Gelu,
            Op::Add => Step::Add,
            Op::Identity => Step::Copy,
            _ => Step::Fallback {
                weights: generate_node_weights(gen, &node.name, op, &shape_refs),
            },
        })
    }

    /// Replays the plan on `inputs` (one tensor per graph input, in
    /// declaration order).
    ///
    /// Threading follows `ctx.exec` via intra-kernel output tiling only —
    /// record order is always sequential — so outputs are bit-identical to
    /// the interpreter's at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph
    /// the plan was compiled from, or when a fallback kernel fails.
    pub fn execute(&self, inputs: &[Tensor], ctx: &RunContext) -> Result<Tensor, ExecError> {
        if inputs.len() != self.input_shapes.len() {
            return Err(ExecError::BadInputs {
                msg: format!(
                    "plan `{}` has {} inputs, got {}",
                    self.model,
                    self.input_shapes.len(),
                    inputs.len()
                ),
            });
        }
        for (t, expect) in inputs.iter().zip(&self.input_shapes) {
            if t.shape() != expect.as_slice() {
                return Err(ExecError::BadInputs {
                    msg: format!(
                        "plan `{}` expects input shape {:?}, got {:?}",
                        self.model,
                        expect,
                        t.shape()
                    ),
                });
            }
        }
        let sink = ctx.sink.as_ref();
        let enabled = sink.enabled();
        let replay_start = sink.timestamp();
        let mut arena = self.take_arena();
        let pool = ctx.exec.active_pool();
        let result = self.replay(
            &mut arena,
            inputs,
            pool,
            enabled.then_some(sink),
            &ctx.fault,
        );
        if enabled {
            sink.record(EventKind::Phase {
                phase: Phase::PlanReplay,
                detail: self.model.clone(),
                start_ns: replay_start,
                end_ns: now_ns(),
            });
        }
        let out = result.map(|()| {
            Tensor::from_vec(
                arena[self.output.offset..self.output.end()].to_vec(),
                &self.output_shape,
            )
            .expect("output range sized by shape")
        });
        self.arena_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(arena);
        out
    }

    /// Runs every record against `arena`.
    fn replay(
        &self,
        arena: &mut [f32],
        inputs: &[Tensor],
        pool: Option<&vit_tensor::ThreadPool>,
        sink: Option<&dyn TraceSink>,
        fault: &FaultCtx,
    ) -> Result<(), ExecError> {
        // Records replay in a fixed order, so addressing the injected
        // bit-flip by record index is deterministic per (seed, run, attempt).
        let flip_at = fault.flip_node(self.records.len());
        let node_guard = fault.node_guard();
        for (rec_idx, rec) in self.records.iter().enumerate() {
            let start_ns = sink.map_or(0, TraceSink::timestamp);
            // The output range is disjoint from every live range, so each
            // input lies entirely left or entirely right of it; two splits
            // give simultaneous shared input / exclusive output borrows
            // without `unsafe`.
            let (left, rest) = arena.split_at_mut(rec.out.offset);
            let (out, right) = rest.split_at_mut(rec.out.len);
            let right_base = rec.out.end();
            let input = |r: &BufRange| -> &[f32] {
                if r.end() <= rec.out.offset {
                    &left[r.offset..r.end()]
                } else {
                    &right[r.offset - right_base..r.end() - right_base]
                }
            };
            let kctx = ExecCtx {
                pool,
                bufs: Some(&self.scratch),
                sink: None,
                reference: false,
            };
            match &rec.step {
                Step::Input { pos } => out.copy_from_slice(inputs[*pos].data()),
                Step::Conv(conv) => {
                    conv.run(input(&rec.inputs[0]), &rec.in_shapes[0], out, &kctx);
                }
                Step::Linear(lin) => lin.run(input(&rec.inputs[0]), out, &kctx),
                Step::Relu => {
                    for (o, x) in out.iter_mut().zip(input(&rec.inputs[0])) {
                        *o = Epilogue::Relu.apply(*x);
                    }
                }
                Step::Gelu => {
                    for (o, x) in out.iter_mut().zip(input(&rec.inputs[0])) {
                        *o = Epilogue::Gelu.apply(*x);
                    }
                }
                Step::Add => {
                    let (a, b) = (input(&rec.inputs[0]), input(&rec.inputs[1]));
                    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
                        *o = x + y;
                    }
                }
                Step::Copy => out.copy_from_slice(input(&rec.inputs[0])),
                Step::Fallback { weights } => {
                    let ins: Vec<Tensor> = rec
                        .inputs
                        .iter()
                        .zip(&rec.in_shapes)
                        .map(|(r, s)| {
                            Tensor::from_vec(input(r).to_vec(), s).expect("range sized by shape")
                        })
                        .collect();
                    let refs: Vec<&Tensor> = ins.iter().collect();
                    let t = eval_op(&rec.name, &rec.op, weights, &refs, &kctx)?;
                    out.copy_from_slice(t.data());
                    for v in ins {
                        self.scratch.recycle(v.into_vec());
                    }
                    self.scratch.recycle(t.into_vec());
                }
            }
            if flip_at == Some(rec_idx) {
                fault.corrupt(out);
            }
            if let Some(g) = node_guard {
                if let Err(trip) = check_guard(out, g) {
                    return Err(ExecError::Fault {
                        node: rec.name.clone(),
                        source: FaultError::GuardTripped {
                            site: rec.name.clone(),
                            trip,
                        },
                    });
                }
            }
            if let Some(sink) = sink {
                sink.record(EventKind::Node {
                    name: rec.name.clone(),
                    op: rec.op.kind_name().to_string(),
                    start_ns,
                    end_ns: now_ns(),
                    flops: rec.flops,
                    bytes: rec.bytes,
                });
            }
        }
        Ok(())
    }

    /// A run-private arena: recycled from a finished run when available.
    /// Recycled arenas are *not* re-zeroed — every record fully overwrites
    /// its output range before any consumer reads it, so no run can
    /// observe a previous run's values.
    fn take_arena(&self) -> Vec<f32> {
        let recycled = self
            .arena_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        match recycled {
            Some(v) => v,
            None => vec![0.0; self.arena_len],
        }
    }

    /// Model name of the graph this plan was compiled from.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The flat record stream, in replay order.
    pub fn records(&self) -> &[PlanRecord] {
        &self.records
    }

    /// Arena size in `f32` elements.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Number of nodes in the source graph (records + fused nodes).
    pub fn graph_nodes(&self) -> usize {
        self.graph_nodes
    }

    /// Arena range holding the plan output after a replay.
    pub fn output_range(&self) -> BufRange {
        self.output
    }

    /// Shape of the plan output.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Shapes of the graph inputs, in declaration order.
    pub fn input_shapes(&self) -> &[Vec<usize>] {
        &self.input_shapes
    }

    /// Total analytical FLOPs across all records (equals the source
    /// graph's total; `vit-verify`'s plan pass enforces this).
    pub fn total_flops(&self) -> u64 {
        self.total_flops
    }

    /// Total parameters across all records.
    pub fn total_params(&self) -> u64 {
        self.total_params
    }

    /// Total accounted DRAM bytes across all records.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of graph nodes fused into producer epilogues.
    pub fn fused_nodes(&self) -> usize {
        self.records.iter().map(|r| r.fused.len()).sum()
    }

    /// Assembles a plan directly from records, **without compiling a
    /// graph** — the escape hatch vit-verify's broken-artifact tests use
    /// to build plans that [`ExecPlan::compile`]'s sound construction
    /// could never emit (overlapping chunks, premature frees, bad
    /// wiring). Totals and input shapes are derived from the records.
    /// Such plans are for analysis and [`ExecPlan::shadow_replay`], not
    /// execution: records built via [`PlanRecord::from_raw_parts`] carry
    /// stub steps.
    pub fn from_raw_parts(
        model: &str,
        records: Vec<PlanRecord>,
        arena_len: usize,
        output: BufRange,
        output_shape: Vec<usize>,
    ) -> ExecPlan {
        let input_shapes = records
            .iter()
            .filter(|r| matches!(r.op, Op::Input { .. }))
            .map(|r| r.out_shape.clone())
            .collect();
        ExecPlan {
            model: model.to_string(),
            total_flops: records.iter().map(|r| r.flops).sum(),
            total_params: records.iter().map(|r| r.params).sum(),
            total_bytes: records.iter().map(|r| r.bytes).sum(),
            graph_nodes: records.len() + records.iter().map(|r| r.fused.len()).sum::<usize>(),
            records,
            arena_len,
            input_shapes,
            output,
            output_shape,
            arena_pool: Mutex::new(Vec::new()),
            scratch: BufferPool::default(),
        }
    }

    /// Symbolically replays the record stream against a per-element
    /// [`ShadowAccess`] tracker at the given worker count, returning every
    /// memory-discipline violation observed: overlapping parallel chunks
    /// (double writes), coverage gaps and stale reads (unwritten/freed
    /// elements), wiring breaches (wrong owner), and premature range
    /// re-issue (write over a live range).
    ///
    /// This is the dynamic witness for vit-verify's static exec-safety
    /// verdict: the chunk geometry comes from each record's
    /// [`ExecContract`] through the same [`vit_tensor::row_chunks`] oracle
    /// the kernels dispatch with, and the kill points come from the
    /// compile-time liveness decisions in [`PlanRecord::frees`]. A sound
    /// plan yields an empty list at every `threads`; the differential
    /// suites hold that agreement at threads {1, 2, 8}.
    ///
    /// Debug tooling — allocation-heavy (one word per arena element) and
    /// never on the serving path.
    pub fn shadow_replay(&self, threads: usize) -> Vec<ShadowViolation> {
        let mut shadow = ShadowAccess::new(self.arena_len);
        // Live producer map: which record's output currently occupies a
        // range. Reads resolve their expected owner tag through it; a read
        // with no containing live producer expects an impossible tag and
        // so always surfaces as a violation.
        let mut live: Vec<(BufRange, u32)> = Vec::new();
        const NO_PRODUCER: u32 = u32::MAX - 1;
        for (r, rec) in self.records.iter().enumerate() {
            let tag = r as u32;
            for inp in &rec.inputs {
                let expect = live
                    .iter()
                    .rev()
                    .find(|(range, _)| range.offset <= inp.offset && inp.end() <= range.end())
                    .map_or(NO_PRODUCER, |&(_, t)| t);
                shadow.expect(inp.offset, inp.len, expect);
            }
            for c in rec.contract.chunk_ranges(rec.out, threads) {
                shadow.define(c.offset, c.len, tag);
            }
            live.retain(|(range, _)| !range.overlaps(&rec.out));
            live.push((rec.out, tag));
            for f in &rec.frees {
                shadow.kill(f.offset, f.len);
                live.retain(|(range, _)| !range.overlaps(f));
            }
        }
        shadow.into_violations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_graph::{Executor, Graph, LayerRole};

    fn conv_op(out_channels: usize, kernel: usize, bias: bool) -> Op {
        Op::Conv2d {
            out_channels,
            kernel: (kernel, kernel),
            stride: (1, 1),
            pad: (kernel / 2, kernel / 2),
            groups: 1,
            bias,
        }
    }

    /// conv → relu → conv → gelu → add(residual) with a branchy consumer.
    fn sample_graph() -> Graph {
        let mut g = Graph::new("plan-test");
        let x = g.input("image", &[1, 3, 8, 8]).unwrap();
        let c0 = g
            .add("c0", conv_op(4, 3, true), LayerRole::Backbone, &[x])
            .unwrap();
        let r0 = g
            .add("c0.act", Op::Relu, LayerRole::Backbone, &[c0])
            .unwrap();
        let c1 = g
            .add("c1", conv_op(4, 3, true), LayerRole::Other, &[r0])
            .unwrap();
        let g1 = g.add("c1.act", Op::Gelu, LayerRole::Other, &[c1]).unwrap();
        let add = g.add("res", Op::Add, LayerRole::Other, &[r0, g1]).unwrap();
        g.set_output(add);
        g
    }

    #[test]
    fn fuses_sole_consumer_activations_only() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        // input, c0+relu (fused), c1+gelu (fused), add.
        assert_eq!(plan.records().len(), 4);
        assert_eq!(plan.fused_nodes(), 2);
        let c0 = &plan.records()[1];
        assert_eq!(c0.fused, vec!["c0.act".to_string()]);

        // Make the relu's producer multi-consumer: fusion must not fire.
        let mut g2 = Graph::new("plan-test-2");
        let x = g2.input("image", &[1, 3, 8, 8]).unwrap();
        let c0 = g2
            .add("c0", conv_op(4, 3, true), LayerRole::Backbone, &[x])
            .unwrap();
        let r0 = g2
            .add("c0.act", Op::Relu, LayerRole::Backbone, &[c0])
            .unwrap();
        let add = g2
            .add("res", Op::Add, LayerRole::Backbone, &[c0, r0])
            .unwrap();
        g2.set_output(add);
        let plan2 = ExecPlan::compile(&g2, WeightGen::new(0)).unwrap();
        assert_eq!(plan2.fused_nodes(), 0);
        assert_eq!(plan2.records().len(), 4);
    }

    #[test]
    fn output_producer_activation_is_not_fused() {
        let mut g = Graph::new("plan-out");
        let x = g.input("image", &[1, 3, 4, 4]).unwrap();
        let c = g
            .add("c", conv_op(2, 1, false), LayerRole::Backbone, &[x])
            .unwrap();
        // The conv itself is the output: its relu consumer must not fold
        // the conv's range away from the output.
        g.set_output(c);
        let _r = g.add("act", Op::Relu, LayerRole::Backbone, &[c]).unwrap();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        assert_eq!(plan.fused_nodes(), 0);
    }

    #[test]
    fn plan_matches_interpreter_bitwise() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        let input = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 42);
        let expect = Executor::new(0)
            .run(&g, std::slice::from_ref(&input))
            .unwrap();
        let got = plan.execute(&[input], &RunContext::default()).unwrap();
        assert_eq!(got.shape(), expect.shape());
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn repeated_runs_reuse_arena_and_stay_identical() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        let a = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 1);
        let b = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 2);
        let ra1 = plan
            .execute(std::slice::from_ref(&a), &RunContext::default())
            .unwrap();
        // Interleave a different input so the recycled (dirty) arena would
        // surface any stale-read bug.
        let _rb = plan.execute(&[b], &RunContext::default()).unwrap();
        let ra2 = plan.execute(&[a], &RunContext::default()).unwrap();
        assert_eq!(ra1.data(), ra2.data());
    }

    #[test]
    fn live_ranges_never_overlap() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        // Last record index reading each record's output range.
        let recs = plan.records();
        for (i, a) in recs.iter().enumerate() {
            let a_last = last_reader(recs, i, plan.output_range());
            for (j, b) in recs.iter().enumerate().skip(i + 1) {
                let b_last = last_reader(recs, j, plan.output_range());
                // Intervals [i, a_last] and [j, b_last] with j > i.
                if j <= a_last && i <= b_last && a.out.overlaps(&b.out) {
                    panic!(
                        "records `{}` and `{}` live-overlap in the arena",
                        a.name, b.name
                    );
                }
            }
        }
    }

    fn last_reader(recs: &[PlanRecord], idx: usize, output: BufRange) -> usize {
        if recs[idx].out == output {
            return recs.len();
        }
        recs.iter()
            .enumerate()
            .filter(|(_, r)| r.inputs.iter().any(|i| *i == recs[idx].out))
            .map(|(k, _)| k)
            .max()
            .unwrap_or(idx)
    }

    #[test]
    fn rejects_wrong_inputs() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        assert!(plan.execute(&[], &RunContext::default()).is_err());
        let bad = Tensor::ones(&[1, 3, 4, 4]);
        assert!(plan.execute(&[bad], &RunContext::default()).is_err());
    }

    #[test]
    fn no_output_graph_is_rejected() {
        let mut g = Graph::new("no-out");
        g.input("image", &[1, 3, 4, 4]).unwrap();
        assert!(matches!(
            ExecPlan::compile(&g, WeightGen::new(0)),
            Err(PlanError::NoOutput { .. })
        ));
    }

    #[test]
    fn arena_free_coalesces_in_any_order() {
        // Three adjacent blocks freed in every permutation must always
        // collapse into one range covering the whole arena — the
        // merge-order edge case: the middle block must bridge both
        // neighbors when it lands last (right-merge then left-merge).
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for order in orders {
            let mut l = ArenaLayout::default();
            let blocks = [l.alloc(10), l.alloc(20), l.alloc(30)];
            for i in order {
                l.free(blocks[i]);
            }
            assert_eq!(
                l.free,
                vec![BufRange { offset: 0, len: 60 }],
                "freeing order {order:?} failed to coalesce"
            );
            // And the coalesced range satisfies a full-size request
            // without bump-growing the arena.
            assert_eq!(l.alloc(60), BufRange { offset: 0, len: 60 });
            assert_eq!(l.len, 60);
        }
    }

    #[test]
    fn arena_zero_size_ranges_never_perturb_layout() {
        let mut l = ArenaLayout::default();
        let a = l.alloc(8);
        l.free(a);
        // A zero-size request must not split the free block or grow the
        // arena, and must be canonical regardless of free-list state.
        assert_eq!(l.alloc(0), BufRange { offset: 0, len: 0 });
        assert_eq!(l.free, vec![a]);
        assert_eq!(l.len, 8);
        // Freeing a zero-size range is a no-op: nothing enters the free
        // list, so no zero-width entry can block coalescing later.
        l.free(BufRange { offset: 3, len: 0 });
        assert_eq!(l.free, vec![a]);
    }

    #[test]
    fn contracts_match_kernel_tiling_and_shadow_replay_is_clean() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        for rec in plan.records() {
            match &rec.op {
                Op::Conv2d { .. } => {
                    let plane: usize = rec.out_shape.iter().skip(2).product();
                    // Multi-input-channel convs run the im2col GEMM path,
                    // which declares FP reassociation (tolerance tier).
                    assert_eq!(
                        rec.contract,
                        ExecContract::RowTiled {
                            row_len: plane,
                            reassociates: true
                        },
                        "conv `{}`",
                        rec.name
                    );
                    assert!(rec.contract.reassociates());
                    // Chunks partition the output range exactly.
                    for threads in [1, 2, 8] {
                        let chunks = rec.contract.chunk_ranges(rec.out, threads);
                        let total: usize = chunks.iter().map(|c| c.len).sum();
                        assert_eq!(total, rec.out.len);
                        for w in chunks.windows(2) {
                            assert_eq!(w[0].end(), w[1].offset);
                            assert_eq!(w[0].offset % plane, rec.out.offset % plane);
                        }
                    }
                }
                _ => {
                    assert_eq!(rec.contract, ExecContract::Sequential);
                    assert!(!rec.contract.reassociates());
                }
            }
        }
        // Every compiled plan is shadow-clean at every sampled width.
        for threads in [1, 2, 8] {
            let v = plan.shadow_replay(threads);
            assert!(v.is_empty(), "threads={threads}: {v:?}");
        }
    }

    #[test]
    fn frees_record_exact_liveness_points() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        let recs = plan.records();
        // Every freed range was some earlier record's output, freed at
        // that output's last reader, and the plan output is never freed.
        for (i, rec) in recs.iter().enumerate() {
            for f in &rec.frees {
                assert!(!f.overlaps(&plan.output_range()), "output freed");
                let producer = recs[..i].iter().position(|p| p.out == *f);
                let p = producer.expect("freed range has a producer record");
                let last_reader = recs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.inputs.iter().any(|r2| *r2 == recs[p].out))
                    .map(|(k, _)| k)
                    .max()
                    .unwrap_or(p);
                assert_eq!(i, last_reader, "range freed away from last reader");
            }
        }
        // At least one free actually happens in this graph.
        assert!(recs.iter().any(|r| !r.frees.is_empty()));
    }

    #[test]
    fn shadow_replay_catches_seeded_overlap() {
        // A hand-built plan whose second record's explicit chunks overlap:
        // shadow replay must report double writes.
        let r0 = PlanRecord::from_raw_parts(
            "in",
            Op::Input { shape: vec![8] },
            vec![],
            vec![],
            BufRange { offset: 0, len: 8 },
            vec![8],
        );
        let mut r1 = PlanRecord::from_raw_parts(
            "bad",
            Op::Relu,
            vec![BufRange { offset: 0, len: 8 }],
            vec![vec![8]],
            BufRange { offset: 8, len: 8 },
            vec![8],
        );
        r1.contract = ExecContract::Explicit {
            chunks: vec![
                BufRange { offset: 0, len: 6 },
                BufRange { offset: 4, len: 4 },
            ],
            reassociates: false,
        };
        let plan = ExecPlan::from_raw_parts(
            "seeded",
            vec![r0, r1],
            16,
            BufRange { offset: 8, len: 8 },
            vec![8],
        );
        let v = plan.shadow_replay(2);
        assert!(!v.is_empty());
        assert!(v
            .iter()
            .all(|v| v.kind == vit_tensor::ShadowViolationKind::DoubleWrite));
    }

    #[test]
    fn arena_layout_reuses_freed_ranges_best_fit() {
        let mut l = ArenaLayout::default();
        let a = l.alloc(100);
        let b = l.alloc(50);
        let c = l.alloc(10);
        l.free(b);
        // Best fit: a 40-element request takes the 50-range, not a bump.
        let d = l.alloc(40);
        assert_eq!(d.offset, b.offset);
        assert_eq!(l.len, 160);
        // Coalescing: freeing the remaining owners merges everything
        // (including the 10-element remainder of `b`) into one range.
        l.free(a);
        l.free(d);
        l.free(c);
        let e = l.alloc(160);
        assert_eq!(e.offset, 0);
        assert_eq!(l.len, 160);
    }
}
