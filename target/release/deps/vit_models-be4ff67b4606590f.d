/root/repo/target/release/deps/vit_models-be4ff67b4606590f.d: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

/root/repo/target/release/deps/vit_models-be4ff67b4606590f: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/detr.rs:
crates/models/src/error.rs:
crates/models/src/resnet.rs:
crates/models/src/segformer.rs:
crates/models/src/swin.rs:
crates/models/src/vit.rs:
