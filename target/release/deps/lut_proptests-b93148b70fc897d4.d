/root/repo/target/release/deps/lut_proptests-b93148b70fc897d4.d: crates/core/tests/lut_proptests.rs

/root/repo/target/release/deps/lut_proptests-b93148b70fc897d4: crates/core/tests/lut_proptests.rs

crates/core/tests/lut_proptests.rs:
