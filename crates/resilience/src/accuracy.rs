//! The anchored accuracy-resilience model.
//!
//! Evaluating the true mIoU of a pruned *pretrained* model requires the
//! pretrained weights and the validation datasets, which this environment
//! does not have. This module substitutes a two-part model, per the
//! reproduction's substitution policy (`DESIGN.md`):
//!
//! 1. a **parametric base**: accuracy drop = channel term
//!    `alpha * (1 - kept_fraction)^q` (concave — early channel cuts are
//!    nearly free, deep cuts hurt) plus per-stage depth terms
//!    `beta_i * skipped_fraction_i`;
//! 2. an **anchor correction**: the residual between the parametric base
//!    and every configuration the paper *publishes* (Tables II/III, the
//!    Figure 7 channel labels) is interpolated with inverse-distance
//!    weighting, so the model reproduces each published number exactly and
//!    interpolates smoothly in between.
//!
//! For a *measured* (not anchored) resilience signal, see
//! [`crate::fidelity`], which runs the real pruned graphs.

use crate::config::{
    fig7_swin_tiny, table2_ade, table2_cityscapes, table3_swin_base, PaperPoint, Workload,
};
use vit_models::{SegFormerDynamic, SegFormerVariant, SwinDynamic, SwinVariant};

/// Configuration features used by the model: per-stage skipped fraction,
/// fuse-channel cut fraction, and prediction-channel cut fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigFeatures {
    /// `skipped_blocks / trained_blocks` per encoder stage.
    pub skipped: [f64; 4],
    /// `1 - kept_fuse_channels / full_fuse_channels`.
    pub fuse_cut: f64,
    /// `1 - kept_pred_channels / full_pred_channels` (SegFormer only).
    pub pred_cut: f64,
}

impl ConfigFeatures {
    /// Features of a SegFormer dynamic configuration.
    pub fn from_segformer(d: &SegFormerDynamic, variant: &SegFormerVariant) -> Self {
        let mut skipped = [0.0; 4];
        for (s, (&dep, &full)) in skipped
            .iter_mut()
            .zip(d.depths.iter().zip(variant.depths.iter()))
        {
            *s = 1.0 - dep as f64 / full as f64;
        }
        ConfigFeatures {
            skipped,
            fuse_cut: 1.0 - d.fuse_in_channels as f64 / variant.full_fuse_in() as f64,
            pred_cut: 1.0 - d.fuse_out_channels as f64 / variant.decoder_dim as f64,
        }
    }

    /// Features of a Swin dynamic configuration.
    pub fn from_swin(d: &SwinDynamic, variant: &SwinVariant) -> Self {
        let mut skipped = [0.0; 4];
        for (s, (&dep, &full)) in skipped
            .iter_mut()
            .zip(d.depths.iter().zip(variant.depths.iter()))
        {
            *s = 1.0 - dep as f64 / full as f64;
        }
        ConfigFeatures {
            skipped,
            fuse_cut: 1.0 - d.bottleneck_in_channels as f64 / variant.full_bottleneck_in() as f64,
            pred_cut: 0.0,
        }
    }

    fn distance(&self, other: &ConfigFeatures) -> f64 {
        let mut d =
            (self.fuse_cut - other.fuse_cut).powi(2) + (self.pred_cut - other.pred_cut).powi(2);
        for i in 0..4 {
            d += (self.skipped[i] - other.skipped[i]).powi(2);
        }
        d.sqrt()
    }
}

struct Params {
    channel_alpha: f64,
    channel_q: f64,
    pred_alpha: f64,
    pred_q: f64,
    stage_beta: [f64; 4],
    /// Absolute mIoU of the full model on the workload's dataset.
    base_miou: f64,
}

fn params_for(workload: Workload) -> Params {
    match workload {
        Workload::SegFormerAde => Params {
            channel_alpha: 0.142,
            channel_q: 2.0,
            pred_alpha: 0.25,
            pred_q: 2.0,
            stage_beta: [0.031, 0.111, 0.47, 0.225],
            base_miou: 0.4651,
        },
        // Cityscapes weights are more redundant (trained at 4x the pixels,
        // 1.74x the mIoU), so every sensitivity is lower (§III-A).
        Workload::SegFormerCityscapes => Params {
            channel_alpha: 0.55,
            channel_q: 4.0,
            pred_alpha: 0.15,
            pred_q: 2.5,
            stage_beta: [0.05, 0.05, 0.10, 0.08],
            base_miou: 0.8098,
        },
        // Swin-Tiny: shallow encoder, very sensitive to block skips
        // (§III-B: "skipping even a few encoder layers leads to a higher
        // relative drop").
        Workload::SwinTinyAde => Params {
            channel_alpha: 0.60,
            channel_q: 1.2,
            pred_alpha: 0.3,
            pred_q: 2.0,
            stage_beta: [0.55, 0.55, 0.65, 0.55],
            base_miou: 0.4451,
        },
        // Swin-Base: deep stage 2 tolerates skips better.
        Workload::SwinBaseAde => Params {
            channel_alpha: 0.50,
            channel_q: 1.5,
            pred_alpha: 0.3,
            pred_q: 2.0,
            stage_beta: [0.45, 0.45, 0.70, 0.45],
            base_miou: 0.4813,
        },
    }
}

fn anchors_for(workload: Workload) -> Vec<PaperPoint> {
    match workload {
        Workload::SegFormerAde => table2_ade(),
        Workload::SegFormerCityscapes => table2_cityscapes(),
        Workload::SwinTinyAde => fig7_swin_tiny(),
        Workload::SwinBaseAde => table3_swin_base(),
    }
}

fn anchor_features(workload: Workload, p: &PaperPoint) -> ConfigFeatures {
    match workload {
        Workload::SegFormerAde | Workload::SegFormerCityscapes => {
            let v = SegFormerVariant::b2();
            ConfigFeatures::from_segformer(&p.to_segformer_dynamic(&v), &v)
        }
        Workload::SwinTinyAde => {
            let v = SwinVariant::tiny();
            ConfigFeatures::from_swin(&p.to_swin_dynamic(&v), &v)
        }
        Workload::SwinBaseAde => {
            let v = SwinVariant::base();
            ConfigFeatures::from_swin(&p.to_swin_dynamic(&v), &v)
        }
    }
}

/// The anchored accuracy model for one workload.
///
/// # Examples
///
/// ```
/// use vit_resilience::{AccuracyModel, Workload};
/// use vit_models::{SegFormerDynamic, SegFormerVariant};
///
/// let model = AccuracyModel::for_workload(Workload::SegFormerAde);
/// let v = SegFormerVariant::b2();
/// let full = model.norm_miou_segformer(&SegFormerDynamic::full(&v), &v);
/// assert!((full - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct AccuracyModel {
    workload: Workload,
    anchor_feats: Vec<ConfigFeatures>,
    anchor_residuals: Vec<f64>,
    anchor_mious: Vec<f64>,
}

impl AccuracyModel {
    /// Builds the model for a workload, precomputing anchor residuals.
    pub fn for_workload(workload: Workload) -> Self {
        let anchors = anchors_for(workload);
        let mut feats = Vec::with_capacity(anchors.len() + 1);
        let mut residuals = Vec::with_capacity(anchors.len() + 1);
        let mut mious = Vec::with_capacity(anchors.len() + 1);
        for a in &anchors {
            let f = anchor_features(workload, a);
            let base = parametric_norm_miou(workload, &f);
            feats.push(f);
            residuals.push(a.norm_miou - base);
            mious.push(a.norm_miou);
        }
        // The paper's surprising SegFormer-ADE point: keeping 736 of the
        // 768 Conv2DPred input channels is slightly *better* than the full
        // model (0.4655 vs 0.4651) without retraining.
        if workload == Workload::SegFormerAde {
            let f = ConfigFeatures {
                skipped: [0.0; 4],
                fuse_cut: 0.0,
                pred_cut: 1.0 - 736.0 / 768.0,
            };
            let miou = 0.4655 / 0.4651;
            let base = parametric_norm_miou(workload, &f);
            feats.push(f);
            residuals.push(miou - base);
            mious.push(miou);
        }
        AccuracyModel {
            workload,
            anchor_feats: feats,
            anchor_residuals: residuals,
            anchor_mious: mious,
        }
    }

    /// The workload this model covers.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Normalized mIoU (1.0 = full model) for an arbitrary feature vector.
    pub fn norm_miou(&self, f: &ConfigFeatures) -> f64 {
        // Exact reproduction at anchors; IDW-blended residual elsewhere.
        let mut wsum = 0.0;
        let mut corr = 0.0;
        for (af, (&r, &m)) in self
            .anchor_feats
            .iter()
            .zip(self.anchor_residuals.iter().zip(self.anchor_mious.iter()))
        {
            let d = f.distance(af);
            if d < 1e-9 {
                return m;
            }
            // Compact support: anchors further than 0.6 in feature space do
            // not influence the estimate.
            let w = ((0.6 - d) / (0.6 * d)).max(0.0).powi(2);
            wsum += w;
            corr += w * r;
        }
        let base = parametric_norm_miou(self.workload, f);
        let corrected = if wsum > 0.0 { base + corr / wsum } else { base };
        corrected.clamp(0.0, 1.02)
    }

    /// Normalized mIoU of a SegFormer configuration.
    pub fn norm_miou_segformer(&self, d: &SegFormerDynamic, v: &SegFormerVariant) -> f64 {
        self.norm_miou(&ConfigFeatures::from_segformer(d, v))
    }

    /// Normalized mIoU of a Swin configuration.
    pub fn norm_miou_swin(&self, d: &SwinDynamic, v: &SwinVariant) -> f64 {
        self.norm_miou(&ConfigFeatures::from_swin(d, v))
    }

    /// Absolute mIoU corresponding to a normalized value on this workload.
    pub fn absolute_miou(&self, norm: f64) -> f64 {
        norm * params_for(self.workload).base_miou
    }
}

fn parametric_norm_miou(workload: Workload, f: &ConfigFeatures) -> f64 {
    let p = params_for(workload);
    let mut drop = p.channel_alpha * f.fuse_cut.max(0.0).powf(p.channel_q)
        + p.pred_alpha * f.pred_cut.max(0.0).powf(p.pred_q);
    for i in 0..4 {
        drop += p.stage_beta[i] * f.skipped[i].max(0.0);
    }
    (1.0 - drop).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduced_exactly() {
        for workload in [
            Workload::SegFormerAde,
            Workload::SegFormerCityscapes,
            Workload::SwinTinyAde,
            Workload::SwinBaseAde,
        ] {
            let model = AccuracyModel::for_workload(workload);
            for a in anchors_for(workload) {
                let f = anchor_features(workload, &a);
                let got = model.norm_miou(&f);
                assert!(
                    (got - a.norm_miou).abs() < 1e-9,
                    "{workload:?} {}: got {got}, want {}",
                    a.label,
                    a.norm_miou
                );
            }
        }
    }

    #[test]
    fn full_model_is_one() {
        let v = SegFormerVariant::b2();
        let m = AccuracyModel::for_workload(Workload::SegFormerAde);
        assert!((m.norm_miou_segformer(&SegFormerDynamic::full(&v), &v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn channel_cuts_degrade_monotonically() {
        let v = SegFormerVariant::b2();
        let m = AccuracyModel::for_workload(Workload::SegFormerAde);
        let mut prev = 1.1;
        for ch in [3072usize, 2560, 2048, 1536, 1024, 512, 256] {
            let d = SegFormerDynamic::with_depths_and_fuse(&v, v.depths, ch);
            let miou = m.norm_miou_segformer(&d, &v);
            assert!(
                miou <= prev + 1e-6,
                "mIoU increased at {ch} channels: {miou} > {prev}"
            );
            prev = miou;
        }
        // Deep cuts hurt substantially.
        assert!(prev < 0.90, "got {prev}");
    }

    #[test]
    fn cityscapes_is_more_resilient_than_ade() {
        // Paper §III-A: the Cityscapes model degrades more gracefully.
        let v = SegFormerVariant::b2();
        let ade = AccuracyModel::for_workload(Workload::SegFormerAde);
        let city = AccuracyModel::for_workload(Workload::SegFormerCityscapes);
        let d = SegFormerDynamic::with_depths_and_fuse(&v, [2, 4, 5, 3], 1280);
        assert!(city.norm_miou_segformer(&d, &v) > ade.norm_miou_segformer(&d, &v));
    }

    #[test]
    fn swin_tiny_depth_skips_are_expensive() {
        // Paper §III-B: skipping encoder layers in Swin-Tiny costs more
        // accuracy than it saves time.
        let v = SwinVariant::tiny();
        let m = AccuracyModel::for_workload(Workload::SwinTinyAde);
        let skip_one = SwinDynamic {
            depths: [2, 2, 5, 2],
            bottleneck_in_channels: 2048,
        };
        let miou = m.norm_miou_swin(&skip_one, &v);
        // One block out of six in stage 2 => a large drop (> 5%).
        assert!(miou < 0.95, "got {miou}");
    }

    #[test]
    fn swin_base_supports_deep_stage2_skips() {
        // Table III's deepest point: 7 of 18 stage-2 blocks bypassed still
        // retains 72% of mIoU — a regime Swin-Tiny (6 blocks total in stage
        // 2) cannot reach at all.
        let mb = AccuracyModel::for_workload(Workload::SwinBaseAde);
        let vb = SwinVariant::base();
        let db = SwinDynamic {
            depths: [2, 2, 11, 2],
            bottleneck_in_channels: 1536,
        };
        let miou = mb.norm_miou_swin(&db, &vb);
        assert!(
            (miou - 0.72).abs() < 1e-9,
            "anchor SB8 should be exact, got {miou}"
        );

        // Tiny skipping a third of stage 2 drops hard.
        let mt = AccuracyModel::for_workload(Workload::SwinTinyAde);
        let vt = SwinVariant::tiny();
        let dt = SwinDynamic {
            depths: [2, 2, 4, 2],
            bottleneck_in_channels: 2048,
        };
        assert!(mt.norm_miou_swin(&dt, &vt) < 0.90);
    }

    #[test]
    fn pred_channel_736_beats_full_model() {
        // The paper's surprising finding (§III-A).
        let v = SegFormerVariant::b2();
        let m = AccuracyModel::for_workload(Workload::SegFormerAde);
        let mut d = SegFormerDynamic::full(&v);
        d.fuse_out_channels = 736;
        let miou = m.norm_miou_segformer(&d, &v);
        assert!(miou > 1.0, "got {miou}");
        assert!((m.absolute_miou(miou) - 0.4655).abs() < 1e-6);
    }

    #[test]
    fn absolute_miou_uses_dataset_base() {
        let m = AccuracyModel::for_workload(Workload::SegFormerCityscapes);
        assert!((m.absolute_miou(1.0) - 0.8098).abs() < 1e-12);
    }

    #[test]
    fn estimates_bounded() {
        let v = SegFormerVariant::b2();
        let m = AccuracyModel::for_workload(Workload::SegFormerAde);
        let d = SegFormerDynamic::with_depths_and_fuse(&v, [1, 1, 1, 1], 4);
        let miou = m.norm_miou_segformer(&d, &v);
        assert!((0.0..=1.02).contains(&miou));
    }
}
