/root/repo/target/release/deps/scheduler-8e5d8164c348ea8c.d: crates/bench/benches/scheduler.rs

/root/repo/target/release/deps/scheduler-8e5d8164c348ea8c: crates/bench/benches/scheduler.rs

crates/bench/benches/scheduler.rs:
