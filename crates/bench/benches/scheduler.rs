//! Criterion benchmarks of the serving scheduler hot path: EDF queue
//! push/pop, admission + budget selection per dispatch, and a full
//! simulated load sweep step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vit_bench::loadgen;
use vit_drt::DrtEngine;
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};
use vit_serve::{admissible, budget_for, simulate, EdfQueue, PopResult, SchedulePolicy, SimConfig};

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");

    // The per-request queue cost: one EDF push + one pop at a realistic
    // occupancy (queue pre-loaded with 64 pending requests).
    g.bench_function("edf_push_pop_at_depth_64", |bench| {
        let q: EdfQueue<u64, u64> = EdfQueue::bounded(128);
        for i in 0..64u64 {
            q.try_push(i * 7 % 64, i).unwrap();
        }
        let mut next = 64u64;
        bench.iter(|| {
            q.try_push(black_box(next % 64), next).unwrap();
            next += 1;
            match q.pop() {
                PopResult::Item(it) => it,
                PopResult::Closed => unreachable!(),
            }
        })
    });

    let engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    let core = engine.core().clone();

    // The per-dispatch decision: admission check + slack-to-budget mapping
    // + Pareto LUT selection. This is the work a worker does between pop
    // and execution.
    let min = core.min_resource();
    let max = core.max_resource();
    g.bench_function("admit_and_select", |bench| {
        let mut slack = min;
        bench.iter(|| {
            slack = if slack >= max { min } else { slack * 1.1 };
            if admissible(black_box(slack), min) {
                let budget = budget_for(SchedulePolicy::DrtDynamic, &core, slack);
                Some(core.select(budget))
            } else {
                None
            }
        })
    });

    // A whole simulated operating point (~1000 requests through 4 workers).
    let full = max;
    let arrivals = loadgen::poisson_with_bursts(
        2.0 * 4.0 / full,
        250.0 * full,
        2.0 * full,
        50.0 * full,
        12,
        9,
    );
    let config = SimConfig::new(4, 16, SchedulePolicy::DrtDynamic, 1.0);
    g.sample_size(10);
    g.bench_function("simulate_operating_point", |bench| {
        bench.iter(|| simulate(&core, &config, black_box(&arrivals)))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_scheduler
}
criterion_main!(benches);
