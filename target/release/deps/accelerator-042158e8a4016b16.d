/root/repo/target/release/deps/accelerator-042158e8a4016b16.d: crates/bench/benches/accelerator.rs

/root/repo/target/release/deps/accelerator-042158e8a4016b16: crates/bench/benches/accelerator.rs

crates/bench/benches/accelerator.rs:
