//! # vit-plan
//!
//! Compiled execution plans: lower a [`vit_graph::Graph`] **once** into a
//! flat [`ExecPlan`] and replay it per inference.
//!
//! The interpreter in `vit-graph` walks the graph every run — hash-map
//! weight lookups, buffer-pool allocation, and (threaded) atomic wavefront
//! scheduling per node. Real ViT inference stacks (ViTA's edge
//! accelerator, Vis-TOP's overlay processor) instead compile a model into
//! a static schedule with fixed buffer placement and replay it. This crate
//! is that substrate for the DRT reproduction:
//!
//! * **flat records** — topologically ordered [`PlanRecord`]s with
//!   pre-resolved input/output offsets; replay is a tight loop, with no
//!   per-node hash lookups, `Arc` slot graphs, or atomic wavefront
//!   counters;
//! * **static arena** — one buffer sized by exact liveness analysis at
//!   compile time (free ranges are reused the moment their last consumer
//!   retires), replacing the `BufferPool` best-fit heuristic on this path;
//!   the arena is recycled across runs and never re-zeroed, because every
//!   record fully overwrites its output range;
//! * **fused epilogues** — a `Relu`/`Gelu` whose sole producer is a
//!   `Conv2d`/`Linear` (and which is that producer's only consumer) is
//!   folded into the producing kernel's final store, eliminating a whole
//!   read-modify-write pass over the activation;
//! * **pre-packed weights** — parameter tensors are generated once at
//!   compile time and packed contiguously
//!   ([`vit_tensor::ops::PackedConv2d`]/[`PackedLinear`]), so replay
//!   touches no weight cache.
//!
//! Replay is **bit-identical** to the interpreter at any thread count: the
//! packed kernels share the interpreter's inner loops and epilogue
//! scalars, fallback records dispatch through the same
//! [`vit_graph::eval_op`], and threading happens only via intra-kernel
//! output tiling (the `vit_tensor::par` determinism contract).
//!
//! `vit-verify`'s plan pass proves plan↔graph equivalence offline:
//! identical FLOP/param/byte totals, every node covered exactly once by a
//! record or fusion, and arena liveness soundness.
//!
//! [`PackedLinear`]: vit_tensor::ops::PackedLinear
//!
//! # Examples
//!
//! ```
//! use vit_graph::{Graph, LayerRole, Op, RunContext, WeightGen};
//! use vit_plan::ExecPlan;
//! use vit_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("tiny");
//! let x = g.input("image", &[1, 3, 8, 8])?;
//! let c = g.add(
//!     "stem",
//!     Op::Conv2d {
//!         out_channels: 4,
//!         kernel: (3, 3),
//!         stride: (1, 1),
//!         pad: (1, 1),
//!         groups: 1,
//!         bias: true,
//!     },
//!     LayerRole::Backbone,
//!     &[x],
//! )?;
//! let r = g.add("stem.act", Op::Relu, LayerRole::Backbone, &[c])?;
//! g.set_output(r);
//!
//! let plan = ExecPlan::compile(&g, WeightGen::new(0))?;
//! assert_eq!(plan.records().len(), 2); // input + fused conv∘relu
//! let out = plan.execute(
//!     &[Tensor::ones(&[1, 3, 8, 8])],
//!     &RunContext::default(),
//! )?;
//! assert_eq!(out.shape(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;

use vit_graph::{
    eval_op, generate_node_weights, Graph, Node, Op, RunContext, WeightGen,
};
use vit_graph::ExecError;
use vit_profiler::node_io_bytes;
use vit_tensor::ops::{Conv2dParams, Epilogue, PackedConv2d, PackedLinear};
use vit_tensor::{BufferPool, ExecCtx, Tensor, TensorError};
use vit_trace::{now_ns, EventKind, Phase, TraceSink};

/// A contiguous element range inside a plan's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufRange {
    /// First element index.
    pub offset: usize,
    /// Length in elements.
    pub len: usize,
}

impl BufRange {
    /// One past the last element index.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// Whether two ranges share any element.
    pub fn overlaps(&self, other: &BufRange) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }
}

/// How one record computes its output range.
#[derive(Debug, Clone)]
enum Step {
    /// Copy graph input `pos` into the output range.
    Input { pos: usize },
    /// Pre-packed convolution (epilogue possibly fused).
    Conv(PackedConv2d),
    /// Pre-packed linear layer (epilogue possibly fused).
    Linear(PackedLinear),
    /// Standalone elementwise relu (not fused into a producer).
    Relu,
    /// Standalone elementwise gelu.
    Gelu,
    /// Elementwise sum of two equal-shape inputs.
    Add,
    /// Byte copy (`Op::Identity`).
    Copy,
    /// Any other op: materialize input tensors and dispatch through
    /// [`vit_graph::eval_op`] with weights generated at compile time.
    Fallback { weights: Vec<Tensor> },
}

/// One flat instruction of a compiled plan: which op to run, where its
/// inputs and output live in the arena, and the static costs it accounts
/// for (including any nodes fused into it).
#[derive(Debug, Clone)]
pub struct PlanRecord {
    /// Graph node this record executes (the *producer* for fused pairs).
    pub name: String,
    /// The producer's operator.
    pub op: Op,
    /// Arena ranges of the inputs, in graph edge order.
    pub inputs: Vec<BufRange>,
    /// Shapes of the inputs, in graph edge order.
    pub in_shapes: Vec<Vec<usize>>,
    /// Arena range of the output.
    pub out: BufRange,
    /// Shape of the output (after any fused epilogue, which preserves it).
    pub out_shape: Vec<usize>,
    /// Names of graph nodes fused into this record's epilogue.
    pub fused: Vec<String>,
    /// Analytical FLOPs (MAC convention), producer plus fused nodes.
    pub flops: u64,
    /// Learned parameters, producer plus fused nodes.
    pub params: u64,
    /// First-order DRAM traffic in bytes, producer plus fused nodes
    /// (accounted as the interpreter would, so plan totals equal graph
    /// totals even though fusion eliminates the traffic physically).
    pub bytes: u64,
    step: Step,
}

/// Why a graph could not be lowered into a plan.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlanError {
    /// The graph has no output set.
    NoOutput {
        /// Model name of the offending graph.
        model: String,
    },
    /// Packing a node's weights failed (inconsistent generated shapes).
    Pack {
        /// Node whose weights failed to pack.
        node: String,
        /// Underlying tensor error.
        source: TensorError,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoOutput { model } => {
                write!(f, "graph `{model}` has no output set")
            }
            PlanError::Pack { node, source } => {
                write!(f, "packing weights of `{node}` failed: {source}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::NoOutput { .. } => None,
            PlanError::Pack { source, .. } => Some(source),
        }
    }
}

/// Free-list allocator used at compile time to assign arena ranges.
///
/// Best-fit over coalesced free ranges, bump-extending the arena when
/// nothing fits. Exactness comes from *when* it is driven: a range is
/// freed the moment its owner's last consumer has been lowered, so two
/// ranges only coexist when their values genuinely do.
#[derive(Debug, Default)]
struct ArenaLayout {
    free: Vec<BufRange>, // sorted by offset, coalesced
    len: usize,
}

impl ArenaLayout {
    fn alloc(&mut self, len: usize) -> BufRange {
        // Best fit: smallest free range that holds `len`.
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, r)| r.len >= len)
            .min_by_key(|(_, r)| r.len)
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let r = self.free[i];
                if r.len == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = BufRange {
                        offset: r.offset + len,
                        len: r.len - len,
                    };
                }
                BufRange {
                    offset: r.offset,
                    len,
                }
            }
            None => {
                let r = BufRange {
                    offset: self.len,
                    len,
                };
                self.len += len;
                r
            }
        }
    }

    fn free(&mut self, r: BufRange) {
        if r.len == 0 {
            return;
        }
        let i = self
            .free
            .partition_point(|f| f.offset < r.offset);
        self.free.insert(i, r);
        // Coalesce with the right, then the left, neighbor.
        if i + 1 < self.free.len() && self.free[i].end() == self.free[i + 1].offset {
            self.free[i].len += self.free[i + 1].len;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].end() == self.free[i].offset {
            self.free[i - 1].len += self.free[i].len;
            self.free.remove(i);
        }
    }
}

/// A graph lowered into a flat, replayable instruction stream.
///
/// Compile once with [`ExecPlan::compile`]; replay any number of times
/// (including concurrently — each [`ExecPlan::execute`] takes a private
/// arena from an internal pool) with outputs bit-identical to the
/// interpreter's.
#[derive(Debug)]
pub struct ExecPlan {
    model: String,
    records: Vec<PlanRecord>,
    arena_len: usize,
    input_shapes: Vec<Vec<usize>>,
    output: BufRange,
    output_shape: Vec<usize>,
    graph_nodes: usize,
    total_flops: u64,
    total_params: u64,
    total_bytes: u64,
    /// Recycled arenas from finished runs (never re-zeroed: every record
    /// fully overwrites its output range before any consumer reads it).
    arena_pool: Mutex<Vec<Vec<f32>>>,
    /// Allocation free-list for fallback records' intermediate tensors.
    scratch: BufferPool,
}

impl ExecPlan {
    /// Lowers `graph` into a plan, generating and packing weights from
    /// `gen`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoOutput`] when the graph has no output set.
    pub fn compile(graph: &Graph, gen: WeightGen) -> Result<ExecPlan, PlanError> {
        let output_id = graph.output().ok_or_else(|| PlanError::NoOutput {
            model: graph.model.clone(),
        })?;
        let n = graph.len();

        // Fusion pre-pass: `fused_into[a] = Some(p)` when activation `a`
        // folds into producer `p`'s epilogue. Legality: `a` is a unary
        // Relu/Gelu, its producer is a Conv2d/Linear, and `a` is that
        // producer's *only* consumer (`consumer_counts` adds one for the
        // graph output, so an output node can never be fused away).
        let counts = graph.consumer_counts();
        let mut fused_into: Vec<Option<usize>> = vec![None; n];
        for (id, node) in graph.iter() {
            if !matches!(node.op, Op::Relu | Op::Gelu) || node.inputs.len() != 1 {
                continue;
            }
            let p = node.inputs[0].index();
            let producer = graph.node(node.inputs[0]);
            if matches!(producer.op, Op::Conv2d { .. } | Op::Linear { .. }) && counts[p] == 1 {
                fused_into[id.index()] = Some(p);
            }
        }
        let mut fused_children: Vec<Option<usize>> = vec![None; n];
        for (a, p) in fused_into.iter().enumerate() {
            if let Some(p) = p {
                fused_children[*p] = Some(a);
            }
        }

        // Lowering + liveness in one topological walk. A node's range is
        // allocated *before* its inputs' refcounts drop, so an output can
        // never alias a live input (kernels read inputs while storing
        // outputs). For a fused pair the activation owns the range's
        // lifetime: the internal producer→activation edge decrements
        // nothing, and the activation's consumers govern the free.
        let mut refcount = counts;
        let mut layout = ArenaLayout::default();
        let mut range_of: Vec<Option<BufRange>> = vec![None; n];
        let mut records = Vec::new();
        let mut input_pos = 0usize;
        let mut input_shapes = Vec::new();
        for (id, node) in graph.iter() {
            let i = id.index();
            if let Some(p) = fused_into[i] {
                // Fused activation: alias the producer's (already
                // emitted) record output; its costs were folded there.
                range_of[i] = range_of[p];
                continue;
            }
            let numel: usize = node.shape.iter().product();
            let out = layout.alloc(numel);
            range_of[i] = Some(out);
            let inputs: Vec<BufRange> = node
                .inputs
                .iter()
                .map(|j| range_of[j.index()].expect("topological order"))
                .collect();
            let in_shapes: Vec<Vec<usize>> = node
                .inputs
                .iter()
                .map(|j| graph.node(*j).shape.clone())
                .collect();
            let fused_child = fused_children[i].map(|a| graph.node(vit_graph::NodeId::from_index(a)));
            let epilogue = match fused_child.map(|c| &c.op) {
                Some(Op::Relu) => Epilogue::Relu,
                Some(Op::Gelu) => Epilogue::Gelu,
                _ => Epilogue::None,
            };
            let step = match &node.op {
                Op::Input { .. } => {
                    input_shapes.push(node.shape.clone());
                    input_pos += 1;
                    Step::Input { pos: input_pos - 1 }
                }
                op => Self::lower_step(node, op, &in_shapes, epilogue, gen)?,
            };
            let mut flops = node.flops(graph);
            let mut params = node.params(graph);
            let mut bytes = node_io_bytes(graph, node);
            let mut fused = Vec::new();
            if let Some(c) = fused_child {
                flops += c.flops(graph);
                params += c.params(graph);
                bytes += node_io_bytes(graph, c);
                fused.push(c.name.clone());
            }
            records.push(PlanRecord {
                name: node.name.clone(),
                op: node.op.clone(),
                inputs,
                in_shapes,
                out,
                out_shape: node.shape.clone(),
                fused,
                flops,
                params,
                bytes,
                step,
            });
            // Retire inputs whose last consumer was just lowered. The
            // graph output holds an extra reference, so its range (and
            // transitively the plan output) is never recycled.
            for j in &node.inputs {
                let jj = j.index();
                refcount[jj] -= 1;
                if refcount[jj] == 0 {
                    layout.free(range_of[jj].expect("allocated"));
                }
            }
        }

        let output = range_of[output_id.index()].expect("output lowered");
        let output_shape = graph.node(output_id).shape.clone();
        Ok(ExecPlan {
            model: graph.model.clone(),
            total_flops: records.iter().map(|r| r.flops).sum(),
            total_params: records.iter().map(|r| r.params).sum(),
            total_bytes: records.iter().map(|r| r.bytes).sum(),
            records,
            arena_len: layout.len,
            input_shapes,
            output,
            output_shape,
            graph_nodes: n,
            arena_pool: Mutex::new(Vec::new()),
            scratch: BufferPool::default(),
        })
    }

    /// Builds the step for one non-`Input` node, packing weights for the
    /// kernels that support it.
    fn lower_step(
        node: &Node,
        op: &Op,
        in_shapes: &[Vec<usize>],
        epilogue: Epilogue,
        gen: WeightGen,
    ) -> Result<Step, PlanError> {
        let shape_refs: Vec<&[usize]> = in_shapes.iter().map(Vec::as_slice).collect();
        let perr = |source: TensorError| PlanError::Pack {
            node: node.name.clone(),
            source,
        };
        Ok(match op {
            Op::Conv2d {
                stride,
                pad,
                groups,
                bias,
                ..
            } => {
                let w = generate_node_weights(gen, &node.name, op, &shape_refs);
                let p = Conv2dParams {
                    stride_h: stride.0,
                    stride_w: stride.1,
                    pad_h: pad.0,
                    pad_w: pad.1,
                    groups: *groups,
                };
                let b = bias.then(|| &w[1]);
                Step::Conv(PackedConv2d::pack(&w[0], b, p, epilogue).map_err(perr)?)
            }
            Op::Linear { bias, .. } => {
                let w = generate_node_weights(gen, &node.name, op, &shape_refs);
                let b = bias.then(|| &w[1]);
                Step::Linear(PackedLinear::pack(&w[0], b, epilogue).map_err(perr)?)
            }
            Op::Relu => Step::Relu,
            Op::Gelu => Step::Gelu,
            Op::Add => Step::Add,
            Op::Identity => Step::Copy,
            _ => Step::Fallback {
                weights: generate_node_weights(gen, &node.name, op, &shape_refs),
            },
        })
    }

    /// Replays the plan on `inputs` (one tensor per graph input, in
    /// declaration order).
    ///
    /// Threading follows `ctx.exec` via intra-kernel output tiling only —
    /// record order is always sequential — so outputs are bit-identical to
    /// the interpreter's at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when input count/shapes mismatch the graph
    /// the plan was compiled from, or when a fallback kernel fails.
    pub fn execute(&self, inputs: &[Tensor], ctx: &RunContext) -> Result<Tensor, ExecError> {
        if inputs.len() != self.input_shapes.len() {
            return Err(ExecError::BadInputs {
                msg: format!(
                    "plan `{}` has {} inputs, got {}",
                    self.model,
                    self.input_shapes.len(),
                    inputs.len()
                ),
            });
        }
        for (t, expect) in inputs.iter().zip(&self.input_shapes) {
            if t.shape() != expect.as_slice() {
                return Err(ExecError::BadInputs {
                    msg: format!(
                        "plan `{}` expects input shape {:?}, got {:?}",
                        self.model,
                        expect,
                        t.shape()
                    ),
                });
            }
        }
        let sink = ctx.sink.as_ref();
        let enabled = sink.enabled();
        let replay_start = sink.timestamp();
        let mut arena = self.take_arena();
        let pool = ctx.exec.active_pool();
        let result = self.replay(&mut arena, inputs, pool, enabled.then_some(sink));
        if enabled {
            sink.record(EventKind::Phase {
                phase: Phase::PlanReplay,
                detail: self.model.clone(),
                start_ns: replay_start,
                end_ns: now_ns(),
            });
        }
        let out = result.map(|()| {
            Tensor::from_vec(
                arena[self.output.offset..self.output.end()].to_vec(),
                &self.output_shape,
            )
            .expect("output range sized by shape")
        });
        self.arena_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(arena);
        out
    }

    /// Runs every record against `arena`.
    fn replay(
        &self,
        arena: &mut [f32],
        inputs: &[Tensor],
        pool: Option<&vit_tensor::ThreadPool>,
        sink: Option<&dyn TraceSink>,
    ) -> Result<(), ExecError> {
        for rec in &self.records {
            let start_ns = sink.map_or(0, TraceSink::timestamp);
            // The output range is disjoint from every live range, so each
            // input lies entirely left or entirely right of it; two splits
            // give simultaneous shared input / exclusive output borrows
            // without `unsafe`.
            let (left, rest) = arena.split_at_mut(rec.out.offset);
            let (out, right) = rest.split_at_mut(rec.out.len);
            let right_base = rec.out.end();
            let input = |r: &BufRange| -> &[f32] {
                if r.end() <= rec.out.offset {
                    &left[r.offset..r.end()]
                } else {
                    &right[r.offset - right_base..r.end() - right_base]
                }
            };
            let kctx = ExecCtx {
                pool,
                bufs: Some(&self.scratch),
                sink: None,
            };
            match &rec.step {
                Step::Input { pos } => out.copy_from_slice(inputs[*pos].data()),
                Step::Conv(conv) => {
                    conv.run(input(&rec.inputs[0]), &rec.in_shapes[0], out, &kctx);
                }
                Step::Linear(lin) => lin.run(input(&rec.inputs[0]), out, &kctx),
                Step::Relu => {
                    for (o, x) in out.iter_mut().zip(input(&rec.inputs[0])) {
                        *o = Epilogue::Relu.apply(*x);
                    }
                }
                Step::Gelu => {
                    for (o, x) in out.iter_mut().zip(input(&rec.inputs[0])) {
                        *o = Epilogue::Gelu.apply(*x);
                    }
                }
                Step::Add => {
                    let (a, b) = (input(&rec.inputs[0]), input(&rec.inputs[1]));
                    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
                        *o = x + y;
                    }
                }
                Step::Copy => out.copy_from_slice(input(&rec.inputs[0])),
                Step::Fallback { weights } => {
                    let ins: Vec<Tensor> = rec
                        .inputs
                        .iter()
                        .zip(&rec.in_shapes)
                        .map(|(r, s)| {
                            Tensor::from_vec(input(r).to_vec(), s)
                                .expect("range sized by shape")
                        })
                        .collect();
                    let refs: Vec<&Tensor> = ins.iter().collect();
                    let t = eval_op(&rec.name, &rec.op, weights, &refs, &kctx)?;
                    out.copy_from_slice(t.data());
                    for v in ins {
                        self.scratch.recycle(v.into_vec());
                    }
                    self.scratch.recycle(t.into_vec());
                }
            }
            if let Some(sink) = sink {
                sink.record(EventKind::Node {
                    name: rec.name.clone(),
                    op: rec.op.kind_name().to_string(),
                    start_ns,
                    end_ns: now_ns(),
                    flops: rec.flops,
                    bytes: rec.bytes,
                });
            }
        }
        Ok(())
    }

    /// A run-private arena: recycled from a finished run when available.
    /// Recycled arenas are *not* re-zeroed — every record fully overwrites
    /// its output range before any consumer reads it, so no run can
    /// observe a previous run's values.
    fn take_arena(&self) -> Vec<f32> {
        let recycled = self
            .arena_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        match recycled {
            Some(v) => v,
            None => vec![0.0; self.arena_len],
        }
    }

    /// Model name of the graph this plan was compiled from.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The flat record stream, in replay order.
    pub fn records(&self) -> &[PlanRecord] {
        &self.records
    }

    /// Arena size in `f32` elements.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Number of nodes in the source graph (records + fused nodes).
    pub fn graph_nodes(&self) -> usize {
        self.graph_nodes
    }

    /// Arena range holding the plan output after a replay.
    pub fn output_range(&self) -> BufRange {
        self.output
    }

    /// Shape of the plan output.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// Shapes of the graph inputs, in declaration order.
    pub fn input_shapes(&self) -> &[Vec<usize>] {
        &self.input_shapes
    }

    /// Total analytical FLOPs across all records (equals the source
    /// graph's total; `vit-verify`'s plan pass enforces this).
    pub fn total_flops(&self) -> u64 {
        self.total_flops
    }

    /// Total parameters across all records.
    pub fn total_params(&self) -> u64 {
        self.total_params
    }

    /// Total accounted DRAM bytes across all records.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of graph nodes fused into producer epilogues.
    pub fn fused_nodes(&self) -> usize {
        self.records.iter().map(|r| r.fused.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_graph::{Executor, Graph, LayerRole};

    fn conv_op(out_channels: usize, kernel: usize, bias: bool) -> Op {
        Op::Conv2d {
            out_channels,
            kernel: (kernel, kernel),
            stride: (1, 1),
            pad: (kernel / 2, kernel / 2),
            groups: 1,
            bias,
        }
    }

    /// conv → relu → conv → gelu → add(residual) with a branchy consumer.
    fn sample_graph() -> Graph {
        let mut g = Graph::new("plan-test");
        let x = g.input("image", &[1, 3, 8, 8]).unwrap();
        let c0 = g.add("c0", conv_op(4, 3, true), LayerRole::Backbone, &[x]).unwrap();
        let r0 = g.add("c0.act", Op::Relu, LayerRole::Backbone, &[c0]).unwrap();
        let c1 = g.add("c1", conv_op(4, 3, true), LayerRole::Other, &[r0]).unwrap();
        let g1 = g.add("c1.act", Op::Gelu, LayerRole::Other, &[c1]).unwrap();
        let add = g.add("res", Op::Add, LayerRole::Other, &[r0, g1]).unwrap();
        g.set_output(add);
        g
    }

    #[test]
    fn fuses_sole_consumer_activations_only() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        // input, c0+relu (fused), c1+gelu (fused), add.
        assert_eq!(plan.records().len(), 4);
        assert_eq!(plan.fused_nodes(), 2);
        let c0 = &plan.records()[1];
        assert_eq!(c0.fused, vec!["c0.act".to_string()]);

        // Make the relu's producer multi-consumer: fusion must not fire.
        let mut g2 = Graph::new("plan-test-2");
        let x = g2.input("image", &[1, 3, 8, 8]).unwrap();
        let c0 = g2.add("c0", conv_op(4, 3, true), LayerRole::Backbone, &[x]).unwrap();
        let r0 = g2.add("c0.act", Op::Relu, LayerRole::Backbone, &[c0]).unwrap();
        let add = g2.add("res", Op::Add, LayerRole::Backbone, &[c0, r0]).unwrap();
        g2.set_output(add);
        let plan2 = ExecPlan::compile(&g2, WeightGen::new(0)).unwrap();
        assert_eq!(plan2.fused_nodes(), 0);
        assert_eq!(plan2.records().len(), 4);
    }

    #[test]
    fn output_producer_activation_is_not_fused() {
        let mut g = Graph::new("plan-out");
        let x = g.input("image", &[1, 3, 4, 4]).unwrap();
        let c = g.add("c", conv_op(2, 1, false), LayerRole::Backbone, &[x]).unwrap();
        // The conv itself is the output: its relu consumer must not fold
        // the conv's range away from the output.
        g.set_output(c);
        let _r = g.add("act", Op::Relu, LayerRole::Backbone, &[c]).unwrap();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        assert_eq!(plan.fused_nodes(), 0);
    }

    #[test]
    fn plan_matches_interpreter_bitwise() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        let input = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 42);
        let expect = Executor::new(0).run(&g, &[input.clone()]).unwrap();
        let got = plan.execute(&[input], &RunContext::default()).unwrap();
        assert_eq!(got.shape(), expect.shape());
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn repeated_runs_reuse_arena_and_stay_identical() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        let a = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 1);
        let b = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 2);
        let ra1 = plan.execute(&[a.clone()], &RunContext::default()).unwrap();
        // Interleave a different input so the recycled (dirty) arena would
        // surface any stale-read bug.
        let _rb = plan.execute(&[b], &RunContext::default()).unwrap();
        let ra2 = plan.execute(&[a], &RunContext::default()).unwrap();
        assert_eq!(ra1.data(), ra2.data());
    }

    #[test]
    fn live_ranges_never_overlap() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        // Last record index reading each record's output range.
        let recs = plan.records();
        for (i, a) in recs.iter().enumerate() {
            let a_last = last_reader(recs, i, plan.output_range());
            for (j, b) in recs.iter().enumerate().skip(i + 1) {
                let b_last = last_reader(recs, j, plan.output_range());
                // Intervals [i, a_last] and [j, b_last] with j > i.
                if j <= a_last && i <= b_last && a.out.overlaps(&b.out) {
                    panic!(
                        "records `{}` and `{}` live-overlap in the arena",
                        a.name, b.name
                    );
                }
            }
        }
    }

    fn last_reader(recs: &[PlanRecord], idx: usize, output: BufRange) -> usize {
        if recs[idx].out == output {
            return recs.len();
        }
        recs.iter()
            .enumerate()
            .filter(|(_, r)| r.inputs.iter().any(|i| *i == recs[idx].out))
            .map(|(k, _)| k)
            .max()
            .unwrap_or(idx)
    }

    #[test]
    fn rejects_wrong_inputs() {
        let g = sample_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        assert!(plan.execute(&[], &RunContext::default()).is_err());
        let bad = Tensor::ones(&[1, 3, 4, 4]);
        assert!(plan.execute(&[bad], &RunContext::default()).is_err());
    }

    #[test]
    fn no_output_graph_is_rejected() {
        let mut g = Graph::new("no-out");
        g.input("image", &[1, 3, 4, 4]).unwrap();
        assert!(matches!(
            ExecPlan::compile(&g, WeightGen::new(0)),
            Err(PlanError::NoOutput { .. })
        ));
    }

    #[test]
    fn arena_layout_reuses_freed_ranges_best_fit() {
        let mut l = ArenaLayout::default();
        let a = l.alloc(100);
        let b = l.alloc(50);
        let c = l.alloc(10);
        l.free(b);
        // Best fit: a 40-element request takes the 50-range, not a bump.
        let d = l.alloc(40);
        assert_eq!(d.offset, b.offset);
        assert_eq!(l.len, 160);
        // Coalescing: freeing the remaining owners merges everything
        // (including the 10-element remainder of `b`) into one range.
        l.free(a);
        l.free(d);
        l.free(c);
        let e = l.alloc(160);
        assert_eq!(e.offset, 0);
        assert_eq!(l.len, 160);
    }
}
