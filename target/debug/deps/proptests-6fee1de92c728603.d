/root/repo/target/debug/deps/proptests-6fee1de92c728603.d: crates/resilience/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6fee1de92c728603: crates/resilience/tests/proptests.rs

crates/resilience/tests/proptests.rs:
