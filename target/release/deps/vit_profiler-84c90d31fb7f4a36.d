/root/repo/target/release/deps/vit_profiler-84c90d31fb7f4a36.d: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

/root/repo/target/release/deps/vit_profiler-84c90d31fb7f4a36: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

crates/profiler/src/lib.rs:
crates/profiler/src/flops.rs:
crates/profiler/src/gpu.rs:
