/root/repo/target/release/deps/scheduler-065fb69e594b73ca.d: crates/bench/benches/scheduler.rs Cargo.toml

/root/repo/target/release/deps/libscheduler-065fb69e594b73ca.rmeta: crates/bench/benches/scheduler.rs Cargo.toml

crates/bench/benches/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
