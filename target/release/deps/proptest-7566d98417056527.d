/root/repo/target/release/deps/proptest-7566d98417056527.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-7566d98417056527.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
