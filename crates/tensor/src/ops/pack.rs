//! Packed-panel layouts and the register-blocked f32 GEMM micro-kernel.
//!
//! This is the production back end behind [`crate::ops::matmul`],
//! [`crate::ops::bmm`], [`crate::ops::linear`], and the im2col path of
//! [`crate::ops::conv2d`]. The design is the classic panel-packed GEMM:
//!
//! * **B packing** ([`PackedB`]): the right operand `[k, n]` is laid out
//!   as `NR`-wide column panels, k-major inside each panel and
//!   zero-padded in the tail panel, so the micro-kernel streams one
//!   contiguous `NR`-float row per k step. Model weights are packed once
//!   at plan-compile time (`PackedLinear`), activations per call.
//! * **A packing**: for each block of up to `MR` output rows, the left
//!   operand rows are interleaved into one contiguous k-major panel, so
//!   the k loop reads both operands at stride 1 with no index math.
//! * **micro-kernel** ([`micro`]): an `MR x NR` register accumulator
//!   updated by rank-1 steps over k. The loops are written over
//!   `chunks_exact` so bounds checks vanish and the `NR`-wide inner loop
//!   autovectorizes.
//!
//! # Numerics
//!
//! Each output element accumulates its k terms **sequentially in k
//! order** in a single register chain — blocking reorders the loop nest,
//! not any element's additions — so on finite inputs this kernel is
//! bit-identical to the naive oracle in [`crate::ops::reference`]. The
//! kernels still *claim* only the tolerance tier
//! ([`crate::ops::reference::tolerance`]): the contract reserves the
//! right to spend the registered ULP budget on k-split SIMD reductions or
//! FMA contraction later without renegotiating every differential test.
//! Blocking geometry depends only on shapes and the constants below,
//! never on the thread count, so exact-tier claims *between runs of this
//! kernel* (sequential vs threaded, interpreter vs plan) are unaffected.

use crate::ops::fused::Epilogue;

/// Register-tile height: output rows accumulated at once.
pub const MR: usize = 4;
/// Register-tile width: output columns per packed B panel.
pub const NR: usize = 8;
/// Nominal k-blocking depth. The micro-kernel keeps one accumulator
/// chain per element across the whole k extent (no partial spills), so
/// `KC` has no numeric effect; it only bounds the A-panel working set
/// used per packing pass and is exposed for shape generators in tests.
pub const KC: usize = 256;

/// The right-hand GEMM operand packed into `NR`-wide column panels.
///
/// Layout: panel `p` covers columns `[p*NR, (p+1)*NR)` and occupies
/// `k * NR` consecutive floats, k-major: element `(kk, j)` of the panel
/// lives at `p*k*NR + kk*NR + j`. Columns past `n` in the tail panel are
/// zero and stay zero (the store loop never reads them back).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB {
    data: Vec<f32>,
    k: usize,
    n: usize,
}

/// Borrowed view of panel-packed data, so callers (the im2col path) can
/// fill a pooled scratch buffer in panel layout without an owning
/// [`PackedB`].
#[derive(Clone, Copy)]
pub(crate) struct Panels<'a> {
    pub(crate) data: &'a [f32],
    pub(crate) k: usize,
    pub(crate) n: usize,
}

/// Number of floats panel-packing a `[k, n]` operand occupies.
pub(crate) fn packed_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

impl PackedB {
    /// Packs a row-major `[k, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics when `bd.len() != k * n`.
    pub fn pack(bd: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(bd.len(), k * n, "PackedB::pack shape mismatch");
        let mut data = vec![0.0f32; packed_len(k, n)];
        for kk in 0..k {
            let brow = &bd[kk * n..(kk + 1) * n];
            for (j, &v) in brow.iter().enumerate() {
                data[(j / NR) * k * NR + kk * NR + (j % NR)] = v;
            }
        }
        PackedB { data, k, n }
    }

    /// Packs the **transpose** of a row-major `[rows, cols]` matrix, i.e.
    /// the packed operand is `[k = cols, n = rows]`. This is the linear
    /// layer's weight `[out, in]` consumed as `B = W^T` without
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics when `wd.len() != rows * cols`.
    pub fn pack_transposed(wd: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(wd.len(), rows * cols, "PackedB::pack_transposed mismatch");
        let (k, n) = (cols, rows);
        let mut data = vec![0.0f32; packed_len(k, n)];
        // Element (kk, j) of B is wd[j * cols + kk]: walk wd row-major so
        // the large operand streams sequentially.
        for (j, wrow) in wd.chunks_exact(cols.max(1)).enumerate() {
            let panel = (j / NR) * k * NR + (j % NR);
            for (kk, &v) in wrow.iter().enumerate() {
                data[panel + kk * NR] = v;
            }
        }
        PackedB { data, k, n }
    }

    /// The packed operand's inner (reduction) extent.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The packed operand's column count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Recovers the row-major `[k, n]` matrix. Packing stores every
    /// element exactly once and padding is never written back, so
    /// `PackedB::pack(bd, k, n).unpack() == bd` bit-for-bit.
    pub fn unpack(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for kk in 0..self.k {
            for j in 0..self.n {
                out[kk * self.n + j] = self.data[(j / NR) * self.k * NR + kk * NR + (j % NR)];
            }
        }
        out
    }

    pub(crate) fn panels(&self) -> Panels<'_> {
        Panels {
            data: &self.data,
            k: self.k,
            n: self.n,
        }
    }
}

/// How the epilogue store folds a bias into each element.
#[derive(Clone, Copy)]
pub(crate) enum GemmBias<'a> {
    /// No bias: the accumulator is stored as-is (never `+ 0.0`, which
    /// would canonicalize `-0.0`).
    None,
    /// One bias per output column, indexed by absolute column (linear).
    PerCol(&'a [f32]),
    /// One bias per output row, indexed by row local to `od` (conv:
    /// rows are output channels).
    PerRow(&'a [f32]),
}

/// The register micro-kernel: accumulates `M x NR` outputs over one
/// packed A panel (k-major, `M` interleaved rows) and one packed B panel
/// (k-major, `NR` columns). `M` is const so the compiler fully unrolls
/// the row loop and keeps `acc` in registers.
#[inline]
fn micro<const M: usize>(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]]) {
    let acc: &mut [[f32; NR]; M] = (&mut acc[..M]).try_into().expect("acc holds M rows");
    for (arow, brow) in apanel.chunks_exact(M).zip(bpanel.chunks_exact(NR)) {
        for m in 0..M {
            let av = arow[m];
            for j in 0..NR {
                acc[m][j] += av * brow[j];
            }
        }
    }
}

/// Computes output rows `[row0, row0 + od.len() / b.n)` of `A x B` into
/// `od`, with `a` row-major at leading dimension `lda` (so `a` may be a
/// taller matrix the caller offsets into — conv passes the whole weight
/// tensor). Bias and activation run inside the tile write-back.
pub(crate) fn gemm_rows(
    a: &[f32],
    lda: usize,
    row0: usize,
    b: Panels<'_>,
    od: &mut [f32],
    bias: GemmBias<'_>,
    ep: Epilogue,
) {
    let (k, n) = (b.k, b.n);
    if n == 0 {
        return;
    }
    let rows = od.len() / n;
    let np = n.div_ceil(NR);
    let mut apanel = vec![0.0f32; k * MR];
    let mut i0 = 0;
    while i0 < rows {
        let mr = MR.min(rows - i0);
        // Interleave the next `mr` A rows k-major: panel[kk*mr + m].
        for m in 0..mr {
            let arow = &a[(row0 + i0 + m) * lda..(row0 + i0 + m) * lda + k];
            for (kk, &v) in arow.iter().enumerate() {
                apanel[kk * mr + m] = v;
            }
        }
        let ap = &apanel[..k * mr];
        for p in 0..np {
            let bpanel = &b.data[p * k * NR..(p + 1) * k * NR];
            let col0 = p * NR;
            let nc = NR.min(n - col0);
            let mut acc = [[0.0f32; NR]; MR];
            match mr {
                4 => micro::<4>(ap, bpanel, &mut acc),
                3 => micro::<3>(ap, bpanel, &mut acc),
                2 => micro::<2>(ap, bpanel, &mut acc),
                _ => micro::<1>(ap, bpanel, &mut acc),
            }
            for m in 0..mr {
                let orow = &mut od[(i0 + m) * n + col0..(i0 + m) * n + col0 + nc];
                for (j, out) in orow.iter_mut().enumerate() {
                    let v = acc[m][j];
                    let v = match bias {
                        GemmBias::None => v,
                        GemmBias::PerCol(bd) => v + bd[col0 + j],
                        GemmBias::PerRow(bd) => v + bd[i0 + m],
                    };
                    *out = ep.apply(v);
                }
            }
        }
        i0 += mr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reference;
    use crate::tensor::Tensor;

    #[test]
    fn pack_unpack_roundtrips_exactly() {
        for (k, n) in [(1, 1), (3, 5), (7, 8), (9, 17), (256, 8), (300, 33)] {
            let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, (k * 31 + n) as u64);
            let packed = PackedB::pack(b.data(), k, n);
            assert_eq!(packed.unpack(), b.data(), "k={k} n={n}");
        }
    }

    #[test]
    fn pack_transposed_matches_explicit_transpose() {
        let w = Tensor::rand_uniform(&[5, 7], -1.0, 1.0, 11);
        let wt = w.transpose2().unwrap();
        assert_eq!(
            PackedB::pack_transposed(w.data(), 5, 7),
            PackedB::pack(wt.data(), 7, 5),
        );
    }

    #[test]
    fn gemm_rows_matches_reference_bitwise_on_awkward_shapes() {
        // Non-multiples of MR/NR, degenerate rows/cols, and a k crossing KC.
        for (m, k, n) in [
            (1, 1, 1),
            (4, 8, 8),
            (5, 3, 9),
            (7, 17, 23),
            (3, KC + 5, 11),
            (6, 2, 1),
        ] {
            let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, (m * 7 + n) as u64);
            let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, (k * 13 + n) as u64);
            let packed = PackedB::pack(b.data(), k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_rows(
                a.data(),
                k,
                0,
                packed.panels(),
                &mut got,
                GemmBias::None,
                Epilogue::None,
            );
            let want = reference::matmul(&a, &b).unwrap();
            assert_eq!(got, want.data(), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn gemm_rows_row_offset_and_biases() {
        let (m, k, n) = (6, 5, 10);
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, 3);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, 4);
        let packed = PackedB::pack(b.data(), k, n);
        let full = reference::matmul(&a, &b).unwrap();

        // Rows [2, 5) with a per-column bias and ReLU in the write-back.
        let colb: Vec<f32> = (0..n).map(|j| j as f32 - 4.0).collect();
        let mut got = vec![0.0f32; 3 * n];
        gemm_rows(
            a.data(),
            k,
            2,
            packed.panels(),
            &mut got,
            GemmBias::PerCol(&colb),
            Epilogue::Relu,
        );
        for r in 0..3 {
            for j in 0..n {
                let want = Epilogue::Relu.apply(full.data()[(r + 2) * n + j] + colb[j]);
                assert_eq!(got[r * n + j], want);
            }
        }

        // Per-row bias, local indexing.
        let rowb = [0.5f32, -0.5, 1.5];
        let mut got = vec![0.0f32; 3 * n];
        gemm_rows(
            a.data(),
            k,
            2,
            packed.panels(),
            &mut got,
            GemmBias::PerRow(&rowb),
            Epilogue::None,
        );
        for r in 0..3 {
            for j in 0..n {
                assert_eq!(got[r * n + j], full.data()[(r + 2) * n + j] + rowb[r]);
            }
        }
    }
}
