/root/repo/target/release/deps/kernels-9d3829edba3fb164.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/release/deps/libkernels-9d3829edba3fb164.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
