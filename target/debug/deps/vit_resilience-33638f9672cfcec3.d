/root/repo/target/debug/deps/vit_resilience-33638f9672cfcec3.d: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

/root/repo/target/debug/deps/vit_resilience-33638f9672cfcec3: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

crates/resilience/src/lib.rs:
crates/resilience/src/accel_sweep.rs:
crates/resilience/src/accuracy.rs:
crates/resilience/src/config.rs:
crates/resilience/src/fidelity.rs:
crates/resilience/src/pareto.rs:
crates/resilience/src/sweep.rs:
