//! Exporters: chrome://tracing JSON and a human flame-summary table.

use crate::event::{EventKind, TraceEvent};
use crate::sink::StatsSink;
use crate::TraceSink;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Accumulated cost of one aggregation key (an op kind, node, or phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Agg {
    /// Events folded into this key.
    pub count: u64,
    /// Total span time in nanoseconds.
    pub total_ns: u64,
    /// Total analytical FLOPs.
    pub flops: u64,
    /// Total first-order DRAM bytes.
    pub bytes: u64,
}

impl Agg {
    pub(crate) fn add(&mut self, dur_ns: u64, flops: u64, bytes: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.flops += flops;
        self.bytes += bytes;
    }
}

/// One named row of a [`FlameSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRow {
    /// Aggregation key (op kind, node name, or phase name).
    pub name: String,
    /// Events folded into this row.
    pub count: u64,
    /// Total span time in nanoseconds.
    pub total_ns: u64,
    /// Total analytical FLOPs.
    pub flops: u64,
    /// Total first-order DRAM bytes.
    pub bytes: u64,
}

/// Aggregated view of a trace: per-op-kind totals (the paper's Fig. 2
/// style breakdown), the top nodes by self time, per-phase totals, and
/// counter sums.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameSummary {
    /// Per-op-kind totals, descending by self time.
    pub ops: Vec<AggRow>,
    /// The top-N individual nodes by accumulated self time, descending.
    pub top_nodes: Vec<AggRow>,
    /// Per-phase totals, descending by time.
    pub phases: Vec<AggRow>,
    /// Counter sums, sorted by name.
    pub counters: Vec<(String, u64)>,
}

fn sorted_rows<K: AsRef<str>>(map: &HashMap<K, Agg>) -> Vec<AggRow> {
    let mut rows: Vec<AggRow> = map
        .iter()
        .map(|(k, a)| AggRow {
            name: k.as_ref().to_string(),
            count: a.count,
            total_ns: a.total_ns,
            flops: a.flops,
            bytes: a.bytes,
        })
        .collect();
    // Time descending, then name: a total deterministic order even when
    // several keys tie at zero.
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

impl FlameSummary {
    /// Builds a summary directly from an event stream (e.g. a
    /// [`crate::RingBufferSink`] snapshot), keeping the `top_n` most
    /// expensive nodes.
    pub fn from_events(events: &[TraceEvent], top_n: usize) -> Self {
        let stats = StatsSink::new();
        for e in events {
            stats.record(e.kind.clone());
        }
        stats.summary(top_n)
    }

    pub(crate) fn from_aggregates(
        per_op: &HashMap<String, Agg>,
        per_node: &HashMap<String, Agg>,
        phases: &HashMap<&'static str, Agg>,
        counters: &HashMap<String, u64>,
        top_n: usize,
    ) -> Self {
        let mut top_nodes = sorted_rows(per_node);
        top_nodes.truncate(top_n);
        let mut counters: Vec<(String, u64)> =
            counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        counters.sort();
        FlameSummary {
            ops: sorted_rows(per_op),
            top_nodes,
            phases: sorted_rows(phases),
            counters,
        }
    }

    /// Total node self time in nanoseconds.
    pub fn total_node_ns(&self) -> u64 {
        self.ops.iter().map(|r| r.total_ns).sum()
    }

    /// Total node FLOPs — comparable 1:1 with `vit-profiler`'s static
    /// count for the executed graph.
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|r| r.flops).sum()
    }

    /// Renders the summary as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let total_ns = self.total_node_ns().max(1);
        let _ = writeln!(
            s,
            "{:<18} {:>6} {:>12} {:>8} {:>14} {:>12}",
            "op kind", "count", "self ms", "share", "MFLOPs", "MB moved"
        );
        for r in &self.ops {
            let _ = writeln!(
                s,
                "{:<18} {:>6} {:>12.3} {:>7.1}% {:>14.3} {:>12.3}",
                r.name,
                r.count,
                r.total_ns as f64 / 1e6,
                100.0 * r.total_ns as f64 / total_ns as f64,
                r.flops as f64 / 1e6,
                r.bytes as f64 / 1e6,
            );
        }
        if !self.top_nodes.is_empty() {
            let _ = writeln!(s, "\ntop nodes by self time:");
            for r in &self.top_nodes {
                let _ = writeln!(
                    s,
                    "{:<42} {:>12.3} ms {:>14.3} MFLOPs",
                    r.name,
                    r.total_ns as f64 / 1e6,
                    r.flops as f64 / 1e6,
                );
            }
        }
        if !self.phases.is_empty() {
            let _ = writeln!(s, "\nphases:");
            for r in &self.phases {
                let _ = writeln!(
                    s,
                    "{:<24} {:>6}x {:>12.3} ms",
                    r.name,
                    r.count,
                    r.total_ns as f64 / 1e6
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(s, "\ncounters:");
            for (name, value) in &self.counters {
                let _ = writeln!(s, "{name:<32} {value}");
            }
        }
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microsecond timestamp with nanosecond precision, as chrome expects.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Serializes events as a chrome://tracing / Perfetto "Trace Event Format"
/// JSON document (`{"traceEvents": [...]}`).
///
/// Mapping: [`EventKind::Node`] and [`EventKind::Phase`] become complete
/// (`"ph":"X"`) duration events named by op kind / phase; [`EventKind::Sched`]
/// becomes a `queued` duration event covering spawn→start;
/// [`EventKind::Counter`] becomes a counter (`"ph":"C"`) event;
/// [`EventKind::Instant`] becomes an instant (`"ph":"i"`) event. Timestamps
/// are microseconds since the trace epoch with nanosecond precision; `pid`
/// is always 1 and `tid` is the recording thread's ordinal. The logical
/// sequence number rides in `args.seq`.
///
/// Events are emitted ordered by `(at_ns, seq)`, so the document is
/// stable for identical event streams. The exact schema is pinned by
/// `crates/trace/tests/golden.rs`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.at_ns(), e.seq));
    let mut s = String::from("{\n  \"traceEvents\": [\n");
    for (i, e) in ordered.iter().enumerate() {
        let line = match &e.kind {
            EventKind::Node {
                name,
                op,
                start_ns,
                end_ns,
                flops,
                bytes,
            } => format!(
                "{{\"name\": \"{}\", \"cat\": \"node\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"node\": \"{}\", \"flops\": {}, \
                 \"bytes\": {}, \"seq\": {}}}}}",
                esc(op),
                us(*start_ns),
                us(end_ns.saturating_sub(*start_ns)),
                e.thread,
                esc(name),
                flops,
                bytes,
                e.seq
            ),
            EventKind::Phase {
                phase,
                detail,
                start_ns,
                end_ns,
            } => format!(
                "{{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"detail\": \"{}\", \"seq\": {}}}}}",
                phase.name(),
                us(*start_ns),
                us(end_ns.saturating_sub(*start_ns)),
                e.thread,
                esc(detail),
                e.seq
            ),
            EventKind::Sched {
                node,
                spawn_ns,
                start_ns,
                ready_depth,
            } => format!(
                "{{\"name\": \"queued\", \"cat\": \"sched\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"node\": \"{}\", \
                 \"ready_depth\": {}, \"seq\": {}}}}}",
                us(*spawn_ns),
                us(start_ns.saturating_sub(*spawn_ns)),
                e.thread,
                esc(node),
                ready_depth,
                e.seq
            ),
            EventKind::Counter { name, value, at_ns } => format!(
                "{{\"name\": \"{}\", \"cat\": \"counter\", \"ph\": \"C\", \"ts\": {}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"value\": {}}}}}",
                esc(name),
                us(*at_ns),
                e.thread,
                value
            ),
            EventKind::Instant {
                name,
                detail,
                at_ns,
            } => format!(
                "{{\"name\": \"{}\", \"cat\": \"instant\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"detail\": \"{}\", \
                 \"seq\": {}}}}}",
                esc(name),
                us(*at_ns),
                e.thread,
                esc(detail),
                e.seq
            ),
            EventKind::Fault {
                action,
                detail,
                at_ns,
            } => format!(
                "{{\"name\": \"{}\", \"cat\": \"fault\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"detail\": \"{}\", \
                 \"seq\": {}}}}}",
                action.name(),
                us(*at_ns),
                e.thread,
                esc(detail),
                e.seq
            ),
        };
        s.push_str("    ");
        s.push_str(&line);
        if i + 1 < ordered.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("plain.name"), "plain.name");
    }

    #[test]
    fn chrome_trace_orders_by_time_then_seq() {
        let events = vec![
            TraceEvent {
                seq: 1,
                thread: 0,
                kind: EventKind::Node {
                    name: "late".into(),
                    op: "Relu".into(),
                    start_ns: 2000,
                    end_ns: 3000,
                    flops: 1,
                    bytes: 2,
                },
            },
            TraceEvent {
                seq: 0,
                thread: 0,
                kind: EventKind::Node {
                    name: "early".into(),
                    op: "Gelu".into(),
                    start_ns: 1000,
                    end_ns: 1500,
                    flops: 3,
                    bytes: 4,
                },
            },
        ];
        let json = chrome_trace_json(&events);
        let early = json.find("early").unwrap();
        let late = json.find("late").unwrap();
        assert!(early < late);
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn flame_summary_from_events_aggregates_and_ranks() {
        let mk = |op: &str, name: &str, start: u64, end: u64| TraceEvent {
            seq: start,
            thread: 0,
            kind: EventKind::Node {
                name: name.into(),
                op: op.into(),
                start_ns: start,
                end_ns: end,
                flops: end - start,
                bytes: 0,
            },
        };
        let events = vec![
            mk("Conv2d", "a", 0, 100),
            mk("Conv2d", "b", 100, 400),
            mk("Relu", "c", 400, 410),
        ];
        let s = FlameSummary::from_events(&events, 2);
        assert_eq!(s.ops[0].name, "Conv2d");
        assert_eq!(s.ops[0].total_ns, 400);
        assert_eq!(s.top_nodes.len(), 2);
        assert_eq!(s.top_nodes[0].name, "b");
        assert_eq!(s.total_flops(), 410);
        let table = s.render();
        assert!(table.contains("Conv2d"));
        assert!(table.contains("op kind"));
    }
}
