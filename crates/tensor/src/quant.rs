//! Symmetric INT8 quantization, matching the number format of the paper's
//! accelerator (Figure 9 uses INT8 MACs with wider accumulators).

use crate::error::{invalid_argument, Result};
use crate::tensor::Tensor;
use std::fmt;

/// A tensor quantized to INT8 with a single symmetric scale.
///
/// `real_value ≈ scale * q` with `q ∈ [-127, 127]`. Accumulation happens in
/// `i32`, as it would in the accelerator's vector MACs.
#[derive(Clone, PartialEq)]
pub struct QuantTensor {
    shape: Vec<usize>,
    data: Vec<i8>,
    scale: f32,
}

impl fmt::Debug for QuantTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuantTensor")
            .field("shape", &self.shape)
            .field("len", &self.data.len())
            .field("scale", &self.scale)
            .finish()
    }
}

impl QuantTensor {
    /// Quantizes a float tensor symmetrically so that its maximum absolute
    /// value maps to ±127.
    ///
    /// An all-zero tensor quantizes with scale 1.0.
    pub fn quantize(t: &Tensor) -> QuantTensor {
        let max = t.abs_max();
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let data = t
            .data()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantTensor {
            shape: t.shape().to_vec(),
            data,
            scale,
        }
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The raw INT8 values.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Reconstructs the float tensor.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.shape).expect("shape invariant held by construction")
    }
}

/// INT8 matrix multiplication with `i32` accumulation:
/// `a` is `[m, k]`, `b` is `[k, n]`; returns a float tensor scaled by both
/// input scales, i.e. the dequantized product.
///
/// # Errors
///
/// Returns [`crate::TensorError::InvalidArgument`] when shapes are not
/// compatible rank-2 matrices.
pub fn quant_matmul(a: &QuantTensor, b: &QuantTensor) -> Result<Tensor> {
    if a.shape.len() != 2 || b.shape.len() != 2 || a.shape[1] != b.shape[0] {
        return Err(invalid_argument(
            "quant_matmul",
            format!("incompatible shapes {:?} x {:?}", a.shape, b.shape),
        ));
    }
    let (m, k) = (a.shape[0], a.shape[1]);
    let n = b.shape[1];
    let mut out = Tensor::zeros(&[m, n]);
    let combined_scale = a.scale * b.scale;
    let od = out.data_mut();
    for i in 0..m {
        for kk in 0..k {
            let av = a.data[i * k + kk] as i32;
            if av == 0 {
                continue;
            }
            for j in 0..n {
                // i32 accumulation, converted at the end of each partial sum.
                od[i * n + j] += (av * b.data[kk * n + j] as i32) as f32 * combined_scale;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    #[test]
    fn quantize_dequantize_small_error() {
        let t = Tensor::rand_uniform(&[64], -2.0, 2.0, 17);
        let q = QuantTensor::quantize(&t);
        let d = q.dequantize();
        for (a, b) in t.data().iter().zip(d.data().iter()) {
            // Max quantization error is scale/2 = max/254.
            assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn quantize_zero_tensor() {
        let t = Tensor::zeros(&[8]);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.scale(), 1.0);
        assert!(q.dequantize().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn extremes_map_to_127() {
        let t = Tensor::from_vec(vec![-4.0, 4.0, 2.0], &[3]).unwrap();
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.data()[0], -127);
        assert_eq!(q.data()[1], 127);
        assert_eq!(q.data()[2], 64); // 2.0 / (4/127) = 63.5 -> 64
    }

    #[test]
    fn quant_matmul_approximates_float_matmul() {
        let a = Tensor::rand_uniform(&[8, 16], -1.0, 1.0, 3);
        let b = Tensor::rand_uniform(&[16, 8], -1.0, 1.0, 4);
        let exact = matmul(&a, &b).unwrap();
        let approx = quant_matmul(&QuantTensor::quantize(&a), &QuantTensor::quantize(&b)).unwrap();
        let mut max_err = 0.0f32;
        for (x, y) in exact.data().iter().zip(approx.data().iter()) {
            max_err = max_err.max((x - y).abs());
        }
        // INT8 with 16-element dot products stays well within a few percent
        // of the float result for unit-scale data.
        assert!(max_err < 0.15, "max_err = {max_err}");
    }

    #[test]
    fn quant_matmul_rejects_bad_shapes() {
        let a = QuantTensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = QuantTensor::quantize(&Tensor::zeros(&[4, 2]));
        assert!(quant_matmul(&a, &b).is_err());
    }
}
