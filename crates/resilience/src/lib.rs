//! # vit-resilience
//!
//! The paper's §III resilience study, reproduced: execution-path
//! configuration spaces and the published Table II/III anchor points
//! ([`config`]), the anchored accuracy model ([`accuracy`]), a *measured*
//! pruned-vs-full output-fidelity signal ([`fidelity`]), parallel sweep
//! evaluation ([`sweep`]), and Pareto-front extraction ([`pareto`]).
//!
//! # Examples
//!
//! ```
//! use vit_models::SegFormerVariant;
//! use vit_resilience::{pareto_front, sweep_segformer, ResourceKind, Workload};
//!
//! let v = SegFormerVariant::b2();
//! let space = vit_resilience::segformer_sweep_space(&v, 1, 3);
//! let points = sweep_segformer(&v, Workload::SegFormerAde, (128, 128), 150,
//!                              &space, ResourceKind::GpuTime);
//! let front = pareto_front(&points);
//! assert!(!front.is_empty());
//! ```

#![warn(missing_docs)]

pub mod accel_sweep;
pub mod accuracy;
pub mod config;
pub mod fidelity;
pub mod pareto;
pub mod sweep;

pub use accel_sweep::{sweep_segformer_on_accelerator, sweep_swin_on_accelerator, AccelResource};
pub use accuracy::{AccuracyModel, ConfigFeatures};
pub use config::{
    fig7_swin_tiny, segformer_extended_sweep_space, segformer_sweep_space, swin_sweep_space,
    table2_ade, table2_cityscapes, table3_swin_base, trained_segformer_ade,
    trained_segformer_cityscapes, trained_swin_ade, PaperPoint, TrainedModelPoint, Workload,
};
pub use fidelity::{
    segformer_fidelity, segformer_kernel_tier_fidelity, swin_fidelity, FidelityError,
    FidelitySettings,
};
pub use pareto::{dominates, pareto_front};
pub use sweep::{sweep_segformer, sweep_swin, DynConfig, ResourceKind, TradeoffPoint};
