//! The two-tier kernel differential suite.
//!
//! **Exact tier** — packed micro-kernels whose per-element accumulation
//! replays the oracle's operation chain term-for-term must match the
//! reference kernels *bitwise*, at every thread count: matmul/bmm/linear
//! (panel packing reorders loops, never a single element's k-chain) and
//! the direct depthwise conv path (same tap order as the oracle).
//!
//! **Tolerance tier** — kernels that legally reorder or extend per-element
//! arithmetic are held to the per-op-class bound registered in
//! `vit_tensor::ops::reference::tolerance`. Today that is the im2col conv
//! GEMM path, whose materialized `0.0 * w` padding taps the oracle never
//! evaluates.
//!
//! Golden pins at the bottom freeze the *measured* ULP error per class so
//! a kernel change that spends tolerance headroom fails loudly instead of
//! silently drifting toward the registered bound.

use proptest::prelude::*;
use vit_tensor::ops::reference::{self, max_ulp, tolerance, within_tolerance, KernelClass};
use vit_tensor::ops::{self, Conv2dParams, PackedB, KC, MR, NR};
use vit_tensor::{corrupt, ExecCtx, Tensor, ThreadPool};

/// Thread counts every differential claim is proved at — the same sample
/// the exec-safety pass and the plan differentials use.
const THREADS: [usize; 3] = [1, 2, 8];

fn with_ctx<R>(threads: usize, f: impl FnOnce(&ExecCtx) -> R) -> R {
    if threads <= 1 {
        f(&ExecCtx::default())
    } else {
        let pool = ThreadPool::new(threads);
        f(&ExecCtx {
            pool: Some(&pool),
            ..ExecCtx::default()
        })
    }
}

/// Inner dimensions that cross every blocking boundary: unit, non-unit
/// remainders of the MR/NR register tile, and the KC cache-block edge.
fn awkward_k() -> impl Strategy<Value = usize> {
    prop::sample::select((1..=2 * NR + 1).chain(KC - 1..=KC + 2).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- exact tier -------------------------------------------------

    #[test]
    fn packed_matmul_is_bit_identical_to_reference(
        m in 1usize..=2 * MR + 1,
        k in awkward_k(),
        n in 1usize..=2 * NR + 1,
        seed in any::<u64>(),
    ) {
        let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, seed);
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, seed.wrapping_add(1));
        let want = reference::matmul(&a, &b).unwrap();
        for threads in THREADS {
            let got = with_ctx(threads, |ctx| ops::matmul_ctx(&a, &b, ctx).unwrap());
            prop_assert_eq!(
                got.data(), want.data(),
                "packed matmul diverged from the oracle at {} thread(s)", threads
            );
        }
    }

    #[test]
    fn packed_bmm_is_bit_identical_to_reference(
        (batch, m, k, n) in (1usize..4, 1usize..=MR + 1, 1usize..20, 1usize..=NR + 3),
        seed in any::<u64>(),
    ) {
        let a = Tensor::rand_uniform(&[batch, m, k], -2.0, 2.0, seed);
        let b = Tensor::rand_uniform(&[batch, k, n], -2.0, 2.0, seed.wrapping_add(1));
        let want = reference::bmm(&a, &b).unwrap();
        for threads in THREADS {
            let got = with_ctx(threads, |ctx| ops::bmm_ctx(&a, &b, ctx).unwrap());
            prop_assert_eq!(got.data(), want.data());
        }
    }

    #[test]
    fn packed_linear_is_bit_identical_to_reference(
        rows in 1usize..=2 * MR,
        in_features in awkward_k(),
        out_features in 1usize..=2 * NR + 3,
        with_bias in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let x = Tensor::rand_uniform(&[rows, in_features], -2.0, 2.0, seed);
        let w = Tensor::rand_uniform(&[out_features, in_features], -2.0, 2.0, seed.wrapping_add(1));
        let b = with_bias
            .then(|| Tensor::rand_uniform(&[out_features], -1.0, 1.0, seed.wrapping_add(2)));
        let want = reference::linear(&x, &w, b.as_ref()).unwrap();
        for threads in THREADS {
            let got = with_ctx(threads, |ctx| ops::linear_ctx(&x, &w, b.as_ref(), ctx).unwrap());
            prop_assert_eq!(got.data(), want.data());
        }
    }

    #[test]
    fn depthwise_conv_direct_path_is_bit_identical_to_reference(
        (c, h, w) in (1usize..5, 3usize..9, 3usize..9),
        (r, s, pad, stride) in (1usize..4, 1usize..4, 0usize..2, 1usize..3),
        seed in any::<u64>(),
    ) {
        // groups == channels: one input channel per filter, the direct
        // path replays the oracle's tap order exactly.
        let x = Tensor::rand_uniform(&[1, c, h, w], -2.0, 2.0, seed);
        let k = Tensor::rand_uniform(&[c, 1, r, s], -2.0, 2.0, seed.wrapping_add(1));
        let p = Conv2dParams::new().pad(pad).stride(stride).groups(c);
        let want = reference::conv2d(&x, &k, None, p).unwrap();
        for threads in THREADS {
            let got = with_ctx(threads, |ctx| ops::conv2d_ctx(&x, &k, None, p, ctx).unwrap());
            prop_assert_eq!(got.data(), want.data());
        }
    }

    // ---- tolerance tier ---------------------------------------------

    #[test]
    fn im2col_conv_is_within_the_conv_class_tolerance(
        (groups, c_per_g, k_per_g) in (1usize..3, 2usize..4, 1usize..4),
        (r, s, pad, stride) in (1usize..4, 1usize..4, 0usize..2, 1usize..3),
        (h_extra, w_extra) in (0usize..5, 0usize..5),
        with_bias in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (c, k) = (groups * c_per_g, groups * k_per_g);
        let (h, w) = (r + h_extra, s + w_extra);
        let x = Tensor::rand_uniform(&[1, c, h, w], -2.0, 2.0, seed);
        let wt = Tensor::rand_uniform(&[k, c_per_g, r, s], -2.0, 2.0, seed.wrapping_add(1));
        let b = with_bias.then(|| Tensor::rand_uniform(&[k], -1.0, 1.0, seed.wrapping_add(2)));
        let p = Conv2dParams::new().pad(pad).stride(stride).groups(groups);
        let want = reference::conv2d(&x, &wt, b.as_ref(), p).unwrap();
        let tol = tolerance(KernelClass::Conv);
        for threads in THREADS {
            let got = with_ctx(threads, |ctx| ops::conv2d_ctx(&x, &wt, b.as_ref(), p, ctx).unwrap());
            prop_assert!(
                within_tolerance(got.data(), want.data(), tol),
                "conv GEMM path exceeded the Conv tolerance at {} thread(s): {} ULP",
                threads, max_ulp(got.data(), want.data())
            );
        }
    }

    // ---- packing ----------------------------------------------------

    #[test]
    fn pack_then_unpack_is_the_identity(
        k in awkward_k(),
        n in 1usize..=3 * NR + 5,
        seed in any::<u64>(),
    ) {
        let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, seed);
        let packed = PackedB::pack(b.data(), k, n);
        prop_assert_eq!(packed.unpack(), b.data().to_vec());
    }

    #[test]
    fn pack_transposed_then_unpack_is_the_transpose(
        rows in 1usize..=2 * NR + 3,
        cols in 1usize..24,
        seed in any::<u64>(),
    ) {
        let w = Tensor::rand_uniform(&[rows, cols], -2.0, 2.0, seed);
        let packed = PackedB::pack_transposed(w.data(), rows, cols);
        let got = packed.unpack();
        for i in 0..rows {
            for j in 0..cols {
                prop_assert_eq!(got[j * rows + i].to_bits(), w.data()[i * cols + j].to_bits());
            }
        }
    }
}

// ---- golden pins ----------------------------------------------------

/// The measured max-ULP error of each kernel class against its oracle on
/// a fixed workload. The contract is `measured <= pin <= registered
/// bound`: the pin freezes today's error (the blocked kernels keep every
/// element's accumulation k-sequential, so it is zero), the registered
/// bound is what a future kernel may legally spend — and widening the pin
/// is an explicit, reviewed act.
const GOLDEN_MAX_ULP_GEMM: u32 = 0;
const GOLDEN_MAX_ULP_CONV: u32 = 0;

#[test]
// The pins are currently 0, which makes `measured <= pin` and `pin <=
// bound` trivially shaped — but `<=` is the ratchet's contract and must
// survive a future nonzero pin unchanged.
#[allow(clippy::absurd_extreme_comparisons)]
fn golden_ulp_pin_gemm_class() {
    let a = Tensor::rand_uniform(&[13, KC + 7], -2.0, 2.0, 11);
    let b = Tensor::rand_uniform(&[KC + 7, 3 * NR + 5], -2.0, 2.0, 12);
    let got = ops::matmul_ctx(&a, &b, &ExecCtx::default()).unwrap();
    let want = reference::matmul(&a, &b).unwrap();
    let measured = max_ulp(got.data(), want.data());
    assert!(
        measured <= GOLDEN_MAX_ULP_GEMM,
        "Gemm kernel error grew: measured {measured} ULP > pinned {GOLDEN_MAX_ULP_GEMM}"
    );
    assert!(GOLDEN_MAX_ULP_GEMM <= tolerance(KernelClass::Gemm).max_ulp);
}

#[test]
#[allow(clippy::absurd_extreme_comparisons)]
fn golden_ulp_pin_conv_class() {
    let x = Tensor::rand_uniform(&[2, 6, 9, 9], -2.0, 2.0, 21);
    let w = Tensor::rand_uniform(&[8, 3, 3, 3], -2.0, 2.0, 22);
    let bias = Tensor::rand_uniform(&[8], -1.0, 1.0, 23);
    let p = Conv2dParams::new().pad(1).groups(2);
    let got = ops::conv2d_ctx(&x, &w, Some(&bias), p, &ExecCtx::default()).unwrap();
    let want = reference::conv2d(&x, &w, Some(&bias), p).unwrap();
    let measured = max_ulp(got.data(), want.data());
    assert!(
        measured <= GOLDEN_MAX_ULP_CONV,
        "Conv kernel error grew: measured {measured} ULP > pinned {GOLDEN_MAX_ULP_CONV}"
    );
    assert!(GOLDEN_MAX_ULP_CONV <= tolerance(KernelClass::Conv).max_ulp);
}

// ---- corruption regression ------------------------------------------

/// Regression for the historical `matmul` zero-skip: with `a` all zeros
/// the old kernel skipped every term and an Inf upset in `b` vanished
/// from the output. Both tiers must now surface it as NaN (`0 * inf`).
#[test]
fn injected_inf_propagates_through_zero_rows_in_both_tiers() {
    let (m, k, n) = (3, 8, 4);
    let a = Tensor::zeros(&[m, k]);
    let mut b = Tensor::full(&[k, n], 1.0);
    // 1.0 has exponent 127; flipping bit 30 lands exactly on +inf.
    let flip = corrupt::flip_detectable(b.data_mut(), 5, 1e6).expect("flip lands");
    assert!(flip.after.is_infinite());
    let col = flip.index % n;

    let want = reference::matmul(&a, &b).unwrap();
    for threads in THREADS {
        let got = with_ctx(threads, |ctx| ops::matmul_ctx(&a, &b, ctx).unwrap());
        for i in 0..m {
            for j in 0..n {
                let v = got.data()[i * n + j];
                if j == col {
                    assert!(v.is_nan(), "0 * inf at ({i}, {j}) must surface as NaN");
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
        // Bit-identity holds through the corruption too: NaN agrees with
        // NaN (ULP distance 0), finite elements agree exactly.
        assert_eq!(max_ulp(got.data(), want.data()), 0);
    }
}
