//! Aggregate serving metrics.

use crate::request::{FailureReason, Outcome, RequestRecord, ShedReason, TenantId};
use vit_drt::LutConfig;

/// Nearest-rank percentile (`p` in `[0, 100]`) of an unsorted sample.
/// Returns 0.0 for an empty sample.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// One tenant's slice of a serving run. The three rates partition the
/// tenant's submissions: `goodput + miss_rate + shed_rate == 1` (up to
/// float rounding), where a *miss* is a late completion or a fault
/// failure and a *shed* never executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantMetrics {
    /// Requests this tenant offered.
    pub submitted: usize,
    /// Requests that executed (possibly late).
    pub completed: usize,
    /// On-time completions.
    pub on_time: usize,
    /// Requests shed for any reason (admission, quota, queue, in-queue
    /// expiry).
    pub shed: usize,
    /// Requests shed specifically because this tenant was over its queue
    /// quota (a subset of `shed`).
    pub shed_over_quota: usize,
    /// Requests that dispatched but failed every allowed attempt.
    pub fault_failures: usize,
    /// On-time completions over submitted.
    pub goodput: f64,
    /// Late completions + fault failures, over submitted.
    pub miss_rate: f64,
    /// All sheds over submitted.
    pub shed_rate: f64,
}

/// Aggregated results of a serving run (threaded server or simulation).
///
/// Latencies are in seconds (wall or virtual, matching the substrate).
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// All requests offered to the server.
    pub submitted: usize,
    /// Requests that executed (possibly late).
    pub completed: usize,
    /// Requests shed because the bounded queue was full.
    pub shed_queue_full: usize,
    /// Requests shed by admission control (slack below cheapest entry).
    pub shed_no_slack: usize,
    /// Requests shed at dispatch after their slack expired in-queue.
    pub shed_late: usize,
    /// Requests shed because their tenant exceeded its queue quota.
    pub shed_over_quota: usize,
    /// Requests that dispatched but failed every allowed attempt (faults
    /// exhausted the recovery policy). Accounted separately from deadline
    /// misses and sheds.
    pub fault_failures: usize,
    /// Fault-failure tally by final [`FailureReason`], most-common first.
    pub failure_histogram: Vec<(FailureReason, usize)>,
    /// Faults observed across all requests and attempts (including faults
    /// that recovery subsequently absorbed).
    pub faults_seen: usize,
    /// Retry attempts made across all requests.
    pub retries: usize,
    /// Completed requests that needed at least one retry — the
    /// self-healing path's degraded completions.
    pub degraded_completions: usize,
    /// Mean LUT-estimate accuracy of degraded completions (0 when none).
    pub mean_degraded_accuracy: f64,
    /// Completed requests served by a coalesced batch pass
    /// (`batch_size > 1`).
    pub batched_completions: usize,
    /// Mean batch size over completed requests (1.0 when nothing batched).
    pub mean_batch_size: f64,
    /// Completed requests that finished after their deadline.
    pub deadline_misses: usize,
    /// Median completion latency.
    pub p50_latency: f64,
    /// 95th-percentile completion latency.
    pub p95_latency: f64,
    /// 99th-percentile completion latency.
    pub p99_latency: f64,
    /// Mean submission → dispatch wait of completed requests.
    pub mean_queue_wait: f64,
    /// Median submission → dispatch wait of completed requests.
    pub p50_queue_wait: f64,
    /// 95th-percentile submission → dispatch wait.
    pub p95_queue_wait: f64,
    /// 99th-percentile submission → dispatch wait.
    pub p99_queue_wait: f64,
    /// 99.9th-percentile submission → dispatch wait (tail of the tail —
    /// where retry-induced queueing shows up first).
    pub p999_queue_wait: f64,
    /// `deadline_misses + all sheds + fault failures` over `submitted`:
    /// the fraction of offered requests that did NOT produce an on-time
    /// result.
    pub deadline_miss_rate: f64,
    /// On-time completions over `submitted` — the complement of
    /// `deadline_miss_rate`, reported directly because it is the headline
    /// number of the chaos experiment.
    pub goodput: f64,
    /// All sheds over `submitted`.
    pub shed_rate: f64,
    /// Mean *delivered* accuracy over all submitted requests: the LUT
    /// accuracy estimate for on-time completions, zero for misses and
    /// sheds (a late or absent answer delivers nothing).
    pub mean_delivered_accuracy: f64,
    /// How often each LUT configuration was selected, most-used first.
    pub config_histogram: Vec<(LutConfig, usize)>,
    /// Per-tenant breakdown, ordered by tenant id. A single-tenant run
    /// has one entry for the default tenant.
    pub per_tenant: Vec<(TenantId, TenantMetrics)>,
}

impl ServerMetrics {
    /// Aggregates per-request outcomes.
    pub fn from_outcomes(outcomes: &[Outcome]) -> Self {
        let submitted = outcomes.len();
        let records: Vec<&RequestRecord> = outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Completed(r) => Some(r),
                _ => None,
            })
            .collect();
        let shed_count = |reason: ShedReason| {
            outcomes
                .iter()
                .filter(|o| matches!(o, Outcome::Shed(r) if r.reason == reason))
                .count()
        };
        let shed_queue_full = shed_count(ShedReason::QueueFull);
        let shed_no_slack = shed_count(ShedReason::SlackBelowCheapest);
        let shed_late = shed_count(ShedReason::SlackExhausted);
        let shed_over_quota = shed_count(ShedReason::OverQuota);
        let sheds = shed_queue_full + shed_no_slack + shed_late + shed_over_quota;
        let deadline_misses = records.iter().filter(|r| !r.met_deadline).count();

        let failures: Vec<&crate::request::FailureRecord> = outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Failed(f) => Some(f),
                _ => None,
            })
            .collect();
        let fault_failures = failures.len();
        let mut failure_histogram: Vec<(FailureReason, usize)> = Vec::new();
        for f in &failures {
            match failure_histogram.iter_mut().find(|(r, _)| *r == f.reason) {
                Some((_, n)) => *n += 1,
                None => failure_histogram.push((f.reason, 1)),
            }
        }
        failure_histogram.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let faults_seen = records
            .iter()
            .map(|r| r.faults_seen as usize)
            .sum::<usize>()
            + failures
                .iter()
                .map(|f| f.faults_seen as usize)
                .sum::<usize>();
        let retries = records.iter().map(|r| r.retries as usize).sum::<usize>()
            + failures.iter().map(|f| f.retries as usize).sum::<usize>();
        let degraded: Vec<&&RequestRecord> = records.iter().filter(|r| r.is_degraded()).collect();
        let degraded_completions = degraded.len();
        let mean_degraded_accuracy = if degraded.is_empty() {
            0.0
        } else {
            degraded.iter().map(|r| r.accuracy).sum::<f64>() / degraded.len() as f64
        };
        let batched_completions = records.iter().filter(|r| r.batch_size > 1).count();
        let mean_batch_size = if records.is_empty() {
            1.0
        } else {
            records.iter().map(|r| r.batch_size as f64).sum::<f64>() / records.len() as f64
        };
        let on_time = records.iter().filter(|r| r.met_deadline).count();

        let latencies: Vec<f64> = records.iter().map(|r| r.latency).collect();
        let queue_waits: Vec<f64> = records.iter().map(|r| r.queue_wait).collect();
        let mean_queue_wait = if queue_waits.is_empty() {
            0.0
        } else {
            queue_waits.iter().sum::<f64>() / queue_waits.len() as f64
        };
        let delivered: f64 = records.iter().map(|r| r.delivered_accuracy()).sum();

        let mut histogram: Vec<(LutConfig, usize)> = Vec::new();
        for r in &records {
            match histogram.iter_mut().find(|(c, _)| *c == r.config) {
                Some((_, n)) => *n += 1,
                None => histogram.push((r.config, 1)),
            }
        }
        histogram.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

        let per_tenant = tenant_breakdown(outcomes);

        let frac = |n: usize| {
            if submitted == 0 {
                0.0
            } else {
                n as f64 / submitted as f64
            }
        };
        ServerMetrics {
            submitted,
            completed: records.len(),
            shed_queue_full,
            shed_no_slack,
            shed_late,
            shed_over_quota,
            fault_failures,
            failure_histogram,
            faults_seen,
            retries,
            degraded_completions,
            mean_degraded_accuracy,
            batched_completions,
            mean_batch_size,
            deadline_misses,
            p50_latency: percentile(&latencies, 50.0),
            p95_latency: percentile(&latencies, 95.0),
            p99_latency: percentile(&latencies, 99.0),
            mean_queue_wait,
            p50_queue_wait: percentile(&queue_waits, 50.0),
            p95_queue_wait: percentile(&queue_waits, 95.0),
            p99_queue_wait: percentile(&queue_waits, 99.0),
            p999_queue_wait: percentile(&queue_waits, 99.9),
            deadline_miss_rate: frac(deadline_misses + sheds + fault_failures),
            goodput: frac(on_time),
            shed_rate: frac(sheds),
            mean_delivered_accuracy: if submitted == 0 {
                0.0
            } else {
                delivered / submitted as f64
            },
            config_histogram: histogram,
            per_tenant,
        }
    }

    /// Total requests shed for any reason.
    pub fn shed(&self) -> usize {
        self.shed_queue_full + self.shed_no_slack + self.shed_late + self.shed_over_quota
    }

    /// `completed + shed() + fault_failures == submitted` — no request
    /// vanished, and none is double-counted across the three terminal
    /// states.
    pub fn accounts_for_all_submissions(&self) -> bool {
        self.completed + self.shed() + self.fault_failures == self.submitted
    }

    /// This run's metrics for one tenant, when it submitted anything.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantMetrics> {
        self.per_tenant
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, m)| m)
    }
}

/// Splits outcomes by tenant and computes each tenant's partition rates.
fn tenant_breakdown(outcomes: &[Outcome]) -> Vec<(TenantId, TenantMetrics)> {
    let mut tenants: Vec<TenantId> = outcomes
        .iter()
        .map(|o| match o {
            Outcome::Completed(r) => r.tenant,
            Outcome::Shed(s) => s.tenant,
            Outcome::Failed(f) => f.tenant,
        })
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    tenants
        .into_iter()
        .map(|tenant| {
            let mut m = TenantMetrics {
                submitted: 0,
                completed: 0,
                on_time: 0,
                shed: 0,
                shed_over_quota: 0,
                fault_failures: 0,
                goodput: 0.0,
                miss_rate: 0.0,
                shed_rate: 0.0,
            };
            for o in outcomes {
                match o {
                    Outcome::Completed(r) if r.tenant == tenant => {
                        m.submitted += 1;
                        m.completed += 1;
                        if r.met_deadline {
                            m.on_time += 1;
                        }
                    }
                    Outcome::Shed(s) if s.tenant == tenant => {
                        m.submitted += 1;
                        m.shed += 1;
                        if s.reason == ShedReason::OverQuota {
                            m.shed_over_quota += 1;
                        }
                    }
                    Outcome::Failed(f) if f.tenant == tenant => {
                        m.submitted += 1;
                        m.fault_failures += 1;
                    }
                    _ => {}
                }
            }
            if m.submitted > 0 {
                let n = m.submitted as f64;
                let late = m.completed - m.on_time;
                m.goodput = m.on_time as f64 / n;
                m.miss_rate = (late + m.fault_failures) as f64 / n;
                m.shed_rate = m.shed as f64 / n;
            }
            (tenant, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ShedRecord;

    fn config() -> LutConfig {
        LutConfig::Swin {
            depths: [2, 2, 6, 2],
            bottleneck_in_channels: 512,
        }
    }

    fn record(latency: f64, met: bool, accuracy: f64) -> Outcome {
        record_for(latency, met, accuracy, TenantId::default())
    }

    fn record_for(latency: f64, met: bool, accuracy: f64, tenant: TenantId) -> Outcome {
        Outcome::Completed(RequestRecord {
            latency,
            queue_wait: latency / 2.0,
            met_deadline: met,
            accuracy,
            config: config(),
            retries: 0,
            faults_seen: 0,
            tenant,
            ticket: None,
            batch_size: 1,
        })
    }

    fn shed(reason: ShedReason) -> Outcome {
        Outcome::Shed(ShedRecord::at_admission(reason, TenantId::default()))
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn aggregation_counts_everything() {
        let outcomes = vec![
            record(0.010, true, 0.9),
            record(0.020, true, 1.0),
            record(0.500, false, 1.0), // late: delivers 0
            shed(ShedReason::QueueFull),
            shed(ShedReason::SlackBelowCheapest),
        ];
        let m = ServerMetrics::from_outcomes(&outcomes);
        assert_eq!(m.submitted, 5);
        assert_eq!(m.completed, 3);
        assert_eq!(m.shed(), 2);
        assert!(m.accounts_for_all_submissions());
        assert_eq!(m.deadline_misses, 1);
        // 1 miss + 2 sheds out of 5 offered.
        assert!((m.deadline_miss_rate - 0.6).abs() < 1e-12);
        assert!((m.shed_rate - 0.4).abs() < 1e-12);
        // (0.9 + 1.0 + 0 + 0 + 0) / 5
        assert!((m.mean_delivered_accuracy - 0.38).abs() < 1e-12);
        assert_eq!(m.config_histogram, vec![(config(), 3)]);
        assert_eq!(m.p99_latency, 0.5);
        // queue_wait is latency/2 in the fixture, so the percentiles track.
        assert_eq!(m.p50_queue_wait, 0.010);
        assert_eq!(m.p95_queue_wait, 0.250);
        assert_eq!(m.p99_queue_wait, 0.250);
        assert!((m.mean_queue_wait - (0.005 + 0.010 + 0.250) / 3.0).abs() < 1e-12);
        // No chaos or batching in this fixture.
        assert_eq!(m.fault_failures, 0);
        assert_eq!(m.faults_seen, 0);
        assert_eq!(m.degraded_completions, 0);
        assert_eq!(m.batched_completions, 0);
        assert!((m.mean_batch_size - 1.0).abs() < 1e-12);
        assert!((m.goodput - 0.4).abs() < 1e-12);
        // Single-tenant run: one per-tenant entry mirroring the totals.
        assert_eq!(m.per_tenant.len(), 1);
        let t = m.tenant(TenantId::default()).unwrap();
        assert_eq!(t.submitted, 5);
        assert!((t.goodput + t.miss_rate + t.shed_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_failures_are_accounted_separately_from_misses_and_sheds() {
        use crate::request::{FailureReason, FailureRecord};
        let mut degraded = match record(0.030, true, 0.7) {
            Outcome::Completed(r) => r,
            _ => unreachable!(),
        };
        degraded.retries = 1;
        degraded.faults_seen = 1;
        let fail = |reason, retries, faults_seen| {
            Outcome::Failed(FailureRecord {
                reason,
                retries,
                faults_seen,
                tenant: TenantId::default(),
                ticket: None,
            })
        };
        let outcomes = vec![
            record(0.010, true, 0.9),
            Outcome::Completed(degraded),
            fail(FailureReason::Crash, 2, 3),
            fail(FailureReason::GuardTripped, 0, 1),
            shed(ShedReason::QueueFull),
        ];
        let m = ServerMetrics::from_outcomes(&outcomes);
        assert_eq!(m.submitted, 5);
        assert_eq!(m.completed, 2);
        assert_eq!(m.fault_failures, 2);
        assert_eq!(m.shed(), 1);
        assert!(m.accounts_for_all_submissions());
        assert_eq!(m.deadline_misses, 0);
        // 0 misses + 1 shed + 2 fault failures out of 5.
        assert!((m.deadline_miss_rate - 0.6).abs() < 1e-12);
        assert!((m.goodput - 0.4).abs() < 1e-12);
        assert_eq!(m.faults_seen, 1 + 3 + 1);
        assert_eq!(m.retries, 1 + 2);
        assert_eq!(m.degraded_completions, 1);
        assert!((m.mean_degraded_accuracy - 0.7).abs() < 1e-12);
        assert_eq!(
            m.failure_histogram,
            vec![(FailureReason::Crash, 1), (FailureReason::GuardTripped, 1)]
        );
        // The fault failures land in the default tenant's miss_rate.
        let t = m.tenant(TenantId::default()).unwrap();
        assert!((t.miss_rate - 0.4).abs() < 1e-12);
        assert!((t.goodput + t.miss_rate + t.shed_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_tenant_rates_partition_each_tenants_submissions() {
        let a = TenantId(1);
        let b = TenantId(2);
        let outcomes = vec![
            record_for(0.010, true, 0.9, a),
            record_for(0.900, false, 0.9, a), // late
            record_for(0.010, true, 0.8, b),
            Outcome::Shed(ShedRecord::at_admission(ShedReason::OverQuota, b)),
            Outcome::Shed(ShedRecord::at_admission(ShedReason::QueueFull, b)),
        ];
        let m = ServerMetrics::from_outcomes(&outcomes);
        assert_eq!(m.shed_over_quota, 1);
        assert_eq!(m.per_tenant.len(), 2);
        let ma = m.tenant(a).unwrap();
        assert_eq!((ma.submitted, ma.on_time), (2, 1));
        assert!((ma.goodput - 0.5).abs() < 1e-12);
        assert!((ma.miss_rate - 0.5).abs() < 1e-12);
        assert!((ma.shed_rate - 0.0).abs() < 1e-12);
        let mb = m.tenant(b).unwrap();
        assert_eq!((mb.submitted, mb.shed, mb.shed_over_quota), (3, 2, 1));
        assert!((mb.goodput + mb.miss_rate + mb.shed_rate - 1.0).abs() < 1e-12);
        assert!(m.tenant(TenantId(9)).is_none());
    }

    #[test]
    fn batch_sizes_aggregate_over_completions() {
        let mut batched = match record(0.010, true, 0.9) {
            Outcome::Completed(r) => r,
            _ => unreachable!(),
        };
        batched.batch_size = 4;
        let outcomes = vec![Outcome::Completed(batched), record(0.020, true, 0.9)];
        let m = ServerMetrics::from_outcomes(&outcomes);
        assert_eq!(m.batched_completions, 1);
        assert!((m.mean_batch_size - 2.5).abs() < 1e-12);
    }
}
