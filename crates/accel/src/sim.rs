//! The accelerator performance/energy model: maps every graph node onto the
//! Listing-1 loop nest and accumulates cycles, utilization, DRAM traffic,
//! and energy.

use crate::config::{AccelConfig, TechEnergy};
use serde::{Deserialize, Serialize};
use vit_graph::{Graph, LayerRole, Node, Op, OpClass};

/// Optional execution features (§V's three optimizations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Allow splitting a layer's input channels across PEs, with partial
    /// sums reduced between PEs. Costs a little energy; required to map
    /// layers whose per-PE weights would otherwise overflow small weight
    /// memories in one pass.
    pub cross_pe_reduction: bool,
    /// Overlap decoder-linear layers with later encoder stages
    /// (model-level parallelism outside self-attention).
    pub model_parallelism: bool,
    /// Local weight reuse depth Q0 (consecutive output pixels sharing one
    /// weight fetch in the OS-LWS dataflow).
    pub q0_reuse: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            cross_pe_reduction: true,
            model_parallelism: false,
            q0_reuse: 8,
        }
    }
}

/// Sustained DRAM bandwidth in bytes per accelerator cycle.
const DRAM_BYTES_PER_CYCLE: f64 = 256.0;

/// PPU (post-processing unit) lanes per PE: one per vector MAC.
fn ppu_lanes(cfg: &AccelConfig) -> u64 {
    (cfg.num_pes() * cfg.k0) as u64
}

/// Per-layer simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Node name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Functional role.
    pub role: LayerRole,
    /// Real MACs performed.
    pub macs: u64,
    /// Cycles occupied on the PE array (after any DRAM stall).
    pub cycles: u64,
    /// MAC-array utilization in `[0, 1]`.
    pub utilization: f64,
    /// DRAM traffic in bytes (INT8 tensors).
    pub dram_bytes: u64,
    /// Number of passes over the inputs forced by weight-memory capacity.
    pub weight_passes: u64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl LayerStats {
    /// Energy per MAC ("energy per FLOP" in Figure 11), joules.
    pub fn energy_per_mac(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.energy_j / self.macs as f64
        }
    }
}

/// Whole-graph simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelReport {
    /// Model name.
    pub model: String,
    /// The simulated architecture.
    pub config: AccelConfig,
    /// Per-layer statistics in topological order.
    pub layers: Vec<LayerStats>,
    /// Cycles recovered by model-level parallelism (already subtracted from
    /// [`AccelReport::total_cycles`]).
    pub overlapped_cycles: u64,
}

impl AccelReport {
    /// End-to-end cycles.
    pub fn total_cycles(&self) -> u64 {
        let raw: u64 = self.layers.iter().map(|l| l.cycles).sum();
        raw.saturating_sub(self.overlapped_cycles)
    }

    /// End-to-end latency in seconds at the synthesized clock.
    pub fn total_time_s(&self) -> f64 {
        self.total_cycles() as f64 / (self.config.clock_ghz * 1e9)
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_j).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.dram_bytes).sum()
    }

    /// Sums `(cycles, energy)` over layers whose name starts with `prefix`.
    pub fn by_prefix(&self, prefix: &str) -> (u64, f64) {
        let mut c = 0;
        let mut e = 0.0;
        for l in self.layers.iter().filter(|l| l.name.starts_with(prefix)) {
            c += l.cycles;
            e += l.energy_j;
        }
        (c, e)
    }

    /// The layer with the highest energy (Figure 13 normalizes to it).
    pub fn max_energy_layer(&self) -> Option<&LayerStats> {
        self.layers
            .iter()
            .max_by(|a, b| a.energy_j.partial_cmp(&b.energy_j).expect("finite"))
    }
}

/// The work of one mappable tensor contraction.
#[derive(Debug, Clone, Copy)]
struct MappedWork {
    /// Output rows (P*Q, or token count).
    pq: u64,
    /// Kernel footprint R*S.
    rs: u64,
    /// Input channels per group.
    c: u64,
    /// Output channels.
    k: u64,
    /// Total input activation elements (INT8 bytes).
    input_bytes: u64,
    /// Weight bytes.
    weight_bytes: u64,
    /// Output bytes.
    output_bytes: u64,
    /// Whether the inputs stream from DRAM (false: global-buffer resident
    /// intermediate, e.g. attention probabilities).
    input_offchip: bool,
    /// Whether the outputs go to DRAM.
    output_offchip: bool,
}

fn numel(shape: &[usize]) -> u64 {
    shape.iter().product::<usize>() as u64
}

/// The shape of one tensor contraction a node maps onto the MAC array —
/// the public view of the simulator's internal mapping, exposed so static
/// analysis (the `vit-verify` accelerator pass) checks exactly the tilings
/// the simulator would execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contraction {
    /// Output rows (P*Q spatial positions, or token count).
    pub pq: u64,
    /// Kernel footprint R*S.
    pub rs: u64,
    /// Input channels per group (the `c0` vector-lane dimension).
    pub c: u64,
    /// Output channels (the `k0` vector-MAC dimension).
    pub k: u64,
}

/// The contractions `node` maps onto the MAC array, in execution order.
/// Non-MAC nodes (normalization, pooling, data movement) return an empty
/// list: they run on the post-processing units instead.
pub fn node_contractions(graph: &Graph, node: &Node) -> Vec<Contraction> {
    mapped_work(graph, node)
        .into_iter()
        .map(|w| Contraction {
            pq: w.pq,
            rs: w.rs,
            c: w.c,
            k: w.k,
        })
        .collect()
}

/// Extracts the contractions a node maps onto the MAC array; non-MAC nodes
/// return an empty list and run on the PPU instead.
fn mapped_work(graph: &Graph, node: &Node) -> Vec<MappedWork> {
    let in_shape = |i: usize| graph.node(node.inputs[i]).shape.as_slice();
    match &node.op {
        Op::Conv2d {
            out_channels,
            kernel,
            groups,
            ..
        } => {
            let input = in_shape(0);
            let out = &node.shape;
            let c = (input[1] / groups) as u64;
            vec![MappedWork {
                pq: (out[0] * out[2] * out[3]) as u64,
                rs: (kernel.0 * kernel.1) as u64,
                c,
                k: *out_channels as u64,
                input_bytes: numel(input),
                weight_bytes: *out_channels as u64 * c * (kernel.0 * kernel.1) as u64,
                output_bytes: numel(out),
                input_offchip: true,
                output_offchip: true,
            }]
        }
        Op::Linear { out_features, .. } => {
            let input = in_shape(0);
            let c = *input.last().expect("validated") as u64;
            let rows = numel(input) / c;
            vec![MappedWork {
                pq: rows,
                rs: 1,
                c,
                k: *out_features as u64,
                input_bytes: numel(input),
                weight_bytes: c * *out_features as u64,
                output_bytes: numel(&node.shape),
                input_offchip: true,
                output_offchip: true,
            }]
        }
        Op::Sdpa { heads } => {
            // Two batched matmuls; softmax runs on the PPU (accounted in
            // ppu_elements).
            let q = in_shape(0);
            let k = in_shape(1);
            let v = in_shape(2);
            let (b, n, d) = (q[0] as u64, q[1] as u64, q[2] as u64);
            let m = k[1] as u64;
            let dv = v[2] as u64;
            let h = *heads as u64;
            let dh = d / h;
            let dvh = dv / h;
            vec![
                // scores = q k^T : per (batch, head) an [n, dh] x [dh, m].
                MappedWork {
                    pq: b * h * n,
                    rs: 1,
                    c: dh,
                    k: m,
                    input_bytes: numel(q),
                    weight_bytes: numel(k),
                    output_bytes: b * h * n * m,
                    input_offchip: true,
                    output_offchip: false,
                },
                // context = probs v : [n, m] x [m, dvh].
                MappedWork {
                    pq: b * h * n,
                    rs: 1,
                    c: m,
                    k: dvh,
                    input_bytes: b * h * n * m,
                    weight_bytes: numel(v),
                    output_bytes: numel(&node.shape),
                    input_offchip: false,
                    output_offchip: true,
                },
            ]
        }
        Op::DeformAttn {
            heads,
            levels,
            points,
            dim,
        } => {
            let q = in_shape(0);
            let v = in_shape(1);
            let (b, n, d) = (q[0] as u64, q[1] as u64, *dim as u64);
            let m = v[1] as u64;
            let hlp = (*heads * *levels * *points) as u64;
            vec![
                // value projection
                MappedWork {
                    pq: b * m,
                    rs: 1,
                    c: d,
                    k: d,
                    input_bytes: numel(v),
                    weight_bytes: d * d,
                    output_bytes: b * m * d,
                    input_offchip: true,
                    output_offchip: false,
                },
                // offsets + attention weights
                MappedWork {
                    pq: b * n,
                    rs: 1,
                    c: d,
                    k: hlp * 3,
                    input_bytes: numel(q),
                    weight_bytes: d * hlp * 3,
                    output_bytes: b * n * hlp * 3,
                    input_offchip: true,
                    output_offchip: false,
                },
                // output projection
                MappedWork {
                    pq: b * n,
                    rs: 1,
                    c: d,
                    k: d,
                    input_bytes: b * n * d,
                    weight_bytes: d * d,
                    output_bytes: numel(&node.shape),
                    input_offchip: false,
                    output_offchip: true,
                },
            ]
        }
        _ => Vec::new(),
    }
}

/// Elements a node processes on the per-PE post-processing units (fused
/// activations, normalization, pooling, resizing, softmax, argmax).
fn ppu_elements(graph: &Graph, node: &Node) -> u64 {
    let in0 = || numel(&graph.node(node.inputs[0]).shape);
    match &node.op {
        Op::Relu | Op::Gelu | Op::BatchNorm | Op::ArgmaxChannels => in0(),
        Op::LayerNorm => 2 * in0(),
        Op::Add => numel(&node.shape),
        Op::MaxPool { window, .. } => numel(&node.shape) * (*window * *window) as u64,
        Op::AdaptiveAvgPool { .. } | Op::GlobalAvgPool => in0(),
        Op::Resize { .. } => numel(&node.shape),
        Op::Sdpa { .. } => {
            // softmax over the score matrix
            let q = &graph.node(node.inputs[0]).shape;
            let k = &graph.node(node.inputs[1]).shape;
            3 * (q[0] * q[1] * k[1]) as u64
        }
        Op::DeformAttn {
            heads,
            levels,
            points,
            ..
        } => {
            let q = &graph.node(node.inputs[0]).shape;
            ((q[0] * q[1]) as u64) * (*heads * *levels * *points) as u64
        }
        _ => 0,
    }
}

/// Maps one contraction, choosing the PE-array split that minimizes cycles.
fn map_contraction(
    w: &MappedWork,
    cfg: &AccelConfig,
    opts: &SimOptions,
    tech: &TechEnergy,
) -> (u64, u64, u64, f64, u64) {
    let pes = cfg.num_pes() as u64;
    let (k0, c0) = (cfg.k0 as u64, cfg.c0 as u64);
    let wm_bytes = (cfg.weight_mem_kb * 1024) as u64;

    // Enumerate spatial splits (pq_split, k_split, c_split) with product
    // dividing the PE count.
    let mut best: Option<(u64, u64, u64, u64)> = None; // cycles, weight passes, c_split, k_split
    let mut divisors = Vec::new();
    for d in 1..=pes {
        if pes.is_multiple_of(d) {
            divisors.push(d);
        }
    }
    for &pq_s in &divisors {
        for &k_s in &divisors {
            let rem = pes / pq_s;
            if !rem.is_multiple_of(k_s) {
                continue;
            }
            let c_s = rem / k_s;
            if c_s > 1 && !opts.cross_pe_reduction {
                continue;
            }
            let pq_pe = w.pq.div_ceil(pq_s);
            let k_pe = w.k.div_ceil(k_s);
            let c_pe = w.c.div_ceil(c_s);
            let cycles = pq_pe * w.rs * c_pe.div_ceil(c0) * k_pe.div_ceil(k0);
            let weight_bytes_pe = k_pe * c_pe * w.rs;
            let passes = weight_bytes_pe.div_ceil(wm_bytes).max(1);
            let cand = (cycles, passes, c_s, k_s);
            if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                best = Some(cand);
            }
        }
    }
    let (cycles, passes, c_split, _k_split) = best.expect("at least one mapping");

    // DRAM traffic: weights once, off-chip inputs once per weight pass,
    // off-chip outputs once; global-buffer-resident intermediates skip DRAM.
    let dram = w.weight_bytes
        + if w.input_offchip {
            w.input_bytes * passes
        } else {
            0
        }
        + if w.output_offchip { w.output_bytes } else { 0 };
    let stall = (dram as f64 / DRAM_BYTES_PER_CYCLE).ceil() as u64;
    let final_cycles = cycles.max(stall);

    // Energy.
    let macs = w.pq * w.rs * w.c * w.k;
    let q0 = opts.q0_reuse.max(1) as u64;
    // Idle vector lanes fetch nothing, so SRAM traffic follows real MACs;
    // underutilization is paid in control energy and cycles instead.
    let wm_reads = macs / q0;
    let am_reads = macs / k0 + w.output_bytes;
    let energy = macs as f64 * tech.mac_j
        + 3.0 * macs as f64 * tech.rf_byte_j
        + wm_reads as f64 * tech.sram_byte_j(cfg.weight_mem_kb)
        + am_reads as f64 * tech.sram_byte_j(cfg.act_mem_kb)
        + (w.input_bytes * passes + w.output_bytes) as f64 * tech.gb_byte_j
        + dram as f64 * tech.dram_byte_j
        + (cycles * pes) as f64 * tech.pe_ctrl_cycle_j
        + if c_split > 1 {
            (w.output_bytes * (c_split - 1)) as f64 * tech.cross_pe_byte_j
        } else {
            0.0
        };
    (final_cycles, macs, dram, energy, passes)
}

/// Simulates a graph on an accelerator configuration.
///
/// Every MAC-bearing node is mapped onto the PE array via the Listing-1
/// loop nest; everything else runs on the fused post-processing units.
pub fn simulate(graph: &Graph, cfg: &AccelConfig, opts: &SimOptions) -> AccelReport {
    let tech = TechEnergy::default();
    let mut layers = Vec::with_capacity(graph.len());
    for (_, node) in graph.iter() {
        let works = mapped_work(graph, node);
        let mut cycles = 0;
        let mut macs = 0;
        let mut dram = 0;
        let mut energy = 0.0;
        let mut passes = 0;
        for w in &works {
            let (c, m, d, e, p) = map_contraction(w, cfg, opts, &tech);
            cycles += c;
            macs += m;
            dram += d;
            energy += e;
            passes = passes.max(p);
        }
        let ppu = ppu_elements(graph, node);
        if ppu > 0 {
            let ppu_cycles = ppu.div_ceil(ppu_lanes(cfg));
            cycles += ppu_cycles;
            // Element ops read and write the activation SRAM.
            energy += ppu as f64 * (2.0 * tech.sram_byte_j(cfg.act_mem_kb) + 4.0 * tech.rf_byte_j)
                + (ppu_cycles * cfg.num_pes() as u64) as f64 * tech.pe_ctrl_cycle_j;
        }
        let utilization = if cycles == 0 {
            0.0
        } else {
            macs as f64 / (cycles as f64 * cfg.parallel_macs() as f64)
        };
        layers.push(LayerStats {
            name: node.name.clone(),
            class: node.op.class(),
            role: node.role,
            macs,
            cycles,
            utilization,
            dram_bytes: dram,
            weight_passes: passes,
            energy_j: energy,
        });
    }

    // Model-level parallelism: decoder linears can run concurrently with
    // later encoder stages (paper §V, optimization 1). The recoverable
    // cycles are bounded by the encoder work they hide under.
    let overlapped_cycles = if opts.model_parallelism {
        let dl: u64 = layers
            .iter()
            .filter(|l| matches!(l.role, LayerRole::DecoderLinear { stage } if stage < 3))
            .map(|l| l.cycles)
            .sum();
        let enc: u64 = layers
            .iter()
            .filter(|l| matches!(l.role, LayerRole::EncoderBlock { stage, .. } if stage > 0))
            .map(|l| l.cycles)
            .sum();
        dl.min(enc)
    } else {
        0
    };

    AccelReport {
        model: graph.model.clone(),
        config: *cfg,
        layers,
        overlapped_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};

    fn b2_report(cfg: &AccelConfig) -> AccelReport {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        simulate(&g, cfg, &SimOptions::default())
    }

    #[test]
    fn segformer_b2_cycles_match_paper() {
        // Paper §VI-A: 4,415,208 cycles on accelerator_A (3.5 ms at
        // 1.25 GHz), 16.6x faster than the 58 ms GPU baseline.
        let r = b2_report(&AccelConfig::accelerator_a());
        let cycles = r.total_cycles();
        assert!(
            (cycles as f64 - 4_415_208.0).abs() / 4_415_208.0 < 0.25,
            "got {cycles} cycles"
        );
        let ms = r.total_time_s() * 1e3;
        assert!((ms - 3.5).abs() / 3.5 < 0.25, "got {ms:.2} ms");
    }

    #[test]
    fn accelerator_star_barely_slower_than_a() {
        // Paper: accelerator* (WM=128 kB) is < 3% slower and ~0.5% more
        // energy than accelerator_A on the full model, at 4x smaller area.
        let a = b2_report(&AccelConfig::accelerator_a());
        let star = b2_report(&AccelConfig::accelerator_star());
        let slow = star.total_cycles() as f64 / a.total_cycles() as f64;
        assert!((1.0..1.06).contains(&slow), "slowdown {slow:.3}");
        let energy = star.total_energy_j() / a.total_energy_j();
        assert!(energy < 1.05, "energy ratio {energy:.3}");
    }

    #[test]
    fn fuse_conv_dominates_cycles() {
        // Fig. 10: on the accelerator the time distribution matches the
        // FLOPs distribution, so Conv2DFuse dominates.
        let r = b2_report(&AccelConfig::accelerator_a());
        let fuse = r
            .layers
            .iter()
            .find(|l| l.name == "decoder.conv_fuse")
            .unwrap();
        let share = fuse.cycles as f64 / r.total_cycles() as f64;
        // The paper's own numbers give 2,359,296 / 4,415,208 = 53%.
        assert!((share - 0.53).abs() < 0.10, "fuse cycle share {share:.2}");
    }

    #[test]
    fn low_channel_layers_are_energy_per_mac_outliers() {
        // Fig. 11: the 3-input-channel patch embedding and the depthwise
        // convolutions have much higher energy per MAC (C0 underutilized).
        let r = b2_report(&AccelConfig::accelerator_a());
        let e = |name: &str| {
            r.layers
                .iter()
                .find(|l| l.name == name)
                .unwrap()
                .energy_per_mac()
        };
        let stem = e("encoder.stage0.patch_embed.conv");
        let dw = e("encoder.stage0.block0.ffn.dwconv");
        let fuse = e("decoder.conv_fuse");
        assert!(stem > 2.0 * fuse, "stem {stem:.2e} vs fuse {fuse:.2e}");
        assert!(dw > 2.0 * fuse, "dwconv {dw:.2e} vs fuse {fuse:.2e}");
    }

    #[test]
    fn more_vectorization_is_lower_energy() {
        // Fig. 14: K0=C0=32 accelerators have the lowest total energy.
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let opts = SimOptions::default();
        let e32 = simulate(
            &g,
            &AccelConfig::with_vectorization(32, 32, 128, 64).unwrap(),
            &opts,
        )
        .total_energy_j();
        let e16 = simulate(
            &g,
            &AccelConfig::with_vectorization(16, 16, 128, 64).unwrap(),
            &opts,
        )
        .total_energy_j();
        let e8 = simulate(
            &g,
            &AccelConfig::with_vectorization(8, 8, 128, 64).unwrap(),
            &opts,
        )
        .total_energy_j();
        assert!(e32 < e16, "{e32} vs {e16}");
        assert!(e16 < e8, "{e16} vs {e8}");
    }

    #[test]
    fn utilization_bounded_and_meaningful() {
        let r = b2_report(&AccelConfig::accelerator_a());
        for l in &r.layers {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&l.utilization),
                "{}: {}",
                l.name,
                l.utilization
            );
        }
        let fuse = r
            .layers
            .iter()
            .find(|l| l.name == "decoder.conv_fuse")
            .unwrap();
        assert!(
            fuse.utilization > 0.9,
            "fuse utilization {}",
            fuse.utilization
        );
    }

    #[test]
    fn model_parallelism_reduces_cycles() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let base = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
        let mp = simulate(
            &g,
            &AccelConfig::accelerator_star(),
            &SimOptions {
                model_parallelism: true,
                ..SimOptions::default()
            },
        );
        assert!(mp.total_cycles() < base.total_cycles());
    }

    #[test]
    fn cross_pe_reduction_off_still_maps() {
        let g =
            build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(128, 128))
                .unwrap();
        let r = simulate(
            &g,
            &AccelConfig::accelerator_star(),
            &SimOptions {
                cross_pe_reduction: false,
                ..SimOptions::default()
            },
        );
        assert!(r.total_cycles() > 0);
    }
}
