//! Property-based tests of the Pareto LUT: the lookup must equal a brute
//! force argmax over feasible points for any point set and budget.

use proptest::prelude::*;
use vit_drt::Lut;
use vit_models::{SegFormerDynamic, SegFormerVariant};
use vit_resilience::{DynConfig, TradeoffPoint};

fn point(r: f64, a: f64) -> TradeoffPoint {
    TradeoffPoint {
        label: String::new(),
        config: DynConfig::SegFormer(SegFormerDynamic::full(&SegFormerVariant::b2())),
        resource: r,
        norm_resource: r,
        norm_miou: a,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lookup_matches_brute_force(
        raw in prop::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..50),
        budget in 0.0f64..2.5,
    ) {
        let pts: Vec<TradeoffPoint> = raw.iter().map(|&(r, a)| point(r, a)).collect();
        let lut = Lut::from_points("p", &pts);
        let brute: Option<f64> = raw
            .iter()
            .filter(|(r, _)| *r <= budget)
            .map(|(_, a)| *a)
            .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.max(a))));
        match (lut.lookup(budget), brute) {
            (Ok(e), Some(best)) => prop_assert!((e.norm_miou - best).abs() < 1e-12),
            (Err(_), None) => {}
            (Ok(e), None) => prop_assert!(false, "lut found {e:?} but nothing feasible"),
            (Err(err), Some(best)) => {
                prop_assert!(false, "lut failed ({err}) but brute force found {best}")
            }
        }
    }

    #[test]
    fn lookup_is_monotone_in_budget(
        raw in prop::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..50),
        b1 in 0.0f64..2.5,
        delta in 0.0f64..1.0,
    ) {
        let pts: Vec<TradeoffPoint> = raw.iter().map(|&(r, a)| point(r, a)).collect();
        let lut = Lut::from_points("p", &pts);
        let a1 = lut.lookup(b1).map(|e| e.norm_miou).unwrap_or(-1.0);
        let a2 = lut.lookup(b1 + delta).map(|e| e.norm_miou).unwrap_or(-1.0);
        prop_assert!(a2 >= a1);
    }

    #[test]
    fn json_round_trip_for_any_point_set(
        raw in prop::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..30),
    ) {
        let pts: Vec<TradeoffPoint> = raw.iter().map(|&(r, a)| point(r, a)).collect();
        let lut = Lut::from_points("roundtrip", &pts);
        let back = Lut::from_json(&lut.to_json()).unwrap();
        prop_assert_eq!(lut, back);
    }

    #[test]
    fn downsample_never_exceeds_requested_rows(
        raw in prop::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..60),
        n in 1usize..20,
    ) {
        let pts: Vec<TradeoffPoint> = raw.iter().map(|&(r, a)| point(r, a)).collect();
        let lut = Lut::from_points("p", &pts);
        let d = lut.downsample(n);
        prop_assert!(d.len() <= n.max(1));
        if !lut.is_empty() {
            prop_assert!(!d.is_empty());
            // With at least two rows requested, both endpoints survive
            // (a single row can only keep one of them).
            if n >= 2 && lut.len() >= 2 {
                prop_assert_eq!(d.entries()[0].resource, lut.entries()[0].resource);
                prop_assert_eq!(
                    d.entries()[d.len() - 1].resource,
                    lut.entries()[lut.len() - 1].resource
                );
            }
        }
    }
}
