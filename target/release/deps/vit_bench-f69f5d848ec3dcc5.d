/root/repo/target/release/deps/vit_bench-f69f5d848ec3dcc5.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs

/root/repo/target/release/deps/libvit_bench-f69f5d848ec3dcc5.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs

/root/repo/target/release/deps/libvit_bench-f69f5d848ec3dcc5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/accelerator.rs:
crates/bench/src/experiments/characterization.rs:
crates/bench/src/experiments/engine.rs:
crates/bench/src/experiments/headline.rs:
crates/bench/src/experiments/resilience.rs:
