/root/repo/target/release/deps/vit_drt-90812465829096d2.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

/root/repo/target/release/deps/vit_drt-90812465829096d2: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/budget.rs:
crates/core/src/engine.rs:
crates/core/src/json.rs:
crates/core/src/lut.rs:
