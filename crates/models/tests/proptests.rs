//! Property-based tests of the model builders: any valid dynamic
//! configuration must build, cost no more than the full model, and keep the
//! shared-weights node-naming invariant.

use proptest::prelude::*;
use std::collections::HashSet;
use vit_models::{
    build_resnet, build_segformer, build_swin_upernet, ResNetConfig, SegFormerConfig,
    SegFormerDynamic, SegFormerVariant, SwinConfig, SwinDynamic, SwinVariant,
};

fn arb_segformer_dynamic() -> impl Strategy<Value = SegFormerDynamic> {
    let v = SegFormerVariant::b2();
    (
        1usize..=v.depths[0],
        1usize..=v.depths[1],
        1usize..=v.depths[2],
        1usize..=v.depths[3],
        1usize..=(v.full_fuse_in() / 4),
        1usize..=v.decoder_dim,
        1usize..=v.embed_dims[0],
    )
        .prop_map(move |(d0, d1, d2, d3, q, fo, dl0)| SegFormerDynamic {
            depths: [d0, d1, d2, d3],
            fuse_in_channels: q * 4,
            fuse_out_channels: fo,
            decode_linear0_in: dl0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_valid_segformer_config_builds_cheaper_than_full(d in arb_segformer_dynamic()) {
        let v = SegFormerVariant::b2();
        let base = SegFormerConfig::ade20k(v).with_image(128, 128);
        let full = build_segformer(&base.clone()).unwrap();
        let pruned = build_segformer(&base.with_dynamic(d)).unwrap();
        prop_assert!(pruned.total_flops() <= full.total_flops());
        prop_assert!(pruned.total_params() <= full.total_params());
    }

    #[test]
    fn pruned_node_names_are_a_subset_of_full(d in arb_segformer_dynamic()) {
        // The shared-weights property requires every pruned node name to
        // exist in the full graph (except explicit slice nodes).
        let v = SegFormerVariant::b2();
        let base = SegFormerConfig::ade20k(v).with_image(128, 128);
        let full = build_segformer(&base.clone()).unwrap();
        let pruned = build_segformer(&base.with_dynamic(d)).unwrap();
        let full_names: HashSet<&str> = full.nodes().iter().map(|n| n.name.as_str()).collect();
        for n in pruned.nodes() {
            if n.name.ends_with(".slice") {
                continue;
            }
            prop_assert!(full_names.contains(n.name.as_str()), "extra node {}", n.name);
        }
    }

    #[test]
    fn swin_depth_cuts_monotone_in_flops(
        d2a in 1usize..=18,
        d2b in 1usize..=18,
    ) {
        let v = SwinVariant::base();
        let build = |d2: usize| {
            build_swin_upernet(
                &SwinConfig::ade20k(v)
                    .with_image(128, 128)
                    .with_dynamic(SwinDynamic { depths: [2, 2, d2, 2], bottleneck_in_channels: 2048 }),
            )
            .unwrap()
            .total_flops()
        };
        let (fa, fb) = (build(d2a), build(d2b));
        if d2a < d2b {
            prop_assert!(fa < fb);
        } else if d2a > d2b {
            prop_assert!(fa > fb);
        } else {
            prop_assert_eq!(fa, fb);
        }
    }

    #[test]
    fn resnet_flops_scale_with_image_area(
        scale in 1usize..5,
    ) {
        let base = build_resnet(&ResNetConfig::imagenet().with_image(64, 64)).unwrap();
        let big = build_resnet(&ResNetConfig::imagenet().with_image(64 * scale.max(1), 64)).unwrap();
        let ratio = big.graph.total_flops() as f64 / base.graph.total_flops() as f64;
        // Convolution FLOPs scale linearly in area; the fixed-size head
        // dilutes it slightly.
        prop_assert!(ratio >= 0.9 * scale as f64 && ratio <= 1.1 * scale as f64,
                     "scale {scale}: ratio {ratio}");
    }

    #[test]
    fn batch_scales_flops_exactly(batch in 1usize..5) {
        let cfg = SegFormerConfig::ade20k(SegFormerVariant::b0())
            .with_image(64, 64)
            .with_batch(batch);
        let g = build_segformer(&cfg).unwrap();
        let single = build_segformer(
            &SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(64, 64),
        )
        .unwrap();
        prop_assert_eq!(g.total_flops(), single.total_flops() * batch as u64);
        prop_assert_eq!(g.total_params(), single.total_params());
    }
}
