//! The `repro verify --json` exit-code contract, held against seeded
//! broken artifacts: exit code zero when every report is clean, non-zero
//! on any error, non-zero on warnings only under `--deny-warnings` — and
//! a JSON rendering whose schema (code, severity, span kind, message)
//! downstream tooling can rely on.
//!
//! Each V05x lint gets one test: a purpose-built broken artifact is
//! assembled through the `from_raw_parts` escape hatches (the sound
//! constructors cannot express the breakage), verified, and its report
//! driven through the same [`exit_code`] mapping `repro verify` uses.

use vit_bench::experiments::verify::exit_code;
use vit_graph::{Graph, LayerRole, Op, SchedMeta, WeightGen};
use vit_plan::{BufRange, ExecContract, ExecPlan, PlanRecord};
use vit_verify::{
    audit_source, verify_exec_safety, verify_plan_exec, verify_sched_meta, verify_shadow, Code,
    Diagnostic, Report, Severity,
};

/// input -> conv -> relu, the graph the scheduler-metadata lints break.
fn small_graph() -> Graph {
    let mut g = Graph::new("contract");
    let x = g.input("in", &[1, 4, 8, 8]).unwrap();
    let c = g
        .add(
            "conv",
            Op::Conv2d {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                pad: (1, 1),
                groups: 1,
                bias: true,
            },
            LayerRole::Other,
            &[x],
        )
        .unwrap();
    let r = g.add("relu", Op::Relu, LayerRole::Other, &[c]).unwrap();
    g.set_output(r);
    g
}

/// A sound two-record plan (input -> relu) assembled through the escape
/// hatches; each test then breaks one invariant.
fn sound_plan() -> ExecPlan {
    let r0 = PlanRecord::from_raw_parts(
        "in",
        Op::Input { shape: vec![8] },
        vec![],
        vec![],
        BufRange { offset: 0, len: 8 },
        vec![8],
    );
    let r1 = PlanRecord::from_raw_parts(
        "relu",
        Op::Relu,
        vec![BufRange { offset: 0, len: 8 }],
        vec![vec![8]],
        BufRange { offset: 8, len: 8 },
        vec![8],
    );
    ExecPlan::from_raw_parts(
        "contract",
        vec![r0, r1],
        16,
        BufRange { offset: 8, len: 8 },
        vec![8],
    )
}

fn rebuild(plan: &ExecPlan, records: Vec<PlanRecord>, arena_len: usize) -> ExecPlan {
    ExecPlan::from_raw_parts(
        plan.model(),
        records,
        arena_len,
        plan.output_range(),
        plan.output_shape().to_vec(),
    )
}

/// Wraps pass-6 findings in a report and asserts the full contract for
/// one code: the expected lint is present exactly once, the JSON schema
/// carries it, and the exit-code mapping honors its severity.
fn assert_contract(diags: Vec<Diagnostic>, code: Code) {
    let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == code).collect();
    assert_eq!(hits.len(), 1, "{code} must fire exactly once: {diags:?}");
    let severity = hits[0].severity;

    let mut report = Report::new("seeded-broken artifact");
    report.extend(diags);

    // JSON schema: target, counts, and a diagnostics array whose entries
    // carry code/severity/span/message.
    let json = report.to_json();
    assert!(
        json.contains("\"target\": \"seeded-broken artifact\""),
        "{json}"
    );
    assert!(json.contains(&format!("\"code\": \"{code}\"")), "{json}");
    assert!(
        json.contains(&format!("\"severity\": \"{severity}\"")),
        "{json}"
    );
    assert!(json.contains("\"kind\": "), "span kind missing: {json}");
    assert!(json.contains("\"message\": "), "{json}");
    assert!(
        json.contains(&format!("\"errors\": {}", report.errors())),
        "{json}"
    );
    assert!(
        json.contains(&format!("\"warnings\": {}", report.warnings())),
        "{json}"
    );

    // Exit-code contract: errors always fail; warnings only fail under
    // --deny-warnings.
    match severity {
        Severity::Error => {
            assert_eq!(exit_code(report.errors(), report.warnings(), false), 1);
            assert_eq!(exit_code(report.errors(), report.warnings(), true), 1);
        }
        Severity::Warning => {
            assert_eq!(exit_code(report.errors(), report.warnings(), false), 0);
            assert_eq!(exit_code(report.errors(), report.warnings(), true), 1);
        }
    }
}

#[test]
fn clean_artifacts_exit_zero() {
    let g = small_graph();
    let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
    let diags = verify_exec_safety(&g, &plan, &SchedMeta::of(&g));
    assert!(diags.is_empty(), "{diags:?}");
    let mut report = Report::new("clean");
    report.extend(diags);
    assert_eq!(exit_code(report.errors(), report.warnings(), true), 0);
    assert!(report.to_json().contains("\"diagnostics\": []"));
}

#[test]
fn v050_chunk_overlap_contract() {
    let plan = sound_plan();
    let mut records = plan.records().to_vec();
    records[1].contract = ExecContract::Explicit {
        chunks: vec![
            BufRange { offset: 0, len: 6 },
            BufRange { offset: 4, len: 4 },
        ],
        reassociates: false,
    };
    let broken = rebuild(&plan, records, 16);
    assert_contract(verify_plan_exec(&broken), Code::ChunkOverlap);
}

#[test]
fn v051_chunk_gap_contract() {
    let plan = sound_plan();
    let mut records = plan.records().to_vec();
    records[1].contract = ExecContract::Explicit {
        chunks: vec![BufRange { offset: 0, len: 5 }],
        reassociates: false,
    };
    let broken = rebuild(&plan, records, 16);
    assert_contract(verify_plan_exec(&broken), Code::ChunkGap);
}

#[test]
fn v052_exec_alias_contract() {
    let plan = sound_plan();
    let mut records = plan.records().to_vec();
    records[1].out = BufRange { offset: 4, len: 8 };
    let broken = ExecPlan::from_raw_parts(
        plan.model(),
        records,
        16,
        BufRange { offset: 4, len: 8 },
        vec![8],
    );
    assert_contract(verify_plan_exec(&broken), Code::ExecAlias);
}

#[test]
fn v053_premature_free_contract() {
    let plan = sound_plan();
    let mut records = plan.records().to_vec();
    records[1].frees = vec![BufRange { offset: 0, len: 8 }];
    records.push(PlanRecord::from_raw_parts(
        "late-reader",
        Op::Gelu,
        vec![BufRange { offset: 0, len: 8 }],
        vec![vec![8]],
        BufRange { offset: 16, len: 8 },
        vec![8],
    ));
    let broken = ExecPlan::from_raw_parts(
        plan.model(),
        records,
        24,
        BufRange { offset: 16, len: 8 },
        vec![8],
    );
    assert_contract(verify_plan_exec(&broken), Code::PrematureFree);
}

#[test]
fn v054_sched_indegree_contract() {
    let g = small_graph();
    let truth = SchedMeta::of(&g);
    let mut indegree = truth.indegree().to_vec();
    indegree[1] = 0;
    let broken = SchedMeta::from_raw_parts(indegree, truth.consumers().to_vec());
    assert_contract(verify_sched_meta(&g, &broken), Code::SchedIndegree);
}

#[test]
fn v055_sched_consumers_contract() {
    let g = small_graph();
    let truth = SchedMeta::of(&g);
    let mut consumers = truth.consumers().to_vec();
    consumers[0] = 0;
    let broken = SchedMeta::from_raw_parts(truth.indegree().to_vec(), consumers);
    assert_contract(verify_sched_meta(&g, &broken), Code::SchedConsumers);
}

#[test]
fn v056_fp_reassociation_contract() {
    let plan = sound_plan();
    let mut records = plan.records().to_vec();
    records[1].contract = ExecContract::Explicit {
        chunks: vec![
            BufRange { offset: 0, len: 4 },
            BufRange { offset: 4, len: 4 },
        ],
        reassociates: true,
    };
    let broken = rebuild(&plan, records, 16);
    assert_contract(verify_plan_exec(&broken), Code::FpReassociation);
}

#[test]
fn v057_undocumented_unsafe_contract() {
    let diags = audit_source(
        "seeded.rs",
        "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    assert_contract(diags, Code::UndocumentedUnsafe);
}

#[test]
fn v058_unchecked_index_contract() {
    let diags = audit_source(
        "seeded.rs",
        "// SAFETY: index is in bounds by construction.\nlet x = unsafe { v.get_unchecked(1) };\n",
    );
    assert_contract(diags, Code::UncheckedIndex);
}

#[test]
fn v059_shadow_divergence_contract() {
    // A read of a range no record ever writes: invisible to the static
    // plan-local checks, caught by the shadow replay.
    let plan = sound_plan();
    let mut records = plan.records().to_vec();
    records[1].inputs = vec![BufRange { offset: 16, len: 8 }];
    let broken = ExecPlan::from_raw_parts(
        plan.model(),
        records,
        24,
        BufRange { offset: 8, len: 8 },
        vec![8],
    );
    let static_diags = verify_plan_exec(&broken);
    assert!(static_diags.is_empty(), "{static_diags:?}");
    assert_contract(
        verify_shadow(&broken, &static_diags, &[1, 2, 8]),
        Code::ShadowDivergence,
    );
}
