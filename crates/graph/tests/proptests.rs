//! Property-based tests: shape inference must agree with execution, and
//! cost accounting must be internally consistent, for randomized layers.

use proptest::prelude::*;
use vit_graph::{Executor, Graph, LayerRole, Op};
use vit_tensor::Tensor;

fn arb_conv() -> impl Strategy<Value = (Op, usize, usize, usize)> {
    // (op, in_channels, h, w) with valid geometry.
    (
        1usize..5,
        1usize..9,
        1usize..4,
        0usize..3,
        1usize..3,
        4usize..12,
        4usize..12,
    )
        .prop_map(|(cin, cout, k, pad, stride, h, w)| {
            let k = k.min(h + 2 * pad).min(w + 2 * pad);
            (
                Op::Conv2d {
                    out_channels: cout,
                    kernel: (k, k),
                    stride: (stride, stride),
                    pad: (pad, pad),
                    groups: 1,
                    bias: true,
                },
                cin,
                h,
                w,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conv_shape_inference_matches_execution((op, cin, h, w) in arb_conv(), seed in any::<u64>()) {
        let mut g = Graph::new("p");
        let x = g.input("in", &[1, cin, h, w]).unwrap();
        let c = g.add("conv", op, LayerRole::Other, &[x]).unwrap();
        g.set_output(c);
        let inferred = g.node(c).shape.clone();
        let out = Executor::new(seed)
            .run(&g, &[Tensor::rand_uniform(&[1, cin, h, w], -1.0, 1.0, seed)])
            .unwrap();
        prop_assert_eq!(out.shape(), inferred.as_slice());
    }

    #[test]
    fn linear_chain_flops_sum_and_execute(
        dims in prop::collection::vec(1usize..16, 2..5),
        seed in any::<u64>(),
    ) {
        let mut g = Graph::new("p");
        let mut prev = g.input("in", &[1, 3, dims[0]]).unwrap();
        let mut expected_flops = 0u64;
        let mut last_dim = dims[0];
        for (i, &d) in dims.iter().enumerate().skip(1) {
            prev = g
                .add(
                    &format!("l{i}"),
                    Op::Linear { out_features: d, bias: false },
                    LayerRole::Other,
                    &[prev],
                )
                .unwrap();
            expected_flops += (3 * last_dim * d) as u64;
            last_dim = d;
        }
        g.set_output(prev);
        prop_assert_eq!(g.total_flops(), expected_flops);
        let out = Executor::new(seed)
            .run(&g, &[Tensor::rand_uniform(&[1, 3, dims[0]], -1.0, 1.0, seed)])
            .unwrap();
        prop_assert_eq!(out.shape(), &[1, 3, last_dim]);
        prop_assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn slice_then_wider_slice_is_consistent(
        (total, keep_small, keep_big) in (3usize..12).prop_flat_map(|t| {
            (Just(t), 1..t, 1..=t)
        }).prop_filter("ordered", |(_, s, b)| s < b),
        seed in any::<u64>(),
    ) {
        // Slicing to keep_small directly equals slicing to keep_big then to
        // keep_small.
        let input = Tensor::rand_uniform(&[1, total, 2, 2], -1.0, 1.0, seed);
        let one = {
            let mut g = Graph::new("a");
            let x = g.input("in", &[1, total, 2, 2]).unwrap();
            let s = g.add("s", Op::SliceChannels { keep: keep_small }, LayerRole::Other, &[x]).unwrap();
            g.set_output(s);
            Executor::new(0).run(&g, std::slice::from_ref(&input)).unwrap()
        };
        let two = {
            let mut g = Graph::new("b");
            let x = g.input("in", &[1, total, 2, 2]).unwrap();
            let s1 = g.add("s1", Op::SliceChannels { keep: keep_big }, LayerRole::Other, &[x]).unwrap();
            let s2 = g.add("s2", Op::SliceChannels { keep: keep_small }, LayerRole::Other, &[s1]).unwrap();
            g.set_output(s2);
            Executor::new(0).run(&g, &[input]).unwrap()
        };
        prop_assert_eq!(one, two);
    }

    #[test]
    fn memory_ops_are_free_and_lossless(
        (c, h, w) in (1usize..5, 2usize..7, 2usize..7),
        seed in any::<u64>(),
    ) {
        let mut g = Graph::new("p");
        let x = g.input("in", &[1, c, h, w]).unwrap();
        let f = g.add("flat", Op::FlattenHw, LayerRole::Other, &[x]).unwrap();
        let u = g.add("unflat", Op::UnflattenHw { h, w }, LayerRole::Other, &[f]).unwrap();
        g.set_output(u);
        prop_assert_eq!(g.total_flops(), 0);
        let input = Tensor::rand_uniform(&[1, c, h, w], -1.0, 1.0, seed);
        let out = Executor::new(0).run(&g, std::slice::from_ref(&input)).unwrap();
        prop_assert_eq!(out, input);
    }

    #[test]
    fn residual_add_requires_and_preserves_shape(
        (c, hw) in (1usize..6, 2usize..6),
        seed in any::<u64>(),
    ) {
        let mut g = Graph::new("p");
        let x = g.input("in", &[1, c, hw, hw]).unwrap();
        let r = g.add("relu", Op::Relu, LayerRole::Other, &[x]).unwrap();
        let a = g.add("add", Op::Add, LayerRole::Other, &[x, r]).unwrap();
        g.set_output(a);
        let input = Tensor::rand_uniform(&[1, c, hw, hw], 0.0, 1.0, seed);
        let out = Executor::new(0).run(&g, std::slice::from_ref(&input)).unwrap();
        // relu(x) + x == 2x for non-negative inputs.
        for (o, i) in out.data().iter().zip(input.data().iter()) {
            prop_assert!((o - 2.0 * i).abs() < 1e-6);
        }
    }
}
